"""In-the-wild Zeus sensor anomaly profiles (paper Section 4.2).

The paper found sensors belonging to 10 organizations.  All of them
failed to return the proxy-bot list and none implemented the update
mechanism; all but 3 returned empty peer lists; all that returned
non-empty lists served duplicated promoted entries; only 3 reported
valid recent version numbers.  The ten profiles below satisfy every
one of those statements.
"""

from __future__ import annotations

from typing import List

from repro.core.sensor import SensorDefectProfile


def _sensor(index: int, **defects) -> SensorDefectProfile:
    return SensorDefectProfile(name=f"zeus-s{index}", **defects)


# Sensors s1-s3: return (duplicated) non-empty peer lists, and are the
# 3 with valid recent versions.  s4-s10: empty peer lists, stale
# versions.  Everyone lacks proxy-list and update support.
ZEUS_SENSOR_PROFILES: List[SensorDefectProfile] = (
    [
        _sensor(
            index,
            empty_peer_lists=False,
            duplicate_peers=True,
            no_proxy_reply=True,
            no_update_support=True,
            stale_version=False,
        )
        for index in range(1, 4)
    ]
    + [
        _sensor(
            index,
            empty_peer_lists=True,
            duplicate_peers=False,
            no_proxy_reply=True,
            no_update_support=True,
            stale_version=True,
        )
        for index in range(4, 11)
    ]
)
