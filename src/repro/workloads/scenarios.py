"""Canned end-to-end scenarios shared by examples, tests, and benches.

A *scenario* is a running botnet with an injected sensor fleet and,
optionally, a crawler fleet replaying the in-the-wild defect profiles.
This mirrors the paper's experimental geometry: sensors announce for a
while, then a measurement window opens during which all recon traffic
is logged by the sensors.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.botnets.sality.network import SalityNetwork, SalityNetworkConfig
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.core.crawler import SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.sensor import SalitySensor, SensorDefectProfile, ZeusSensor
from repro.core.stealth import StealthPolicy
from repro.faults.plan import (
    OUTAGE,
    ASPartition,
    FaultPlan,
    GilbertElliottConfig,
    LatencySpike,
    NodeFault,
    Partition,
    RoutedSinkhole,
)
from repro.net.address import Subnet, parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import DAY, HOUR, MINUTE
from repro.topo import Topology, parse_topology

# Address space reserved for recon infrastructure, outside the bot
# population's blocks: each sensor/crawler gets its own /20 (the Zeus
# peer-list filter admits one entry per /20).
SENSOR_BLOCK = Subnet.parse("45.0.0.0/10")
CRAWLER_BLOCK = Subnet.parse("99.0.0.0/12")

# The defender's sinkhole lives in its own block, outside every
# population/infrastructure prefix, so hijacked traffic is collected
# off to the side (routed-sinkhole chaos kind).
SINKHOLE_ENDPOINT = Endpoint(parse_ip("46.0.0.1"), 5353)
#: The hijacked prefix: the first /14 of routable bot space (one
#: quarter of the first /12), a more-specific announcement in BGP terms.
SINKHOLE_PREFIX = Subnet.parse("25.0.0.0/14")


def sensor_endpoint(index: int, port: int = 6000) -> Endpoint:
    """Sensor i's address: one /20 per sensor inside SENSOR_BLOCK."""
    ip = SENSOR_BLOCK.network + index * 0x1000 + 1
    if ip not in SENSOR_BLOCK:
        raise ValueError(f"sensor index {index} outside the sensor block")
    return Endpoint(ip, port)


def crawler_endpoint(index: int, instance: int = 0, port: int = 7000) -> Endpoint:
    """Crawler i's address; instances of one crawler share a /24."""
    ip = CRAWLER_BLOCK.network + index * 0x1000 + instance * 4 + 1
    if ip not in CRAWLER_BLOCK:
        raise ValueError(f"crawler index {index} outside the crawler block")
    return Endpoint(ip, port)


@dataclass
class ZeusScenario:
    """A running Zeus botnet with an injected sensor fleet."""

    net: ZeusNetwork
    sensors: List[ZeusSensor]
    crawlers: List[ZeusCrawler] = field(default_factory=list)
    measurement_start: float = 0.0

    @property
    def crawler_ips(self) -> Set[int]:
        return {crawler.endpoint.ip for crawler in self.crawlers}

    def run_for(self, duration: float) -> None:
        self.net.run_for(duration)


def build_zeus_scenario(
    config: Optional[ZeusNetworkConfig] = None,
    sensor_count: int = 64,
    sensor_profiles: Optional[Sequence[SensorDefectProfile]] = None,
    announce_hours: float = 4.0,
    active_peer_list_requests: bool = False,
    topology: Optional[str] = None,
) -> ZeusScenario:
    """Build the botnet, inject sensors, and run the announcement
    phase.  Afterwards ``measurement_start`` marks the paper's logging
    window; feed ``sensor.peer_list_request_log(since=...)`` from it.

    ``sensor_profiles`` assigns defect profiles round-robin (default:
    clean, full-protocol sensors).  ``topology`` (a spec string like
    ``"synth:7"``) routes latency over an AS graph; None keeps the
    byte-identical flat model.
    """
    config = config if config is not None else ZeusNetworkConfig()
    if topology is not None:
        config.topology = parse_topology(topology)
    net = ZeusNetwork(config)
    net.build()
    sensors = []
    for index in range(sensor_count):
        rng = net.rngs.fork(f"sensor-{index}").stream("sensor")
        profile = (
            sensor_profiles[index % len(sensor_profiles)]
            if sensor_profiles
            else SensorDefectProfile()
        )
        sensor = ZeusSensor(
            node_id=f"sensor-{index:03d}",
            bot_id=zeus_protocol.random_id(rng),
            endpoint=sensor_endpoint(index),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            profile=profile,
            announce_duration=announce_hours * HOUR,
            active_peer_list_requests=active_peer_list_requests,
        )
        sensor.seed_peers(net.bootstrap_sample(12, seed=10_000 + index))
        sensor.proxy_list = net.proxies
        sensors.append(sensor)
    net.start_all()
    for sensor in sensors:
        sensor.start()
    net.run_for(announce_hours * HOUR)
    return ZeusScenario(net=net, sensors=sensors, measurement_start=net.scheduler.now)


def zeus_fleet_policy(profile: ZeusDefectProfile) -> StealthPolicy:
    """The stealth policy replaying one in-the-wild crawler.

    Coverage becomes a contact fraction; hard hitters burst at
    seconds-apart spacing, the rest stay just inside the automatic
    blacklisting budget.
    """
    if profile.hard_hitter:
        return StealthPolicy(
            contact_fraction=profile.coverage,
            per_target_interval=15.0,
            requests_per_target=4,
        )
    return StealthPolicy(
        contact_fraction=profile.coverage,
        per_target_interval=12 * MINUTE,
        requests_per_target=3,
    )


def launch_zeus_fleet(
    scenario: ZeusScenario,
    profiles: Sequence[ZeusDefectProfile],
    bootstrap_size: int = 10,
) -> List[ZeusCrawler]:
    """Start one crawler per profile against the scenario's botnet."""
    for index, profile in enumerate(profiles):
        crawler = ZeusCrawler(
            name=profile.name,
            endpoint=crawler_endpoint(index),
            transport=scenario.net.transport,
            scheduler=scenario.net.scheduler,
            rng=scenario.net.rngs.fork(f"crawler-{profile.name}").stream("crawl"),
            policy=zeus_fleet_policy(profile),
            profile=profile,
        )
        crawler.start(scenario.net.bootstrap_sample(bootstrap_size, seed=20_000 + index))
        scenario.crawlers.append(crawler)
    return scenario.crawlers


@dataclass
class SalityScenario:
    """A running Sality botnet with an injected sensor fleet."""

    net: SalityNetwork
    sensors: List[SalitySensor]
    crawlers: List[SalityCrawler] = field(default_factory=list)
    measurement_start: float = 0.0

    @property
    def crawler_ips(self) -> Set[int]:
        return {crawler.endpoint.ip for crawler in self.crawlers}

    def run_for(self, duration: float) -> None:
        self.net.run_for(duration)


def build_sality_scenario(
    config: Optional[SalityNetworkConfig] = None,
    sensor_count: int = 64,
    announce_hours: float = 6.0,
    topology: Optional[str] = None,
) -> SalityScenario:
    """Build a Sality botnet and inject sensors.

    The paper ran only 64 Sality sensors ("the number is limited by
    Sality's peer management scheme and our IP range"): Sality keeps
    one peer-list entry per IP, so each sensor needs its own address.
    """
    config = config if config is not None else SalityNetworkConfig()
    if topology is not None:
        config.topology = parse_topology(topology)
    net = SalityNetwork(config)
    net.build()
    sensors = []
    for index in range(sensor_count):
        rng = net.rngs.fork(f"sensor-{index}").stream("sensor")
        sensor = SalitySensor(
            node_id=f"sensor-{index:03d}",
            bot_id=rng.getrandbits(32).to_bytes(4, "big"),
            endpoint=sensor_endpoint(index),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            announce_duration=announce_hours * HOUR,
        )
        sensor.seed_peers(net.bootstrap_sample(12, seed=10_000 + index))
        sensors.append(sensor)
    net.start_all()
    for sensor in sensors:
        sensor.start()
    net.run_for(announce_hours * HOUR)
    return SalityScenario(net=net, sensors=sensors, measurement_start=net.scheduler.now)


def sality_fleet_policy(profile: SalityDefectProfile) -> StealthPolicy:
    """Sality crawlers need many requests per bot (single-entry
    responses); in-the-wild ones all burst them."""
    if profile.hard_hitter:
        return StealthPolicy(
            contact_fraction=profile.coverage,
            per_target_interval=4.0,
            requests_per_target=20,
        )
    return StealthPolicy(
        contact_fraction=profile.coverage,
        per_target_interval=20 * MINUTE,
        requests_per_target=6,
    )


def launch_sality_fleet(
    scenario: SalityScenario,
    instances: Sequence[Tuple[SalityDefectProfile, int]],
    bootstrap_size: int = 10,
) -> List[SalityCrawler]:
    """Start crawler instances; multiple instances of one profile run
    from the same /24 (the paper's grouped same-subnet crawlers)."""
    for index, (profile, count) in enumerate(instances):
        for instance in range(count):
            crawler = SalityCrawler(
                name=f"{profile.name}#{instance}",
                endpoint=crawler_endpoint(index, instance=instance),
                transport=scenario.net.transport,
                scheduler=scenario.net.scheduler,
                rng=scenario.net.rngs.fork(f"crawler-{profile.name}-{instance}").stream("crawl"),
                policy=sality_fleet_policy(profile),
                profile=profile,
            )
            crawler.start(
                scenario.net.bootstrap_sample(bootstrap_size, seed=20_000 + index * 10 + instance)
            )
            scenario.crawlers.append(crawler)
    return scenario.crawlers


# -- named chaos scenarios ------------------------------------------------
#
# Each chaos kind maps one *intensity* knob in [0, 1) onto a concrete
# FaultPlan for a measurement window [start, start + duration).  Plans
# are pure data, so building one never consumes randomness: the same
# (kind, intensity, window) always yields the same plan.

#: kind -> one-line description, for ``repro chaos --list``.
CHAOS_KINDS: Dict[str, str] = {
    "baseline": "control row: no faults injected",
    "burst-loss": "Gilbert-Elliott burst loss at the given mean rate",
    "flaky-network": "burst loss plus duplication and reordering",
    "dup-reorder": "packet duplication and reordering only",
    "latency-spike": "two high-latency windows inside the measurement",
    "partition": "cut one infected /12 off from the recon blocks",
    "sensor-outage": "a fraction of the sensor fleet goes down mid-window",
    "leader-crash": "group leaders crash before voting (evaluation-time)",
    "blackout": "burst loss plus one leader crash every round",
    "as-cut": "detach the largest edge AS and its customer cone (needs --topology)",
    "routed-sinkhole": "hijack the first routable /14 to a sinkhole endpoint",
}


def chaos_cut_target(topology: Topology) -> int:
    """The AS an ``as-cut`` plan detaches: the non-tier-1 AS holding
    the most allocated prefix space.

    Depends only on the topology (itself a pure function of its spec),
    so plan building stays deterministic and randomness-free.  Tier-1
    cores are excluded: detaching one would sever most of the graph,
    which is a different experiment than losing the largest edge
    provider.
    """
    return topology.allocator.largest_as(exclude=topology.graph.tier_ones())


def build_chaos_plan(
    kind: str,
    intensity: float,
    start: float,
    duration: float,
    sensor_ids: Sequence[str] = (),
    topology: Optional[Topology] = None,
) -> FaultPlan:
    """The named chaos plan for one run.

    ``intensity`` is the kind's single severity knob: the mean loss
    rate for loss kinds, the dup/reorder probability, the latency-spike
    magnitude scale, the partition's fraction of the window, or the
    fraction of sensors/leaders taken down.  ``leader-crash`` and the
    leader half of ``blackout`` return plans with no transport faults:
    leader crashes are replayed at detection-evaluation time (see
    :func:`repro.workloads.chaos.run_chaos_scenario`).

    ``as-cut`` needs ``topology`` to pick its detach target; the same
    topology must be configured on the population so the transport can
    evaluate the cut.
    """
    if kind not in CHAOS_KINDS:
        raise KeyError(f"unknown chaos kind: {kind!r} (see CHAOS_KINDS)")
    if not 0.0 <= intensity < 1.0:
        raise ValueError("intensity must be in [0, 1)")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if kind == "baseline" or intensity == 0.0:
        return FaultPlan(name=f"{kind}@0")
    name = f"{kind}@{intensity:g}"
    if kind == "as-cut":
        if topology is None:
            raise ValueError("as-cut needs a topology (--topology synth:<seed>)")
        # The cut lands at measurement start, not a quarter in: a
        # crawl saturates small populations quickly, and the exhibit
        # is coverage *lost to the partition*, which needs the detach
        # in force before the crawler reaches the cone.
        return FaultPlan(
            name=name,
            as_partitions=(
                ASPartition(
                    start=start,
                    duration=intensity * duration,
                    detach=chaos_cut_target(topology),
                ),
            ),
        )
    if kind == "routed-sinkhole":
        return FaultPlan(
            name=name,
            sinkholes=(
                RoutedSinkhole(
                    start=start + duration / 4.0,
                    duration=intensity * duration,
                    prefix=SINKHOLE_PREFIX,
                    target_ip=SINKHOLE_ENDPOINT.ip,
                    target_port=SINKHOLE_ENDPOINT.port,
                ),
            ),
        )
    if kind == "burst-loss" or kind == "blackout":
        return FaultPlan(
            name=name, gilbert_elliott=GilbertElliottConfig.for_mean_loss(intensity)
        )
    if kind == "flaky-network":
        return FaultPlan(
            name=name,
            gilbert_elliott=GilbertElliottConfig.for_mean_loss(intensity),
            duplicate_rate=intensity / 4.0,
            reorder_rate=intensity / 4.0,
        )
    if kind == "dup-reorder":
        return FaultPlan(name=name, duplicate_rate=intensity, reorder_rate=intensity)
    if kind == "latency-spike":
        spike_len = duration / 4.0
        return FaultPlan(
            name=name,
            latency_spikes=(
                LatencySpike(start + duration / 8.0, spike_len, 20.0 * intensity, 60.0 * intensity),
                LatencySpike(start + 5 * duration / 8.0, spike_len, 20.0 * intensity, 60.0 * intensity),
            ),
        )
    if kind == "partition":
        # Sever the first infected /12 from the whole recon address
        # space for ``intensity`` of the window: crawlers and sensors
        # lose sight of roughly a third of the routable population.
        return FaultPlan(
            name=name,
            partitions=(
                Partition(
                    start=start + duration / 4.0,
                    duration=intensity * duration,
                    side_a=(Subnet.parse("25.0.0.0/12"),),
                    side_b=(SENSOR_BLOCK, CRAWLER_BLOCK),
                ),
            ),
        )
    if kind == "sensor-outage":
        if not sensor_ids:
            raise ValueError("sensor-outage needs sensor_ids")
        down = max(1, math.ceil(intensity * len(sensor_ids)))
        return FaultPlan(
            name=name,
            node_faults=tuple(
                NodeFault(
                    at=start + duration / 4.0,
                    node_id=node_id,
                    duration=duration / 2.0,
                    kind=OUTAGE,
                )
                for node_id in sensor_ids[:down]
            ),
        )
    # "leader-crash": transport side is clean; the crash schedule is
    # applied when the detection round is evaluated.
    return FaultPlan(name=name)
