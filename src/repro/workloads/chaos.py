"""Chaos experiments: recon quality under injected faults.

The paper's methodology assumes the measurement infrastructure itself
is reliable; this module probes what happens when it is not.  A chaos
run builds a normal scenario (botnet + sensor fleet + one crawler),
injects a named :mod:`fault plan <repro.workloads.scenarios>` at a
given intensity, lets the resilient crawler/sensor machinery (retry
policies, pending expiry) fight back, and scores the surviving recon:
crawl coverage, detection rate, false positives, and the detection
round's confidence annotation.

Every stochastic decision derives from the run's single seed, so a
chaos run replays byte-for-byte: same seed, same chaos, same report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.crawler import SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.detection import DetectionConfig, SensorLogDataset, evaluate_detection
from repro.core.stealth import StealthPolicy
from repro.faults.injector import FaultyTransport, NodeFaultDriver, resolver_for
from repro.faults.retry import CHAOS_RETRY
from repro.sim.clock import HOUR
from repro.topo import Topology, default_blocks, parse_topology
from repro.workloads.population import sality_config, zeus_config
from repro.workloads.scenarios import (
    CHAOS_KINDS,
    SINKHOLE_ENDPOINT,
    build_chaos_plan,
    build_sality_scenario,
    build_zeus_scenario,
    crawler_endpoint,
)

FAMILIES = ("zeus", "sality")


@dataclass
class ChaosRunResult:
    """One cell of the chaos matrix: recon quality under one fault."""

    family: str
    kind: str
    intensity: float
    seed: int
    scale: str
    # Recon quality.
    coverage: float
    detection_rate: float
    false_positives: int
    confidence: float
    quorum_met: bool
    leader_crashes: int
    # Resilience accounting (crawler side).
    requests_sent: int
    requests_expired: int
    retries_sent: int
    targets_given_up: int
    pending_after: int
    # What the injected faults actually did.
    injected: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "kind": self.kind,
            "intensity": self.intensity,
            "seed": self.seed,
            "scale": self.scale,
            "coverage": self.coverage,
            "detection_rate": self.detection_rate,
            "false_positives": self.false_positives,
            "confidence": self.confidence,
            "quorum_met": self.quorum_met,
            "leader_crashes": self.leader_crashes,
            "requests_sent": self.requests_sent,
            "requests_expired": self.requests_expired,
            "retries_sent": self.retries_sent,
            "targets_given_up": self.targets_given_up,
            "pending_after": self.pending_after,
            "injected": dict(sorted(self.injected.items())),
        }


def _failed_groups(
    kind: str, intensity: float, group_count: int, rng: random.Random
) -> Tuple[int, ...]:
    """The leader-crash schedule for one evaluated round.

    ``leader-crash`` crashes each leader independently with probability
    ``intensity``; ``blackout`` always loses exactly one leader.  Other
    kinds draw nothing, keeping their evaluation identical to a
    fault-free one.
    """
    if kind == "leader-crash":
        return tuple(i for i in range(group_count) if rng.random() < intensity)
    if kind == "blackout":
        return (rng.randrange(group_count),)
    return ()


def run_chaos_scenario(
    kind: str,
    intensity: float,
    family: str = "zeus",
    scale: str = "tiny",
    seed: int = 0,
    sensor_count: int = 16,
    announce_hours: float = 2.0,
    measure_hours: float = 4.0,
    group_bits: int = 2,
    threshold: float = 0.30,
    topology: Optional[str] = None,
) -> ChaosRunResult:
    """Run one chaos cell end-to-end and score the surviving recon.

    ``topology`` enables the AS-aware internet layer for the run (and
    is required by the ``as-cut`` kind, which cuts along AS links).
    """
    if family not in FAMILIES:
        raise ValueError(f"unknown family: {family!r}")
    start = announce_hours * HOUR
    duration = measure_hours * HOUR
    sensor_ids = tuple(f"sensor-{index:03d}" for index in range(sensor_count))
    make_config = zeus_config if family == "zeus" else sality_config
    topo_config = parse_topology(topology)
    plan_topology = None
    if topo_config is not None:
        # Build the planner's own copy of the topology; Topology.build
        # is deterministic, so it agrees with the population's instance
        # on every AS label and link.
        base = make_config(scale, master_seed=seed)
        plan_topology = Topology.build(
            topo_config,
            default_blocks(
                base.routable_blocks, base.nat_blocks, base.topology_extra_blocks
            ),
        )
    plan = build_chaos_plan(
        kind, intensity, start, duration, sensor_ids, topology=plan_topology
    )
    config = make_config(
        scale, master_seed=seed, fault_plan=plan, topology=topo_config
    )
    if family == "zeus":
        scenario = build_zeus_scenario(
            config, sensor_count=sensor_count, announce_hours=announce_hours
        )
    else:
        scenario = build_sality_scenario(
            config, sensor_count=sensor_count, announce_hours=announce_hours
        )
    net = scenario.net
    sinkhole_collected = 0
    if plan.sinkholes:
        # The defender's collector: counts hijacked deliveries without
        # retaining them (safe with message recycling).
        def _collect(message) -> None:
            nonlocal sinkhole_collected
            sinkhole_collected += 1

        net.transport.bind(SINKHOLE_ENDPOINT, _collect, routable=True)
    driver = NodeFaultDriver(
        net.scheduler,
        resolver_for(net.bots, {sensor.node_id: sensor for sensor in scenario.sensors}),
    )
    driver.install(plan)

    crawl_rng = net.rngs.fork("chaos-crawler").stream("crawl")
    if family == "zeus":
        crawler = ZeusCrawler(
            name=f"chaos-{kind}",
            endpoint=crawler_endpoint(0),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=crawl_rng,
            policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
            profile=ZeusDefectProfile(name="chaos", hard_hitter=True),
            retry=CHAOS_RETRY,
        )
    else:
        crawler = SalityCrawler(
            name=f"chaos-{kind}",
            endpoint=crawler_endpoint(0),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=crawl_rng,
            policy=StealthPolicy(per_target_interval=4.0, requests_per_target=20),
            profile=SalityDefectProfile(name="chaos", hard_hitter=True),
            retry=CHAOS_RETRY,
        )
    crawler.start(net.bootstrap_sample(8, seed=20_000))
    scenario.run_for(duration)

    routable = {bot.endpoint.ip for bot in net.routable_bots}
    found = set(crawler.report.first_seen_ip) & routable
    coverage = len(found) / len(routable) if routable else 0.0

    if family == "zeus":
        dataset = SensorLogDataset.from_zeus_sensors(
            scenario.sensors, since=scenario.measurement_start
        )
    else:
        dataset = SensorLogDataset.from_sality_sensors(
            scenario.sensors, since=scenario.measurement_start
        )
    detect_config = DetectionConfig(group_bits=group_bits, threshold=threshold)
    crash_rng = net.rngs.fork("chaos-eval").stream("leader-crash")
    failed = _failed_groups(kind, intensity, detect_config.group_count, crash_rng)
    evaluation = evaluate_detection(
        dataset,
        crawler_ips={crawler.endpoint.ip},
        config=detect_config,
        rng=random.Random(seed),
        failed_groups=failed,
    )

    injected: Dict[str, int] = {
        "dropped_loss": net.transport.stats.dropped_loss,
        "duplicated": net.transport.stats.duplicated,
        "reordered": net.transport.stats.reordered,
        "sensor_outages": driver.outages,
        "node_crashes": driver.crashes,
    }
    if isinstance(net.transport, FaultyTransport):
        injected["dropped_burst"] = net.transport.fault_stats.dropped_burst
        injected["dropped_partition"] = net.transport.fault_stats.dropped_partition
        injected["spiked_sends"] = net.transport.fault_stats.spiked_sends
        if plan.as_partitions:
            injected["dropped_as_partition"] = (
                net.transport.fault_stats.dropped_as_partition
            )
        if plan.sinkholes:
            injected["sinkholed"] = net.transport.fault_stats.sinkholed
            injected["sinkhole_collected"] = sinkhole_collected

    return ChaosRunResult(
        family=family,
        kind=kind,
        intensity=intensity,
        seed=seed,
        scale=scale,
        coverage=coverage,
        detection_rate=evaluation.detection_rate,
        false_positives=evaluation.false_positives,
        confidence=evaluation.confidence,
        quorum_met=evaluation.quorum_met,
        leader_crashes=len(failed),
        requests_sent=crawler.report.requests_sent,
        requests_expired=crawler.report.requests_expired,
        retries_sent=crawler.report.retries_sent,
        targets_given_up=crawler.report.targets_given_up,
        pending_after=crawler.pending_requests,
        injected=injected,
    )


def run_chaos_matrix(
    kinds: Sequence[str],
    intensities: Sequence[float],
    family: str = "zeus",
    scale: str = "tiny",
    seed: int = 0,
    **kwargs,
) -> List[ChaosRunResult]:
    """The (kind x intensity) degradation matrix, one run per cell.

    Cells are independent full simulations sharing the seed, so a
    cell's degradation is attributable to its fault alone.
    """
    for kind in kinds:
        if kind not in CHAOS_KINDS:
            raise KeyError(f"unknown chaos kind: {kind!r}")
    results = []
    for kind in kinds:
        for intensity in intensities:
            results.append(
                run_chaos_scenario(
                    kind, intensity, family=family, scale=scale, seed=seed, **kwargs
                )
            )
    return results


def render_degradation_report(results: Sequence[ChaosRunResult]) -> str:
    """The chaos matrix as a fixed-width degradation table."""
    header = (
        f"{'family':<8}{'kind':<16}{'intensity':>9}  {'coverage':>8}  "
        f"{'detect':>6}  {'conf':>5}  {'FP':>3}  {'expired':>7}  "
        f"{'retries':>7}  {'pending':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        quorum = "" if r.quorum_met else " (no quorum)"
        lines.append(
            f"{r.family:<8}{r.kind:<16}{r.intensity:>9.2f}  {r.coverage:>7.1%}  "
            f"{r.detection_rate:>5.0%}  {r.confidence:>5.2f}  {r.false_positives:>3d}  "
            f"{r.requests_expired:>7d}  {r.retries_sent:>7d}  {r.pending_after:>7d}"
            f"{quorum}"
        )
    return "\n".join(lines)
