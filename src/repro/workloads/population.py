"""Preset population scales.

The live networks measured in the paper held ~200,000 (Zeus) and
~900,000 (Sality) bots.  The simulator is O(events) and handles those
sizes in principle, but tests and benchmarks use laptop-friendly
presets; all reproduced metrics are relative (coverage fractions,
detection rates), which are scale-robust.
"""

from __future__ import annotations

from repro.botnets.sality.network import SalityNetworkConfig
from repro.botnets.zeus.network import ZeusNetworkConfig

#: Named scales: population, routable fraction, bootstrap peers.
#: ``xlarge`` and ``zeus`` are paper-scale presets: the GameOver Zeus
#: network held ~200k bots with roughly a quarter directly routable
#: (P2PWNED measurement the paper builds on), seeded from ~50-entry
#: dropper peer lists.
SCALES = {
    "tiny": (120, 0.5, 8),
    "small": (400, 0.35, 12),
    "medium": (1200, 0.3, 15),
    "large": (5000, 0.25, 20),
    "xlarge": (50_000, 0.25, 30),
    "zeus": (200_000, 0.25, 50),
}


def zeus_config(scale: str = "small", master_seed: int = 0, **overrides) -> ZeusNetworkConfig:
    """A Zeus population config at a named scale."""
    population, routable, bootstrap = SCALES[scale]
    params = dict(
        population=population,
        routable_fraction=routable,
        bootstrap_peers=bootstrap,
        master_seed=master_seed,
    )
    params.update(overrides)
    return ZeusNetworkConfig(**params)


def sality_config(scale: str = "small", master_seed: int = 0, **overrides) -> SalityNetworkConfig:
    """A Sality population config at a named scale."""
    population, routable, bootstrap = SCALES[scale]
    params = dict(
        population=population,
        routable_fraction=routable,
        bootstrap_peers=bootstrap,
        master_seed=master_seed,
    )
    params.update(overrides)
    return SalityNetworkConfig(**params)
