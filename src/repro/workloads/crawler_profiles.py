"""In-the-wild crawler defect profiles (paper Tables 2 and 3).

The paper anonymizes the per-crawler defect matrix but states every
aggregate exactly in the Section 4.1 prose.  The per-column assignment
below is a reconstruction satisfying all published counts:

GameOver Zeus (21 crawlers, Table 3):

* constrained padding length (LOP): 14 crawlers
* static/constrained random byte: 10
* static/constrained TTL: 10
* static or small-pool session IDs: 11
* low-entropy session IDs: 3
* fresh random source ID per message (>1000 IDs): 3
* low-entropy (ASCII company-name) source IDs: 5
* non-random padding bytes: 5
* invalid encryption (wrong per-bot keys interspersed): 7
* incorrect protocol logic (bare PLR streams): 17
* abnormal (randomized) lookup keys: "many" -- assigned to 12
* hard hitters: 9
* at least one range anomaly in 20 of 21
* coverage up to 92%, nearly all >= 20%, most >= 50%, one tiny
  open-source crawler included despite low coverage

Sality (11 crawlers, Table 2; 6 of the 11 are instances of the same
crawler in one subnet, collapsed into the first column):

* fixed/constrained padding length: all 11
* fixed source port: 10 of 11
* hard hitters: all 11
* repeated bare peer-list requests (no URL packs): 9 of 11
* invalid minor version: 9 of 11 (only 2 valid)
* no identifier or encryption anomalies (Sections 4.1.2/4.1.3)
* coverage: 69% for the grouped instances, 100% for the rest
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.defects import SalityDefectProfile, ZeusDefectProfile


def _z(index: int, coverage: float, **defects) -> ZeusDefectProfile:
    return ZeusDefectProfile(name=f"zeus-c{index}", coverage=coverage, **defects)


# Helper sets encoding the aggregate counts listed in the module
# docstring (1-based crawler indexes).
_LOP = set(range(1, 15))                       # 14
_RND = set(range(1, 9)) | {15, 16}             # 10
_TTL = set(range(3, 11)) | {17, 18}            # 10
_SESSION_RANGE = {1, 2, 5, 6, 7, 8, 9, 13, 14, 19, 20}  # 11
_SESSION_ENTROPY = {10, 11, 12}                # 3
_RANDOM_SOURCE = {15, 16, 17}                  # 3
_SOURCE_ENTROPY = {1, 4, 11, 18, 19}           # 5
_PADDING_ENTROPY = {15, 16, 17, 18, 20}        # 5 (none with LOP=0)
_ENCRYPTION = {2, 4, 6, 8, 10, 12, 14}         # 7
_PROTOCOL_LOGIC = set(range(1, 18))            # 17
_ABNORMAL_LOOKUP = {1, 3, 5, 7, 9, 11, 13, 15, 16, 17, 18, 21}  # 12
_HARD_HITTER = set(range(1, 10))               # 9

# Coverage percentages: max 92, nearly all >= 20, most >= 50, a few
# tiny ones including the low-coverage open-source crawler (c21).
_ZEUS_COVERAGE = [
    90, 82, 85, 75, 92, 84, 20, 53, 62, 44, 85, 92, 92, 88, 54, 87, 86, 27, 9, 8, 2,
]

ZEUS_CRAWLERS: List[ZeusDefectProfile] = [
    _z(
        index,
        coverage=_ZEUS_COVERAGE[index - 1] / 100.0,
        lop_range=index in _LOP,
        rnd_range=index in _RND,
        ttl_range=index in _TTL,
        session_range=index in _SESSION_RANGE,
        session_entropy=index in _SESSION_ENTROPY,
        random_source=index in _RANDOM_SOURCE,
        source_entropy=index in _SOURCE_ENTROPY,
        padding_entropy=index in _PADDING_ENTROPY,
        encryption=index in _ENCRYPTION,
        protocol_logic=index in _PROTOCOL_LOGIC,
        abnormal_lookup=index in _ABNORMAL_LOOKUP,
        hard_hitter=index in _HARD_HITTER,
    )
    for index in range(1, 22)
]


def _s(index: int, coverage: float, **defects) -> SalityDefectProfile:
    return SalityDefectProfile(name=f"sality-c{index}", coverage=coverage, **defects)


# Table 2 columns: c1 collapses 6 same-subnet instances.
SALITY_CRAWLERS: List[SalityDefectProfile] = [
    _s(1, 0.69, lop_range=True, port_range=True, hard_hitter=True,
       protocol_logic=True, version=True),
    _s(2, 1.00, lop_range=True, port_range=True, hard_hitter=True,
       protocol_logic=True, version=False),
    _s(3, 1.00, lop_range=True, port_range=True, hard_hitter=True,
       protocol_logic=True, version=False),
    _s(4, 1.00, lop_range=True, port_range=True, hard_hitter=True,
       protocol_logic=False, version=True),
    _s(5, 1.00, lop_range=True, port_range=False, hard_hitter=True,
       protocol_logic=False, version=True),
    _s(6, 1.00, lop_range=True, port_range=True, hard_hitter=True,
       protocol_logic=True, version=True),
]

# Instance expansion: Table 2's first column is 6 crawler instances
# running the same code in one subnet.  Fleet runners launch one
# crawler per instance; analyzers group them back by subnet.
SALITY_CRAWLER_INSTANCES: List[Tuple[SalityDefectProfile, int]] = [
    (SALITY_CRAWLERS[0], 6),
    (SALITY_CRAWLERS[1], 1),
    (SALITY_CRAWLERS[2], 1),
    (SALITY_CRAWLERS[3], 1),
    (SALITY_CRAWLERS[4], 1),
    (SALITY_CRAWLERS[5], 1),
]


def zeus_aggregate_counts() -> Dict[str, int]:
    """Defect counts across the Zeus fleet (the published aggregates)."""
    counts: Dict[str, int] = {}
    for profile in ZEUS_CRAWLERS:
        for defect in profile.defect_names():
            counts[defect] = counts.get(defect, 0) + 1
    return counts


def sality_aggregate_counts() -> Dict[str, int]:
    """Defect counts across the 11 Sality crawler *instances*."""
    counts: Dict[str, int] = {}
    for profile, instances in SALITY_CRAWLER_INSTANCES:
        for defect in profile.defect_names():
            counts[defect] = counts.get(defect, 0) + instances
    return counts
