"""Workload generators and in-the-wild recon-tool profiles.

* :mod:`repro.workloads.crawler_profiles` -- the 21 GameOver Zeus and
  11 Sality crawler defect profiles from the paper's Tables 3 and 2.
* :mod:`repro.workloads.sensor_profiles` -- the 10 Zeus sensor
  anomaly profiles of Section 4.2.
* :mod:`repro.workloads.population` -- preset population scales.
* :mod:`repro.workloads.scenarios` -- canned end-to-end scenarios
  (botnet + sensor fleet + crawler fleet) shared by the examples,
  integration tests, and benchmarks.
"""

from repro.workloads.crawler_profiles import (
    SALITY_CRAWLERS,
    SALITY_CRAWLER_INSTANCES,
    ZEUS_CRAWLERS,
)
from repro.workloads.sensor_profiles import ZEUS_SENSOR_PROFILES

__all__ = [
    "SALITY_CRAWLERS",
    "SALITY_CRAWLER_INSTANCES",
    "ZEUS_CRAWLERS",
    "ZEUS_SENSOR_PROFILES",
]
