"""Analysis utilities: coverage metrics, detection scoring, renderers.

* :mod:`repro.analysis.coverage` -- coverage-over-time series and the
  relative-coverage numbers of Figures 3/4 and Table 4's C rows.
* :mod:`repro.analysis.metrics` -- detection-accuracy grids and
  precision/recall helpers for Table 4 / Figure 2.
* :mod:`repro.analysis.tables` -- plain-text renderers that print each
  of the paper's tables and figures from measured data.
"""

from repro.analysis.coverage import coverage_timeline, relative_coverage
from repro.analysis.metrics import detection_table, precision_recall

__all__ = [
    "coverage_timeline",
    "detection_table",
    "precision_recall",
    "relative_coverage",
]
