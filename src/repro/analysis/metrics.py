"""Detection-accuracy metrics (Figure 2, Table 4)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.detection.offline import EvaluationResult


def precision_recall(
    classified: Set[int], ground_truth: Set[int]
) -> Tuple[float, float]:
    """(precision, recall) of a classified set against ground truth."""
    if not classified:
        return (1.0 if not ground_truth else 0.0, 0.0 if ground_truth else 1.0)
    true_positives = len(classified & ground_truth)
    precision = true_positives / len(classified)
    recall = true_positives / len(ground_truth) if ground_truth else 1.0
    return precision, recall


def detection_table(
    grid: Dict[Tuple[float, int], EvaluationResult],
) -> List[Dict[str, float]]:
    """Flatten a (threshold x ratio) grid into Table 4 rows.

    One row per threshold: the false-positive count at full contact
    plus the detection percentage per ratio column.
    """
    thresholds = sorted({threshold for threshold, _ in grid})
    ratios = sorted({ratio for _, ratio in grid})
    rows = []
    for threshold in thresholds:
        row: Dict[str, float] = {"t": threshold * 100}
        base = grid.get((threshold, 1))
        row["fp"] = float(base.false_positives) if base is not None else float("nan")
        for ratio in ratios:
            result = grid[(threshold, ratio)]
            row[f"D1/{ratio}"] = round(result.detection_rate * 100, 1)
        rows.append(row)
    return rows


def detection_series(
    grid: Dict[Tuple[float, int], EvaluationResult], threshold: float
) -> List[Tuple[int, float]]:
    """One Figure 2 line: (contact ratio, % detected) for a threshold."""
    points = [
        (ratio, result.detection_rate * 100)
        for (t, ratio), result in grid.items()
        if t == threshold
    ]
    return sorted(points)
