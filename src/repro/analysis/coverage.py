"""Crawl-coverage metrics (Figures 3/4, Table 4 C rows)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.crawler import CrawlReport
from repro.sim.clock import HOUR


def coverage_timeline(
    report: CrawlReport, until: float, bucket: float = HOUR
) -> List[Tuple[float, int]]:
    """Cumulative distinct-IP curve for one crawl (a Figure 3/4 line)."""
    return report.coverage_series(until=until, bucket=bucket)


def relative_coverage(limited: CrawlReport, full: CrawlReport) -> float:
    """Bots found by a limited crawl relative to the unrestricted one.

    This is the C metric of Table 4 ("% bots covered by crawler using
    contact-ratio limiting (relative)") -- the paper stresses that
    absolute reach is irrelevant, only the relative degradation.
    """
    if full.distinct_ips == 0:
        return 0.0
    return limited.distinct_ips / full.distinct_ips


def relative_coverage_series(
    reports: Dict[str, CrawlReport], baseline: str
) -> Dict[str, float]:
    """Relative coverage of several labelled crawls against one
    baseline label (e.g. {'1/1': ..., '1/2': ...} against '1/1')."""
    if baseline not in reports:
        raise KeyError(f"baseline {baseline!r} not among reports")
    full = reports[baseline]
    return {label: relative_coverage(report, full) for label, report in reports.items()}


def hourly_growth(series: Sequence[Tuple[float, int]]) -> List[int]:
    """Per-bucket increments of a coverage curve (diagnoses whether a
    crawl has converged or is still discovering)."""
    counts = [count for _, count in series]
    return [b - a for a, b in zip(counts, counts[1:])]
