"""Plain-text renderers for the paper's tables and figures.

Each function returns a string shaped like the corresponding exhibit
in the paper, computed from *measured* data wherever data exists
(Tables 2-4, Figures 2-4) and from the encoded family registry for the
qualitative matrices (Tables 1, 5, 6).  Benchmarks print these so a
run's output reads side-by-side against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.botnets.families import FAMILIES, FAMILY_ORDER
from repro.core.anomaly.report import (
    SALITY_DEFECT_ROWS,
    ZEUS_DEFECT_ROWS,
    CrawlerFinding,
)
from repro.core.detection.offline import EvaluationResult
from repro.core.scanning import susceptibility_report
from repro.sim.clock import HOUR

_CHECK = "x"
_BLANK = "."


def _matrix_table(
    title: str,
    rows: Sequence[str],
    columns: Sequence[str],
    cells: Mapping[str, Sequence[bool]],
    coverage: Optional[Sequence[float]] = None,
) -> str:
    label_width = max(len(row) for row in rows + ["Coverage (%)"]) + 2
    col_width = max(max((len(c) for c in columns), default=4) + 1, 5)
    lines = [title, ""]
    header = " " * label_width + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    for row in rows:
        flags = cells.get(row, [False] * len(columns))
        body = "".join(
            (_CHECK if flag else _BLANK).rjust(col_width) for flag in flags
        )
        lines.append(row.ljust(label_width) + body)
    if coverage is not None:
        body = "".join(f"{value * 100:.0f}".rjust(col_width) for value in coverage)
        lines.append("Coverage (%)".ljust(label_width) + body)
    return "\n".join(lines)


def render_table1() -> str:
    """Table 1: anti-recon measures observed in P2P botnets."""
    headers = [
        "Family", "IP filter", "Reputation", "Info limit", "Clustering",
        "Flux", "Blacklisting", "Disinfo", "Retaliation",
    ]
    rows = []
    for name in FAMILY_ORDER:
        family = FAMILIES[name]
        rows.append(
            [
                name,
                family.ip_filter.value,
                family.reputation or "-",
                family.info_limit.value,
                family.clustering or "-",
                family.flux or "-",
                family.blacklisting.value,
                family.disinformation or "-",
                family.retaliation or "-",
            ]
        )
    widths = [
        max(len(str(row[i])) for row in rows + [headers]) + 2 for i in range(len(headers))
    ]
    lines = ["Table 1: Anti-recon measures observed in P2P botnets", ""]
    lines.append("".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_defect_table(
    title: str,
    findings: Sequence[CrawlerFinding],
    names: Sequence[str],
    rows: Sequence[str],
) -> str:
    """Tables 2/3: measured defect matrix, one column per crawler."""
    cells = {row: [finding.has(row) for finding in findings] for row in rows}
    coverage = [finding.coverage for finding in findings]
    return _matrix_table(title, list(rows), list(names), cells, coverage)


def render_table2(findings: Sequence[CrawlerFinding], names: Sequence[str]) -> str:
    return render_defect_table(
        "Table 2: Defects found in Sality crawlers", findings, names, SALITY_DEFECT_ROWS
    )


def render_table3(findings: Sequence[CrawlerFinding], names: Sequence[str]) -> str:
    return render_defect_table(
        "Table 3: Defects found in GameOver Zeus crawlers", findings, names, ZEUS_DEFECT_ROWS
    )


def render_table4(
    grid: Mapping[Tuple[float, int], EvaluationResult],
    coverage_rows: Optional[Mapping[str, Mapping[int, float]]] = None,
) -> str:
    """Table 4: false positives vs detected crawlers per (t, ratio),
    plus optional relative-coverage rows (C_Zeus / C_Sality)."""
    thresholds = sorted({t for t, _ in grid})
    ratios = sorted({r for _, r in grid})
    lines = ["Table 4: False positives vs. detected crawlers", ""]
    header = "t%".rjust(5) + "#FP".rjust(7)
    header += "".join(f"D1/{ratio}".rjust(8) for ratio in ratios)
    lines.append(header)
    for threshold in thresholds:
        base = grid.get((threshold, 1))
        fp = base.false_positives if base is not None else float("nan")
        row = f"{threshold * 100:5.0f}{fp:7.0f}"
        for ratio in ratios:
            row += f"{grid[(threshold, ratio)].detection_rate * 100:8.0f}"
        lines.append(row)
    if coverage_rows:
        lines.append("")
        for label, series in coverage_rows.items():
            row = label.rjust(5) + "   N/A "
            for ratio in ratios:
                value = series.get(ratio)
                row += ("     N/A" if value is None else f"{value * 100:8.0f}")
            lines.append(row)
    return "\n".join(lines)


def render_table5() -> str:
    """Table 5: susceptibility to Internet-wide scanning."""
    lines = ["Table 5: Susceptibility of P2P botnets to Internet-wide scanning", ""]
    lines.append(f"{'Family':<14}{'Fixed port':>12}{'Probe msg':>12}{'Susceptible':>13}")
    for row in susceptibility_report():
        lines.append(
            f"{row.family:<14}"
            f"{'yes' if row.fixed_port else 'no':>12}"
            f"{'yes' if row.probe_constructible else 'no':>12}"
            f"{'yes' if row.susceptible else 'no':>13}"
        )
    return "\n".join(lines)


def render_table6(measured: Optional[Mapping[str, Mapping[str, str]]] = None) -> str:
    """Table 6: tradeoffs of P2P botnet reconnaissance methods.

    ``measured`` may add per-method measured columns (e.g. NATed
    coverage, edge counts) from a scenario run.
    """
    base: Dict[str, Dict[str, str]] = {
        "Crawling": {
            "Generic": "yes",
            "Mapping": "Edges",
            "Finds NATed": "no",
            "Finds edges": "yes",
            "Needs bootstrap": "yes",
            "Stealth needs": "protocol adherence, address distribution, rate limiting",
        },
        "Sensor injection": {
            "Generic": "yes",
            "Mapping": "Nodes",
            "Finds NATed": "yes",
            "Finds edges": "only if augmented",
            "Needs bootstrap": "yes",
            "Stealth needs": "protocol adherence, announcement rate limiting",
        },
        "Internet-wide scanning": {
            "Generic": "no",
            "Mapping": "Nodes",
            "Finds NATed": "no",
            "Finds edges": "no",
            "Needs bootstrap": "no",
            "Stealth needs": "sound probe syntax, address distribution, one-time usage",
        },
    }
    if measured:
        for method, extra in measured.items():
            base.setdefault(method, {}).update(extra)
    lines = ["Table 6: Tradeoffs of P2P botnet reconnaissance methods", ""]
    for method, attributes in base.items():
        lines.append(method)
        for key, value in attributes.items():
            lines.append(f"    {key:<16} {value}")
        lines.append("")
    return "\n".join(lines).rstrip()


def render_series_figure(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, int]]],
    y_label: str = "bot IPs",
) -> str:
    """Figures 3/4: one column per labelled curve, hourly rows."""
    labels = list(series)
    lines = [title, ""]
    header = "hour".rjust(6) + "".join(label.rjust(12) for label in labels)
    lines.append(header)
    length = max(len(points) for points in series.values())
    for index in range(length):
        row = ""
        hour = None
        for label in labels:
            points = series[label]
            if index < len(points):
                time, count = points[index]
                hour = time / HOUR if hour is None else hour
                row += f"{count:12d}"
            else:
                row += " " * 12
        lines.append(f"{(hour if hour is not None else 0):6.1f}" + row)
    lines.append("")
    lines.append(f"(cumulative {y_label} per curve)")
    return "\n".join(lines)


def render_fig2(
    series_by_threshold: Mapping[float, Sequence[Tuple[int, float]]],
) -> str:
    """Figure 2: % detected crawlers vs contact ratio per threshold."""
    lines = ["Figure 2: Crawlers detected in 24 hours (|G|=8)", ""]
    ratios = sorted({ratio for points in series_by_threshold.values() for ratio, _ in points})
    header = "t%".rjust(5) + "".join(f"1/{ratio}".rjust(8) for ratio in ratios)
    lines.append(header)
    for threshold in sorted(series_by_threshold):
        points = dict(series_by_threshold[threshold])
        row = f"{threshold * 100:5.0f}"
        for ratio in ratios:
            value = points.get(ratio)
            row += "     ---" if value is None else f"{value:8.0f}"
        lines.append(row)
    lines.append("")
    lines.append("(cell = % of ground-truth crawlers detected)")
    return "\n".join(lines)
