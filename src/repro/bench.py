"""Perf-regression bench harness: time the canonical workloads.

``repro bench`` (and ``benchmarks/bench_perf.py``) runs the three
workload shapes everything else in the repo is built from -- a traced
crawl, a capture-plus-detection evaluation, and a sharded-sweep cell
grid -- and records wall time, simulated events per second, and peak
RSS into a schema-versioned ``BENCH_recon.json``.  Comparing against a
checked-in baseline with ``--baseline`` turns the ROADMAP's "fast as
the hardware allows" north star into an enforced budget: CI fails when
a workload regresses past the threshold (default 25%).

Workload *results* are deterministic (fixed seeds); only the timings
vary by machine.  Baselines should therefore be regenerated on the
machine that enforces them, and compared with a threshold wide enough
to absorb scheduler noise.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Bump when the BENCH_recon.json layout changes shape.
BENCH_SCHEMA = "repro-bench/1"

#: Default regression gate: fail past +25% wall time vs baseline.
DEFAULT_THRESHOLD = 0.25

_BENCH_SEED = 1729


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (monotonic high-water mark)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak //= 1024
    return int(peak)


# -- workloads -------------------------------------------------------------
#
# Each workload builds its scenario from fixed seeds, runs it under an
# ambient tracer, and returns the trace-event count -- the denominator
# for events/sec.  ``quick`` trims simulated hours, not the shape.


def _workload_crawl(quick: bool) -> int:
    import random

    from repro.core.crawler import ZeusCrawler
    from repro.core.defects import ZeusDefectProfile
    from repro.core.stealth import StealthPolicy
    from repro.net.address import parse_ip
    from repro.net.transport import Endpoint
    from repro.obs import runtime
    from repro.sim.clock import HOUR
    from repro.workloads.population import zeus_config
    from repro.workloads.scenarios import build_zeus_scenario

    scenario = build_zeus_scenario(
        zeus_config("tiny", master_seed=_BENCH_SEED),
        sensor_count=8,
        announce_hours=1.0,
    )
    crawler = ZeusCrawler(
        name="bench-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=scenario.net.transport,
        scheduler=scenario.net.scheduler,
        rng=random.Random(_BENCH_SEED),
        policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
        profile=ZeusDefectProfile(name="bench"),
    )
    crawler.start(scenario.net.bootstrap_sample(8, seed=_BENCH_SEED))
    scenario.run_for((1.0 if quick else 4.0) * HOUR)
    return len(runtime.tracer())


def _workload_detect(quick: bool) -> int:
    import random

    from repro.core.detection import DetectionConfig, SensorLogDataset
    from repro.core.detection.offline import evaluate_detection
    from repro.obs import runtime
    from repro.sim.clock import HOUR
    from repro.workloads.crawler_profiles import ZEUS_CRAWLERS
    from repro.workloads.population import zeus_config
    from repro.workloads.scenarios import build_zeus_scenario, launch_zeus_fleet

    scenario = build_zeus_scenario(
        zeus_config("tiny", master_seed=_BENCH_SEED),
        sensor_count=12,
        announce_hours=1.0,
    )
    launch_zeus_fleet(scenario, ZEUS_CRAWLERS[:4])
    scenario.run_for((2.0 if quick else 4.0) * HOUR)
    dataset = SensorLogDataset.from_zeus_sensors(
        scenario.sensors, since=scenario.measurement_start
    )
    truth = {crawler.endpoint.ip for crawler in scenario.crawlers}
    evaluate_detection(
        dataset,
        truth,
        DetectionConfig(group_bits=2, threshold=0.10),
        random.Random(_BENCH_SEED),
    )
    return len(runtime.tracer())


def _workload_sweep(quick: bool) -> int:
    from repro.obs import runtime
    from repro.runner import build_sweep, run_sweep
    from repro.runner.points import clear_capture_cache

    spec = build_sweep(
        "fig2",
        root_seed=_BENCH_SEED,
        scale="tiny",
        sensors=12,
        announce_hours=1.0,
        measure_hours=2.0 if quick else 4.0,
        thresholds=(0.05, 0.10),
        ratios=(1, 2) if quick else (1, 2, 4),
        fleet_size=4,
    )
    clear_capture_cache()  # time the capture build, not a warm cache
    run_sweep(spec, workers=1, capture_metrics=True)
    return len(runtime.tracer())


WORKLOADS: Dict[str, Callable[[bool], int]] = {
    "crawl": _workload_crawl,
    "detect": _workload_detect,
    "sweep": _workload_sweep,
}


# -- running ---------------------------------------------------------------


def run_workload(name: str, quick: bool = False, repeat: int = 1) -> Dict[str, Any]:
    """Time one workload; best-of-``repeat`` wall time, traced event
    count, and the process RSS high-water mark afterwards."""
    from repro.obs import runtime
    from repro.obs.tracer import Tracer

    fn = WORKLOADS[name]
    best_wall: Optional[float] = None
    events = 0
    for _ in range(max(1, repeat)):
        tracer = Tracer()
        start = time.perf_counter()
        with runtime.activated(tracer=tracer):
            events = fn(quick)
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    wall_s = best_wall or 0.0
    return {
        "wall_s": round(wall_s, 4),
        "events": events,
        "events_per_s": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_bench(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeat: int = 1,
) -> Dict[str, Any]:
    """Run the named workloads (all by default); returns the
    schema-versioned document ``repro bench`` writes."""
    selected = list(names) if names else sorted(WORKLOADS)
    unknown = [name for name in selected if name not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workloads {unknown}; available: {sorted(WORKLOADS)}")
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "repeat": max(1, repeat),
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "workloads": {
            name: run_workload(name, quick=quick, repeat=repeat) for name in selected
        },
    }


def write_bench(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(doc, stream, indent=2, sort_keys=True)
        stream.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as stream:
        doc = json.load(stream)
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} is not {BENCH_SCHEMA!r}; regenerate the file"
        )
    return doc


# -- baseline compare ------------------------------------------------------


def compare_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Compare wall times workload-by-workload.

    Returns ``(report_lines, regressions)``; a non-empty second element
    means at least one shared workload slowed past ``threshold``
    (relative).  Workloads present on only one side are reported but
    never fail the gate (the axis just changed).
    """
    lines: List[str] = []
    regressions: List[str] = []
    cur = current.get("workloads", {})
    base = baseline.get("workloads", {})
    for name in sorted(set(cur) | set(base)):
        if name not in base:
            lines.append(f"{name:<8} new workload ({cur[name]['wall_s']:.3f}s), no baseline")
            continue
        if name not in cur:
            lines.append(f"{name:<8} missing from current run (baseline {base[name]['wall_s']:.3f}s)")
            continue
        was, now = base[name]["wall_s"], cur[name]["wall_s"]
        change = (now - was) / was if was > 0 else 0.0
        verdict = "ok"
        if change > threshold:
            verdict = f"REGRESSION (> +{threshold * 100:.0f}%)"
            regressions.append(name)
        lines.append(
            f"{name:<8} {was:.3f}s -> {now:.3f}s ({change:+.1%}, "
            f"{cur[name]['events_per_s']:.0f} ev/s, "
            f"rss {cur[name]['peak_rss_kb']} KiB)  {verdict}"
        )
    return lines, regressions


def render_bench(doc: Dict[str, Any]) -> str:
    lines = [
        f"bench ({'quick' if doc.get('quick') else 'full'}, "
        f"best of {doc.get('repeat', 1)}, python {doc.get('python', '?')}):"
    ]
    for name, entry in sorted(doc.get("workloads", {}).items()):
        lines.append(
            f"  {name:<8} {entry['wall_s']:.3f}s wall, "
            f"{entry['events']} events ({entry['events_per_s']:.0f} ev/s), "
            f"peak RSS {entry['peak_rss_kb']} KiB"
        )
    return "\n".join(lines)
