"""Perf-regression bench harness: time the canonical workloads.

``repro bench`` (and ``benchmarks/bench_perf.py``) runs the three
workload shapes everything else in the repo is built from -- a traced
crawl, a capture-plus-detection evaluation, and a sharded-sweep cell
grid -- and records wall time, simulated events per second, and peak
RSS into a schema-versioned ``BENCH_recon.json``.  Comparing against a
checked-in baseline with ``--baseline`` turns the ROADMAP's "fast as
the hardware allows" north star into an enforced budget: CI fails when
a workload regresses past the threshold (default 25%).

Workload *results* are deterministic (fixed seeds); only the timings
vary by machine.  Baselines should therefore be regenerated on the
machine that enforces them, and compared with a threshold wide enough
to absorb scheduler noise.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Bump when the BENCH_recon.json layout changes shape.
#: v2: workloads return extras (population memory line items) and the
#: ``population`` workload (build + churn, no recon) joined the set.
#: v3: ``--profile`` attaches a per-workload subsystem wall-time
#: breakdown (see repro.obs.profile), letting baseline compare name
#: which subsystem regressed.
BENCH_SCHEMA = "repro-bench/3"
#: Baselines this module can still *read* for comparison.  v1 lacks the
#: per-workload memory line items and v1/v2 lack the profile breakdown,
#: but the core keys line up, so an old baseline stays usable as a
#: regression reference until refreshed.
_READABLE_SCHEMAS = frozenset({"repro-bench/1", "repro-bench/2", BENCH_SCHEMA})

#: Default regression gate: fail past +25% wall time vs baseline.
DEFAULT_THRESHOLD = 0.25

_BENCH_SEED = 1729


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (monotonic high-water mark)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak //= 1024
    return int(peak)


def _current_rss_kb() -> int:
    """Instantaneous RSS in KiB; deltas around a build step measure the
    population's resident footprint (the peak counter never goes down)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as stream:
            rss_pages = int(stream.read().split()[1])
        return rss_pages * (resource.getpagesize() // 1024)
    except (OSError, ValueError, IndexError):  # non-Linux fallback
        return _peak_rss_kb()


# Public names for the RSS helpers: the telemetry emitter
# (repro.obs.telemetry) samples process memory through these.
def peak_rss_kb() -> int:
    """Process peak RSS in KiB (monotonic high-water mark)."""
    return _peak_rss_kb()


def current_rss_kb() -> int:
    """Instantaneous process RSS in KiB."""
    return _current_rss_kb()


# -- workloads -------------------------------------------------------------
#
# Each workload builds its scenario from fixed seeds, runs it under an
# ambient tracer, and returns a dict with ``events`` (the denominator
# for events/sec, trace events unless noted) plus extra line items such
# as ``population_rss_kb`` (RSS delta around the population build).
# ``quick`` trims simulated hours, not the shape.


def _workload_crawl(quick: bool) -> Dict[str, Any]:
    import random

    from repro.core.crawler import ZeusCrawler
    from repro.core.defects import ZeusDefectProfile
    from repro.core.stealth import StealthPolicy
    from repro.net.address import parse_ip
    from repro.net.transport import Endpoint
    from repro.obs import runtime
    from repro.sim.clock import HOUR
    from repro.workloads.population import zeus_config
    from repro.workloads.scenarios import build_zeus_scenario

    rss_before = _current_rss_kb()
    with runtime.profiler().section("build", "crawl.scenario"):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=_BENCH_SEED),
            sensor_count=8,
            announce_hours=1.0,
        )
    population_rss_kb = max(0, _current_rss_kb() - rss_before)
    crawler = ZeusCrawler(
        name="bench-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=scenario.net.transport,
        scheduler=scenario.net.scheduler,
        rng=random.Random(_BENCH_SEED),
        policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
        profile=ZeusDefectProfile(name="bench"),
    )
    crawler.start(scenario.net.bootstrap_sample(8, seed=_BENCH_SEED))
    scenario.run_for((1.0 if quick else 4.0) * HOUR)
    return {"events": len(runtime.tracer()), "population_rss_kb": population_rss_kb}


def _workload_detect(quick: bool) -> Dict[str, Any]:
    import random

    from repro.core.detection import DetectionConfig, SensorLogDataset
    from repro.core.detection.offline import evaluate_detection
    from repro.obs import runtime
    from repro.sim.clock import HOUR
    from repro.workloads.crawler_profiles import ZEUS_CRAWLERS
    from repro.workloads.population import zeus_config
    from repro.workloads.scenarios import build_zeus_scenario, launch_zeus_fleet

    rss_before = _current_rss_kb()
    with runtime.profiler().section("build", "detect.scenario"):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=_BENCH_SEED),
            sensor_count=12,
            announce_hours=1.0,
        )
    population_rss_kb = max(0, _current_rss_kb() - rss_before)
    launch_zeus_fleet(scenario, ZEUS_CRAWLERS[:4])
    scenario.run_for((2.0 if quick else 4.0) * HOUR)
    dataset = SensorLogDataset.from_zeus_sensors(
        scenario.sensors, since=scenario.measurement_start
    )
    truth = {crawler.endpoint.ip for crawler in scenario.crawlers}
    with runtime.profiler().section("detect", "detect.offline_evaluate"):
        evaluate_detection(
            dataset,
            truth,
            DetectionConfig(group_bits=2, threshold=0.10),
            random.Random(_BENCH_SEED),
        )
    return {"events": len(runtime.tracer()), "population_rss_kb": population_rss_kb}


def _workload_sweep(quick: bool) -> Dict[str, Any]:
    from repro.obs import runtime
    from repro.runner import build_sweep, run_sweep
    from repro.runner.points import clear_capture_cache

    spec = build_sweep(
        "fig2",
        root_seed=_BENCH_SEED,
        scale="tiny",
        sensors=12,
        announce_hours=1.0,
        measure_hours=2.0 if quick else 4.0,
        thresholds=(0.05, 0.10),
        ratios=(1, 2) if quick else (1, 2, 4),
        fleet_size=4,
    )
    clear_capture_cache()  # time the capture build, not a warm cache
    run_sweep(spec, workers=1, capture_metrics=True)
    return {"events": len(runtime.tracer())}


def _workload_population(quick: bool) -> Dict[str, Any]:
    """Build and churn a ``large`` Zeus population -- no recon.

    Exercises exactly the layers the hot-path engine refactor targets
    (scheduler batching, SoA population core, pooled transport) and
    reports the population's resident footprint as a line item, so
    memory regressions in the core gate the bench even when the traced
    recon workloads stay fast.  ``events`` counts scheduler dispatches.
    """
    from repro.botnets.zeus.network import ZeusNetwork
    from repro.net.churn import ChurnConfig
    from repro.obs import runtime
    from repro.sim.clock import HOUR
    from repro.workloads.population import zeus_config

    config = zeus_config(
        "large", master_seed=_BENCH_SEED, churn=ChurnConfig(), recycle_messages=True
    )
    rss_before = _current_rss_kb()
    with runtime.profiler().section("build", "population.build"):
        net = ZeusNetwork(config)
        net.build()
    population_rss_kb = max(0, _current_rss_kb() - rss_before)
    net.start_all()
    net.run_for((0.5 if quick else 2.0) * HOUR)
    extras: Dict[str, Any] = {
        "events": net.scheduler.stats().dispatched,
        "population_rss_kb": population_rss_kb,
        "churn_transitions": net.churn.transitions if net.churn is not None else 0,
    }
    if net.state is not None:
        stats = net.state.stats()
        extras["peer_slots_live"] = stats["peer_slots_live"]
        extras["peer_slots_allocated"] = stats["peer_slots_allocated"]
    return extras


def _workload_topo(quick: bool) -> Dict[str, Any]:
    """A crawl over the AS-aware internet layer -- same shape as
    ``crawl`` but every delivery pays an AS-path latency lookup, so
    this isolates the topology layer's overhead (path resolution,
    prefix mapping, per-hop latency).  Extras report the path cache's
    hit/miss split: misses are whole-source Dijkstra runs, so a miss
    count that grows with the run would flag a cache regression.
    """
    import random

    from repro.core.crawler import ZeusCrawler
    from repro.core.defects import ZeusDefectProfile
    from repro.core.stealth import StealthPolicy
    from repro.net.address import parse_ip
    from repro.net.transport import Endpoint
    from repro.obs import runtime
    from repro.sim.clock import HOUR
    from repro.workloads.population import zeus_config
    from repro.workloads.scenarios import build_zeus_scenario

    rss_before = _current_rss_kb()
    with runtime.profiler().section("build", "topo.scenario"):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=_BENCH_SEED, topology=f"synth:{_BENCH_SEED}"),
            sensor_count=8,
            announce_hours=1.0,
        )
    population_rss_kb = max(0, _current_rss_kb() - rss_before)
    crawler = ZeusCrawler(
        name="bench-topo-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=scenario.net.transport,
        scheduler=scenario.net.scheduler,
        rng=random.Random(_BENCH_SEED),
        policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
        profile=ZeusDefectProfile(name="bench-topo"),
    )
    crawler.start(scenario.net.bootstrap_sample(8, seed=_BENCH_SEED))
    scenario.run_for((1.0 if quick else 4.0) * HOUR)
    extras: Dict[str, Any] = {
        "events": len(runtime.tracer()),
        "population_rss_kb": population_rss_kb,
    }
    model = scenario.net.transport.latency_model
    if model is not None:
        hits, misses = model.resolver.cache_stats()
        extras["path_cache_hits"] = hits
        extras["path_cache_misses"] = misses
        extras["topo_sends"] = model.sends
    return extras


WORKLOADS: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "crawl": _workload_crawl,
    "detect": _workload_detect,
    "population": _workload_population,
    "sweep": _workload_sweep,
    "topo": _workload_topo,
}


# -- running ---------------------------------------------------------------


def run_workload(
    name: str,
    quick: bool = False,
    repeat: int = 1,
    profile: bool = False,
    collect: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Time one workload; best-of-``repeat`` wall time, event count,
    per-workload extras, and the process RSS high-water mark.

    With ``profile=True`` each attempt runs under a fresh subsystem
    profiler (see :mod:`repro.obs.profile`); the best attempt's
    breakdown lands in the entry's ``profile`` key, and the live
    profiler object itself in ``collect["profiler"]`` when a ``collect``
    dict is passed (``repro profile`` exports flamegraphs from it).
    """
    from repro.obs import runtime
    from repro.obs.profile import SubsystemProfiler, profile_breakdown
    from repro.obs.tracer import Tracer

    fn = WORKLOADS[name]
    best_wall: Optional[float] = None
    best_profiler: Optional[Any] = None
    result: Dict[str, Any] = {"events": 0}
    for attempt in range(max(1, repeat)):
        tracer = Tracer()
        profiler = SubsystemProfiler() if profile else None
        start = time.perf_counter()
        if profiler is not None:
            profiler.start()
        with runtime.activated(tracer=tracer, profiler=profiler):
            if profiler is not None:
                # The workload-level section claims every second the
                # scheduler callbacks don't (builds, offline analysis),
                # so the breakdown covers the whole measured window.
                with profiler.section("bench", f"workload.{name}"):
                    attempt_result = fn(quick)
            else:
                attempt_result = fn(quick)
        if profiler is not None:
            profiler.stop()
        wall = time.perf_counter() - start
        if attempt == 0:
            result = attempt_result
        else:
            # Wall time is best-of; numeric extras (footprint gauges)
            # take the max across repeats.  Warm repeats rebuild into
            # memory the allocator already holds, so their RSS deltas
            # read near zero -- the first, cold build is the honest one.
            for key, value in attempt_result.items():
                if isinstance(value, (int, float)) and key != "events":
                    if value > result.get(key, 0):
                        result[key] = value
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_profiler = profiler
    wall_s = best_wall or 0.0
    events = result.pop("events")
    entry = {
        "wall_s": round(wall_s, 4),
        "events": events,
        "events_per_s": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
    }
    entry.update(result)  # memory/occupancy line items
    if best_profiler is not None:
        tree = best_profiler.tree()
        entry["profile"] = profile_breakdown(tree)
        if collect is not None:
            collect["profiler"] = best_profiler
            collect["tree"] = tree
    return entry


def run_bench(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeat: int = 1,
    profile: bool = False,
) -> Dict[str, Any]:
    """Run the named workloads (all by default); returns the
    schema-versioned document ``repro bench`` writes."""
    selected = list(names) if names else sorted(WORKLOADS)
    unknown = [name for name in selected if name not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workloads {unknown}; available: {sorted(WORKLOADS)}")
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "repeat": max(1, repeat),
        "profile": profile,
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "workloads": {
            name: run_workload(name, quick=quick, repeat=repeat, profile=profile)
            for name in selected
        },
    }


def write_bench(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(doc, stream, indent=2, sort_keys=True)
        stream.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as stream:
        doc = json.load(stream)
    schema = doc.get("schema")
    if schema not in _READABLE_SCHEMAS:
        raise ValueError(
            f"{path}: schema {schema!r} is not one of {sorted(_READABLE_SCHEMAS)}; "
            "regenerate the file"
        )
    return doc


# -- baseline compare ------------------------------------------------------


class BenchCompareError(ValueError):
    """The two bench documents cannot be meaningfully compared."""


def _blame_subsystem(
    current_profile: Dict[str, Any], baseline_profile: Dict[str, Any]
) -> Optional[str]:
    """Name the subsystem whose wall time grew the most between two
    per-workload profile breakdowns."""
    cur = current_profile.get("subsystems", {})
    base = baseline_profile.get("subsystems", {})
    worst_name: Optional[str] = None
    worst_delta = 0.0
    for name in set(cur) | set(base):
        was = base.get(name, {}).get("wall_s", 0.0)
        now = cur.get(name, {}).get("wall_s", 0.0)
        delta = now - was
        if delta > worst_delta:
            worst_delta = delta
            worst_name = name
    if worst_name is None:
        return None
    was = base.get(worst_name, {}).get("wall_s", 0.0)
    grew = f"+{worst_delta / was:.0%}" if was > 0 else "new"
    return f"{worst_name} +{worst_delta:.3f}s ({grew})"


def compare_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Compare wall times workload-by-workload.

    Returns ``(report_lines, regressions)``; a non-empty second element
    means at least one shared workload slowed past ``threshold``
    (relative).  Workloads present on only one side are reported but
    never fail the gate (the axis just changed).

    Raises :class:`BenchCompareError` when the documents are not
    comparable at all: a ``--quick`` run against a full baseline (or
    vice versa), or mismatched schema families.  Silent deltas across
    those axes would be misleading, not noisy.

    When both sides carry profile breakdowns (``--profile`` runs,
    schema v3), a regression line also names the subsystem whose wall
    time grew the most.
    """
    cur_quick = bool(current.get("quick"))
    base_quick = bool(baseline.get("quick"))
    if cur_quick != base_quick:
        raise BenchCompareError(
            f"cannot compare a {'--quick' if cur_quick else 'full'} run against a "
            f"{'--quick' if base_quick else 'full'} baseline; timings differ by "
            "design, not by regression -- regenerate the baseline with matching "
            "flags"
        )
    cur_family = str(current.get("schema", "")).split("/")[0]
    base_family = str(baseline.get("schema", "")).split("/")[0]
    if cur_family != base_family:
        raise BenchCompareError(
            f"schema family mismatch: current {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}; these documents do not "
            "measure the same thing"
        )
    lines: List[str] = []
    regressions: List[str] = []
    cur = current.get("workloads", {})
    base = baseline.get("workloads", {})
    for name in sorted(set(cur) | set(base)):
        if name not in base:
            lines.append(f"{name:<8} new workload ({cur[name]['wall_s']:.3f}s), no baseline")
            continue
        if name not in cur:
            lines.append(f"{name:<8} missing from current run (baseline {base[name]['wall_s']:.3f}s)")
            continue
        was, now = base[name]["wall_s"], cur[name]["wall_s"]
        change = (now - was) / was if was > 0 else 0.0
        verdict = "ok"
        if change > threshold:
            verdict = f"REGRESSION (> +{threshold * 100:.0f}%)"
            regressions.append(name)
            if "profile" in cur[name] and "profile" in base[name]:
                blame = _blame_subsystem(cur[name]["profile"], base[name]["profile"])
                if blame:
                    verdict += f", hottest subsystem delta: {blame}"
        lines.append(
            f"{name:<8} {was:.3f}s -> {now:.3f}s ({change:+.1%}, "
            f"{cur[name]['events_per_s']:.0f} ev/s, "
            f"rss {cur[name]['peak_rss_kb']} KiB)  {verdict}"
        )
    return lines, regressions


#: Keys every workload entry carries; anything else is a per-workload
#: extra line item (memory footprints, slab occupancy, churn counts).
_CORE_KEYS = ("wall_s", "events", "events_per_s", "peak_rss_kb", "profile")


def render_bench(doc: Dict[str, Any]) -> str:
    lines = [
        f"bench ({'quick' if doc.get('quick') else 'full'}, "
        f"best of {doc.get('repeat', 1)}, python {doc.get('python', '?')}):"
    ]
    for name, entry in sorted(doc.get("workloads", {}).items()):
        lines.append(
            f"  {name:<8} {entry['wall_s']:.3f}s wall, "
            f"{entry['events']} events ({entry['events_per_s']:.0f} ev/s), "
            f"peak RSS {entry['peak_rss_kb']} KiB"
        )
        extras = {k: v for k, v in entry.items() if k not in _CORE_KEYS}
        if extras:
            lines.append(
                "           "
                + ", ".join(f"{key}={value}" for key, value in sorted(extras.items()))
            )
        breakdown = entry.get("profile")
        if breakdown:
            ranked = sorted(
                breakdown.get("subsystems", {}).items(),
                key=lambda kv: -kv[1]["wall_s"],
            )
            shares = ", ".join(
                f"{sub} {info['share'] * 100:.0f}%" for sub, info in ranked[:5]
            )
            lines.append(
                f"           profile: {shares} "
                f"(attributed {breakdown['attributed_share'] * 100:.0f}%)"
            )
    return "\n".join(lines)
