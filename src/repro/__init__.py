"""repro -- reproduction of "Reliable Recon in Adversarial Peer-to-Peer
Botnets" (Andriesse, Rossow, Bos; IMC 2015).

The package builds the paper's full stack from scratch:

* a discrete-event simulation kernel (:mod:`repro.sim`) and network
  substrate with NAT/churn (:mod:`repro.net`);
* behavioural emulations of GameOver Zeus and Sality v3 plus feature
  models of the other major P2P families (:mod:`repro.botnets`);
* the paper's contribution -- crawlers, sensors, Internet-wide
  scanning, protocol-anomaly detection, and the distributed
  out-degree crawler-detection algorithm (:mod:`repro.core`);
* the in-the-wild recon-tool defect profiles and canned experiment
  scenarios (:mod:`repro.workloads`);
* analysis and table/figure renderers (:mod:`repro.analysis`).

Quickstart::

    from repro.workloads.population import zeus_config
    from repro.workloads.scenarios import build_zeus_scenario, launch_zeus_fleet
    from repro.workloads.crawler_profiles import ZEUS_CRAWLERS
    from repro.core.anomaly import ZeusAnomalyAnalyzer
    from repro.sim.clock import DAY

    scenario = build_zeus_scenario(zeus_config("tiny"), sensor_count=32)
    launch_zeus_fleet(scenario, ZEUS_CRAWLERS[:3])
    scenario.run_for(DAY)
    findings = ZeusAnomalyAnalyzer().analyze(scenario.sensors)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "botnets",
    "core",
    "net",
    "sim",
    "workloads",
]
