"""End-to-end orchestration of one detection round (Section 4.3)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.detection.aggregation import GroupVerdict, MemberReport, aggregate_group
from repro.core.detection.groups import assign_groups, elect_leaders, sample_bit_positions
from repro.core.detection.voting import LeaderBehavior, LeaderVote, tally_votes
from repro.sim.clock import DAY, HOUR


@dataclass(frozen=True)
class ParticipantReport(MemberReport):
    """A detection participant: a routable bot (or injected sensor)
    with its random protocol ID and its peer-list-request history."""

    bot_id: bytes = b""


@dataclass
class DetectionConfig:
    """Parameters of the detection algorithm.

    Defaults mirror the paper's evaluation: ``|G| = 8`` groups (g=3),
    5% per-group threshold (the "ideal" operating point of Table 4),
    a 24-hour request history, per-IP (/32) aggregation, and simple
    majority voting.
    """

    group_bits: int = 3
    threshold: float = 0.05
    history_interval: float = DAY
    aggregation_prefix: int = 32
    majority_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.group_bits < 0:
            raise ValueError("group_bits must be >= 0")
        if not 0 < self.threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        if self.history_interval <= 0:
            raise ValueError("history_interval must be positive")

    @property
    def group_count(self) -> int:
        return 2 ** self.group_bits


@dataclass
class DetectionRoundResult:
    """Everything one round produced."""

    round_end: float
    bit_positions: Tuple[int, ...]
    leaders: Dict[int, str]
    verdicts: Dict[int, GroupVerdict]
    classified: Set[int] = field(default_factory=set)

    def group_sizes(self) -> Dict[int, int]:
        return {index: verdict.group_size for index, verdict in self.verdicts.items()}


def run_round(
    participants: Sequence[ParticipantReport],
    config: DetectionConfig,
    rng: random.Random,
    round_end: Optional[float] = None,
    leader_behaviors: Optional[Dict[int, LeaderBehavior]] = None,
    framed_keys: Sequence[int] = (),
) -> DetectionRoundResult:
    """Execute one detection round over ``participants``.

    ``round_end`` closes the history window ``[round_end - history,
    round_end)``; it defaults to just past the latest request seen.
    ``leader_behaviors`` marks groups whose leader is adversarial
    (Byzantine-tolerance experiments); ``framed_keys`` are the innocent
    keys FRAME leaders try to blacklist.
    """
    if not participants:
        raise ValueError("detection needs at least one participant")
    if round_end is None:
        latest = max(
            (time for report in participants for time, _ in report.requests),
            default=0.0,
        )
        round_end = latest + 1.0
    since = round_end - config.history_interval
    bit_positions = sample_bit_positions(config.group_bits, rng, id_bits=len(participants[0].bot_id) * 8)
    groups = assign_groups(participants, bit_positions)
    leaders = elect_leaders(groups, rng)
    behaviors = leader_behaviors or {}
    verdicts: Dict[int, GroupVerdict] = {}
    votes: List[LeaderVote] = []
    for index, members in groups.items():
        if not members:
            continue
        verdict = aggregate_group(
            group_index=index,
            reports=members,
            threshold=config.threshold,
            since=since,
            until=round_end,
            prefix=config.aggregation_prefix,
        )
        verdicts[index] = verdict
        votes.append(
            LeaderVote.from_verdict(
                verdict,
                behavior=behaviors.get(index, LeaderBehavior.HONEST),
                framed_keys=framed_keys,
            )
        )
    classified = tally_votes(votes, config.majority_fraction)
    return DetectionRoundResult(
        round_end=round_end,
        bit_positions=bit_positions,
        leaders=leaders,
        verdicts=verdicts,
        classified=classified,
    )


def run_periodic_rounds(
    participants: Sequence[ParticipantReport],
    config: DetectionConfig,
    rng: random.Random,
    start: float,
    end: float,
    period: float = HOUR,
) -> List[DetectionRoundResult]:
    """Hourly (by default) rounds across a window, as deployed: each
    round re-partitions groups so crawlers cannot adapt to a fixed
    grouping.  The union of classifications is the detector's output."""
    if period <= 0:
        raise ValueError("period must be positive")
    results = []
    t = start + period
    while t <= end + 1e-9:
        results.append(run_round(participants, config, rng, round_end=t))
        t += period
    return results
