"""End-to-end orchestration of one detection round (Section 4.3)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.detection.aggregation import GroupVerdict, MemberReport, aggregate_group
from repro.core.detection.groups import assign_groups, elect_leaders, sample_bit_positions
from repro.core.detection.voting import LeaderBehavior, LeaderVote, tally_votes
from repro.obs import runtime as obs
from repro.sim.clock import DAY, HOUR


@dataclass(frozen=True)
class ParticipantReport(MemberReport):
    """A detection participant: a routable bot (or injected sensor)
    with its random protocol ID and its peer-list-request history."""

    bot_id: bytes = b""


@dataclass
class DetectionConfig:
    """Parameters of the detection algorithm.

    Defaults mirror the paper's evaluation: ``|G| = 8`` groups (g=3),
    5% per-group threshold (the "ideal" operating point of Table 4),
    a 24-hour request history, per-IP (/32) aggregation, and simple
    majority voting.
    """

    group_bits: int = 3
    threshold: float = 0.05
    history_interval: float = DAY
    aggregation_prefix: int = 32
    majority_fraction: float = 0.5
    # Minimum fraction of expected leader votes that must survive for
    # the round to count as quorate.  Below it the round still tallies
    # the surviving-leader majority, but flags itself non-quorate and
    # its confidence tells consumers how much to trust the verdict.
    min_quorum_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.group_bits < 0:
            raise ValueError("group_bits must be >= 0")
        if not 0 < self.threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        if self.history_interval <= 0:
            raise ValueError("history_interval must be positive")
        if not 0 < self.min_quorum_fraction <= 1:
            raise ValueError("min_quorum_fraction must be in (0, 1]")

    @property
    def group_count(self) -> int:
        return 2 ** self.group_bits


@dataclass
class DetectionRoundResult:
    """Everything one round produced.

    ``confidence`` is the fraction of expected leader votes that were
    actually cast: 1.0 in a healthy round, lower when leaders crashed
    mid-round and the result fell back to the surviving majority.
    """

    round_end: float
    bit_positions: Tuple[int, ...]
    leaders: Dict[int, str]
    verdicts: Dict[int, GroupVerdict]
    classified: Set[int] = field(default_factory=set)
    confidence: float = 1.0
    failed_groups: Tuple[int, ...] = ()
    quorum_met: bool = True

    def group_sizes(self) -> Dict[int, int]:
        return {index: verdict.group_size for index, verdict in self.verdicts.items()}


def run_round(
    participants: Sequence[ParticipantReport],
    config: DetectionConfig,
    rng: random.Random,
    round_end: Optional[float] = None,
    leader_behaviors: Optional[Dict[int, LeaderBehavior]] = None,
    framed_keys: Sequence[int] = (),
    failed_groups: Sequence[int] = (),
) -> DetectionRoundResult:
    """Execute one detection round over ``participants``.

    ``round_end`` closes the history window ``[round_end - history,
    round_end)``; it defaults to just past the latest request seen.
    ``leader_behaviors`` marks groups whose leader is adversarial
    (Byzantine-tolerance experiments); ``framed_keys`` are the innocent
    keys FRAME leaders try to blacklist.  ``failed_groups`` are groups
    whose leader crashed mid-round: their aggregation is lost, their
    vote is never cast, and the round degrades to the surviving-leader
    majority with a correspondingly reduced confidence.
    """
    if not participants:
        raise ValueError("detection needs at least one participant")
    if round_end is None:
        latest = max(
            (time for report in participants for time, _ in report.requests),
            default=0.0,
        )
        round_end = latest + 1.0
    since = round_end - config.history_interval
    # Observability: read the ambient hooks at call time (rounds are
    # plain functions, not long-lived objects).  Tracing draws nothing
    # from ``rng`` and emits at the already-decided ``round_end``.
    trace = obs.tracer()
    registry = obs.metrics()
    m_rounds = registry.counter("detect.rounds", "detection rounds executed")
    m_votes = registry.counter("detect.votes", "leader votes cast, by behavior")
    m_lost = registry.counter("detect.groups_lost", "groups lost to leader crashes")
    m_classified = registry.counter("detect.classified_keys", "keys classified as crawlers")
    bit_positions = sample_bit_positions(config.group_bits, rng, id_bits=len(participants[0].bot_id) * 8)
    groups = assign_groups(participants, bit_positions)
    leaders = elect_leaders(groups, rng)
    behaviors = leader_behaviors or {}
    failed = set(failed_groups)
    verdicts: Dict[int, GroupVerdict] = {}
    votes: List[LeaderVote] = []
    expected_votes = 0
    lost_groups: List[int] = []
    for index, members in groups.items():
        if not members:
            continue
        expected_votes += 1
        if index in failed:
            # The leader died before submitting: its group's
            # aggregation (which only the leader held) is lost.
            lost_groups.append(index)
            m_lost.inc()
            if trace:
                trace.instant(
                    round_end, "detect", "group.lost",
                    group=index, leader=leaders.get(index, ""), size=len(members),
                )
            continue
        verdict = aggregate_group(
            group_index=index,
            reports=members,
            threshold=config.threshold,
            since=since,
            until=round_end,
            prefix=config.aggregation_prefix,
        )
        verdicts[index] = verdict
        behavior = behaviors.get(index, LeaderBehavior.HONEST)
        vote = LeaderVote.from_verdict(verdict, behavior=behavior, framed_keys=framed_keys)
        votes.append(vote)
        m_votes.labels(behavior.value).inc()
        if trace:
            trace.instant(
                round_end, "detect", "group.aggregated",
                group=index, leader=leaders.get(index, ""), size=verdict.group_size,
                suspicious=len(verdict.suspicious),
            )
            trace.instant(
                round_end, "detect", "leader.vote",
                group=index, behavior=behavior.value, accused=len(vote.keys),
            )
    classified = tally_votes(votes, config.majority_fraction)
    confidence = len(votes) / expected_votes if expected_votes else 0.0
    m_rounds.inc()
    m_classified.inc(len(classified))
    quorum_met = confidence >= config.min_quorum_fraction
    if trace:
        trace.complete(
            max(0.0, since), round_end, "detect", "round",
            groups=len(groups), votes=len(votes), classified=len(classified),
            confidence=round(confidence, 4), quorum_met=quorum_met,
        )
        if not quorum_met:
            trace.instant(
                round_end, "detect", "round.quorum_degraded",
                confidence=round(confidence, 4), lost=len(lost_groups),
            )
    return DetectionRoundResult(
        round_end=round_end,
        bit_positions=bit_positions,
        leaders=leaders,
        verdicts=verdicts,
        classified=classified,
        confidence=confidence,
        failed_groups=tuple(lost_groups),
        quorum_met=quorum_met,
    )


def run_periodic_rounds(
    participants: Sequence[ParticipantReport],
    config: DetectionConfig,
    rng: random.Random,
    start: float,
    end: float,
    period: float = HOUR,
    leader_crash_rate: float = 0.0,
) -> List[DetectionRoundResult]:
    """Hourly (by default) rounds across a window, as deployed: each
    round re-partitions groups so crawlers cannot adapt to a fixed
    grouping.  The union of classifications is the detector's output.

    ``leader_crash_rate`` is the per-round probability that any given
    group's leader crashes before voting (chaos experiments); zero
    draws nothing from ``rng``, so healthy runs replay unchanged.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= leader_crash_rate < 1.0:
        raise ValueError("leader_crash_rate must be in [0, 1)")
    results = []
    t = start + period
    while t <= end + 1e-9:
        failed: Sequence[int] = ()
        if leader_crash_rate:
            failed = [
                index
                for index in range(config.group_count)
                if rng.random() < leader_crash_rate
            ]
        results.append(run_round(participants, config, rng, round_end=t, failed_groups=failed))
        t += period
    return results
