"""Offline detector evaluation over logged sensor traffic (Section 6).

The paper could not run its detector across a live botnet's full
population, so it ran the algorithm over the request logs of its 512
injected sensors, replaying the same 24-hour traffic under varying
parameters -- threshold ``t``, contact ratio, subnet aggregation --
so that measured differences come from the parameters, not churn.
This module is that replay harness.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.detection.coordinator import (
    DetectionConfig,
    DetectionRoundResult,
    ParticipantReport,
    run_round,
)
from repro.net.address import subnet_key


@dataclass(frozen=True)
class SensorLogDataset:
    """Logged peer-list-request traffic from an injected sensor fleet."""

    participants: Tuple[ParticipantReport, ...]

    @classmethod
    def from_zeus_sensors(
        cls, sensors: Sequence, since: float = 0.0, until: Optional[float] = None
    ) -> "SensorLogDataset":
        """Build from :class:`~repro.core.sensor.ZeusSensor` objects.

        ``since`` should be the measurement-window start (after the
        announcement phase): the sensors' own announcement peer-list
        requests would otherwise pollute the logs.
        """
        participants = tuple(
            ParticipantReport(
                node_id=sensor.node_id,
                bot_id=sensor.bot_id,
                requests=tuple(
                    (obs.time, obs.src_ip)
                    for obs in sensor.peer_list_request_log(since=since, until=until)
                ),
            )
            for sensor in sensors
        )
        return cls(participants=participants)

    @classmethod
    def from_sality_sensors(
        cls, sensors: Sequence, since: float = 0.0, until: Optional[float] = None
    ) -> "SensorLogDataset":
        participants = tuple(
            ParticipantReport(
                node_id=sensor.node_id,
                # Detection IDs must be wide enough to sample group bits
                # from; widen Sality's 4-byte IDs deterministically.
                bot_id=hashlib.sha1(sensor.bot_id).digest(),
                requests=tuple(
                    (obs.time, obs.src_ip)
                    for obs in sensor.peer_list_request_log(since=since, until=until)
                ),
            )
            for sensor in sensors
        )
        return cls(participants=participants)

    @property
    def sensor_count(self) -> int:
        return len(self.participants)

    def request_count(self) -> int:
        return sum(len(p.requests) for p in self.participants)

    def ips_seen(self) -> Set[int]:
        return {ip for p in self.participants for _, ip in p.requests}


def _in_contact_subset(crawler_ip: int, sensor_id: str, ratio: int) -> bool:
    """Deterministic membership of a sensor in a crawler's 1/ratio
    contact subset (stable across replays, per crawler)."""
    if ratio <= 1:
        return True
    digest = hashlib.blake2b(
        crawler_ip.to_bytes(4, "big") + sensor_id.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % ratio == 0


def simulate_contact_ratio(
    dataset: SensorLogDataset,
    crawler_ips: Set[int],
    ratio: int,
) -> SensorLogDataset:
    """Replay the logs as if every crawler had contact-ratio-limited
    itself to 1/``ratio`` of the sensors (the paper's Section 6.1.1
    methodology: "excluding crawler requests to a varying subset of
    our sensors").  Non-crawler traffic is untouched."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    if ratio == 1:
        return dataset
    participants = []
    for participant in dataset.participants:
        kept = tuple(
            (time, ip)
            for time, ip in participant.requests
            if ip not in crawler_ips or _in_contact_subset(ip, participant.node_id, ratio)
        )
        participants.append(
            ParticipantReport(
                node_id=participant.node_id,
                bot_id=participant.bot_id,
                requests=kept,
            )
        )
    return SensorLogDataset(participants=tuple(participants))


@dataclass
class EvaluationResult:
    """Detector accuracy against ground truth for one configuration."""

    classified_keys: Set[int]
    detected_crawlers: Set[int]
    missed_crawlers: Set[int]
    false_positive_keys: Set[int]
    config: DetectionConfig
    contact_ratio: int = 1
    # Degradation annotations (chaos runs): fraction of leader votes
    # actually cast, and whether the round met its vote quorum.
    confidence: float = 1.0
    quorum_met: bool = True

    @property
    def detection_rate(self) -> float:
        total = len(self.detected_crawlers) + len(self.missed_crawlers)
        return len(self.detected_crawlers) / total if total else 0.0

    @property
    def false_positives(self) -> int:
        return len(self.false_positive_keys)


def evaluate_detection(
    dataset: SensorLogDataset,
    crawler_ips: Set[int],
    config: DetectionConfig,
    rng: random.Random,
    contact_ratio: int = 1,
    round_end: Optional[float] = None,
    failed_groups: Sequence[int] = (),
) -> EvaluationResult:
    """Run one detection round over (possibly ratio-limited) logs and
    score it against the ground-truth crawler IPs.  ``failed_groups``
    replays leader crashes (see :func:`run_round`)."""
    replay = simulate_contact_ratio(dataset, crawler_ips, contact_ratio)
    result = run_round(
        list(replay.participants), config, rng, round_end=round_end, failed_groups=failed_groups
    )
    prefix = config.aggregation_prefix
    crawler_keys: Dict[int, Set[int]] = {}
    for ip in crawler_ips:
        crawler_keys.setdefault(subnet_key(ip, prefix), set()).add(ip)
    detected: Set[int] = set()
    for key in result.classified:
        detected |= crawler_keys.get(key, set())
    false_keys = {key for key in result.classified if key not in crawler_keys}
    return EvaluationResult(
        classified_keys=result.classified,
        detected_crawlers=detected,
        missed_crawlers=set(crawler_ips) - detected,
        false_positive_keys=false_keys,
        config=config,
        contact_ratio=contact_ratio,
        confidence=result.confidence,
        quorum_met=result.quorum_met,
    )


def detection_grid(
    dataset: SensorLogDataset,
    crawler_ips: Set[int],
    thresholds: Sequence[float],
    ratios: Sequence[int],
    rng_seed: int = 0,
    group_bits: int = 3,
    aggregation_prefix: int = 32,
) -> Dict[Tuple[float, int], EvaluationResult]:
    """The full (threshold x contact ratio) sweep behind Figure 2 and
    Table 4.  Each cell reuses the same RNG seed so grouping noise
    does not leak between cells."""
    grid = {}
    for threshold in thresholds:
        for ratio in ratios:
            config = DetectionConfig(
                group_bits=group_bits,
                threshold=threshold,
                aggregation_prefix=aggregation_prefix,
            )
            grid[(threshold, ratio)] = evaluate_detection(
                dataset,
                crawler_ips,
                config,
                random.Random(rng_seed),
                contact_ratio=ratio,
            )
    return grid
