"""Group formation for detection rounds (Section 4.3).

Bots partition themselves into ``2^g`` groups by sampling ``g`` bit
positions (named in the round announcement) from their random
infection-time identifiers.  Random IDs make the partition uniform and
unpredictable: a crawler cannot aim its traffic to stay below every
group's threshold because it cannot know the next round's grouping.
Each group elects the leader named in the announcement and builds a
tree overlay towards it, keeping per-node fan-in bounded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, TypeVar

HasId = TypeVar("HasId")


def sample_bit_positions(g: int, rng: random.Random, id_bits: int = 160) -> Tuple[int, ...]:
    """Choose ``g`` distinct bit positions inside an ``id_bits``-bit ID."""
    if g < 0:
        raise ValueError("g must be >= 0")
    if g > id_bits:
        raise ValueError(f"cannot sample {g} positions from {id_bits} bits")
    return tuple(sorted(rng.sample(range(id_bits), g)))


def group_of(bot_id: bytes, bit_positions: Sequence[int]) -> int:
    """The group index of ``bot_id``: its bits at the sampled
    positions, packed in position order."""
    value = int.from_bytes(bot_id, "big")
    total_bits = len(bot_id) * 8
    index = 0
    for position in bit_positions:
        if position >= total_bits:
            raise ValueError(f"bit position {position} outside {total_bits}-bit id")
        bit = (value >> (total_bits - 1 - position)) & 1
        index = (index << 1) | bit
    return index


def assign_groups(
    members: Sequence[HasId],
    bit_positions: Sequence[int],
    key=lambda member: member.bot_id,
) -> Dict[int, List[HasId]]:
    """Partition ``members`` into groups; every group index in
    ``range(2**g)`` is present (possibly empty)."""
    groups: Dict[int, List[HasId]] = {index: [] for index in range(2 ** len(bit_positions))}
    for member in members:
        groups[group_of(key(member), bit_positions)].append(member)
    return groups


def elect_leaders(
    groups: Dict[int, List[HasId]],
    rng: random.Random,
    key=lambda member: member.node_id,
) -> Dict[int, str]:
    """One random leader per non-empty group.

    Random selection is the Sybil defence: adversarial nodes dominate
    the leader set only if they dominate the population.
    """
    leaders = {}
    for index, members in groups.items():
        if members:
            leaders[index] = key(rng.choice(members))
    return leaders


@dataclass(frozen=True)
class TreeOverlay:
    """A bounded-fanout aggregation tree rooted at the group leader."""

    root: str
    parent: Dict[str, str]  # child -> parent

    @property
    def size(self) -> int:
        return len(self.parent) + 1

    def depth(self) -> int:
        """Longest child-to-root chain (0 for a leader-only tree)."""
        best = 0
        for node in self.parent:
            length = 0
            cursor = node
            while cursor != self.root:
                cursor = self.parent[cursor]
                length += 1
            best = max(best, length)
        return best

    def children_of(self, node: str) -> List[str]:
        return sorted(child for child, parent in self.parent.items() if parent == node)


def build_tree(member_ids: Sequence[str], leader: str, fanout: int = 8) -> TreeOverlay:
    """Arrange a group into a ``fanout``-ary aggregation tree.

    Reports flow leaf -> root, so the leader receives ``fanout``
    aggregated messages instead of ``|group|`` individual ones --
    the scalability piece of the algorithm.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if leader not in member_ids:
        raise ValueError("leader must be a group member")
    ordered = [leader] + sorted(m for m in member_ids if m != leader)
    parent: Dict[str, str] = {}
    for position, node in enumerate(ordered[1:], start=1):
        parent[node] = ordered[(position - 1) // fanout]
    return TreeOverlay(root=leader, parent=parent)
