"""Detection-round announcements and push gossip (Section 4.3).

The botmaster signs and timestamps each round announcement (so
analysts cannot replay or forge rounds) and pushes it to one random
bot, from which it floods to all routable bots by gossip -- the same
mechanism Zeus and ZeroAccess use for command distribution.
Non-routable bots are deliberately excluded: crawlers can never reach
them anyway, so their reports add no coverage signal.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.botnets.graph import ConnectivityGraph
from repro.obs import runtime as obs

DEFAULT_MAX_AGE = 3600.0


@dataclass(frozen=True)
class RoundAnnouncement:
    """A signed detection-round announcement."""

    round_id: int
    issued_at: float
    bit_positions: Tuple[int, ...]
    leaders: Tuple[str, ...]  # leader node id per group index
    signature: bytes = b""

    def payload(self) -> bytes:
        body = (
            f"{self.round_id}|{self.issued_at:.3f}|"
            f"{','.join(map(str, self.bit_positions))}|{','.join(self.leaders)}"
        )
        return body.encode("utf-8")


class AnnouncementSigner:
    """HMAC-based stand-in for the botmaster's announcement signature.

    Real botnets sign commands with RSA keys baked into the binary;
    the security property exercised here is identical: bots accept
    only authentic, fresh announcements.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("signer needs a non-empty key")
        self.key = key

    def sign(self, announcement: RoundAnnouncement) -> RoundAnnouncement:
        signature = hmac.new(self.key, announcement.payload(), hashlib.sha256).digest()
        return RoundAnnouncement(
            round_id=announcement.round_id,
            issued_at=announcement.issued_at,
            bit_positions=announcement.bit_positions,
            leaders=announcement.leaders,
            signature=signature,
        )

    def verify(self, announcement: RoundAnnouncement, now: float, max_age: float = DEFAULT_MAX_AGE) -> bool:
        """Authentic and fresh?  Stale announcements are replays."""
        expected = hmac.new(self.key, announcement.payload(), hashlib.sha256).digest()
        if not hmac.compare_digest(expected, announcement.signature):
            return False
        return 0 <= now - announcement.issued_at <= max_age


@dataclass
class GossipStats:
    """Outcome of one gossip flood."""

    reached: Set[str] = field(default_factory=set)
    messages_sent: int = 0
    hops: int = 0

    def coverage(self, population: int) -> float:
        return len(self.reached) / population if population else 0.0


def push_gossip(
    graph: ConnectivityGraph,
    routable: Set[str],
    origin: str,
    rng: random.Random,
    fanout: int = 4,
    max_hops: int = 64,
    now: float = 0.0,
) -> GossipStats:
    """Flood an announcement from ``origin`` over the routable overlay.

    Each informed bot pushes to ``fanout`` random routable neighbours
    per hop.  Returns who was reached and at what message cost -- the
    scalability numbers behind the push-gossip design choice.
    ``now`` only timestamps the flood's trace events (the flood itself
    is modeled as instantaneous relative to round cadence).
    """
    if origin not in routable:
        raise ValueError(f"gossip origin must be routable: {origin}")
    trace = obs.tracer()
    stats = GossipStats(reached={origin})
    frontier = [origin]
    for hop in range(max_hops):
        if not frontier:
            break
        stats.hops = hop + 1
        next_frontier: List[str] = []
        for node in frontier:
            neighbours = [n for n in graph.successors(node) if n in routable]
            if not neighbours:
                continue
            targets = rng.sample(neighbours, min(fanout, len(neighbours)))
            for target in targets:
                stats.messages_sent += 1
                if target not in stats.reached:
                    stats.reached.add(target)
                    next_frontier.append(target)
        if trace:
            trace.instant(
                now, "detect", "gossip.hop",
                hop=stats.hops, informed=len(next_frontier),
                reached=len(stats.reached), messages=stats.messages_sent,
            )
        frontier = next_frontier
    obs.metrics().counter(
        "detect.gossip_messages", "gossip pushes sent during round announcements"
    ).inc(stats.messages_sent)
    if trace:
        trace.instant(
            now, "detect", "gossip.done",
            origin=origin, reached=len(stats.reached),
            messages=stats.messages_sent, hops=stats.hops,
        )
    return stats
