"""Hard-hitter aggregation (Section 4.3).

Each group member reports the set of source keys (IPs, or subnets when
aggregating) that requested its peer list within the history interval.
The leader counts reporters per key and flags keys reported by at
least the threshold fraction ``t`` of the group.

Two details carry the paper's results:

* The **history interval must span multiple detection rounds** --
  otherwise a crawler evades by touching a disjoint slice of bots per
  round (Section 4.3, evaluated in the ablation benches).
* **Subnet aggregation** folds reported IPs to ``/prefix`` keys so
  address-distributed crawlers concentrate back into one key; accuracy
  holds down to /20 and collapses at /19, where legitimate multi-
  infection subnets merge (Section 6.1.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.net.address import subnet_key


@dataclass(frozen=True)
class MemberReport:
    """One bot's contribution: who asked for its peer list and when."""

    node_id: str
    requests: Tuple[Tuple[float, int], ...]  # (time, source ip)

    def keys_within(self, since: float, until: float, prefix: int = 32) -> Set[int]:
        """Distinct (subnet-folded) source keys in [since, until)."""
        return {
            subnet_key(ip, prefix)
            for time, ip in self.requests
            if since <= time < until
        }


@dataclass
class GroupVerdict:
    """A leader's aggregation outcome for one group."""

    group_index: int
    group_size: int
    reporter_counts: Dict[int, int] = field(default_factory=dict)
    suspicious: Set[int] = field(default_factory=set)
    threshold_count: int = 0


def required_reporters(group_size: int, threshold: float) -> int:
    """Reporters needed to flag a key: ``ceil(t * |group|)``, at least 1."""
    if group_size <= 0:
        return 1
    return max(1, math.ceil(threshold * group_size))


def aggregate_group(
    group_index: int,
    reports: Sequence[MemberReport],
    threshold: float,
    since: float,
    until: float,
    prefix: int = 32,
) -> GroupVerdict:
    """Leader-side aggregation: count distinct reporters per key and
    flag those meeting the threshold."""
    if not 0 < threshold <= 1:
        raise ValueError("threshold must be in (0, 1]")
    if prefix < 8 or prefix > 32:
        raise ValueError("aggregation prefix must be within /8../32")
    verdict = GroupVerdict(group_index=group_index, group_size=len(reports))
    verdict.threshold_count = required_reporters(len(reports), threshold)
    for report in reports:
        for key in report.keys_within(since, until, prefix):
            verdict.reporter_counts[key] = verdict.reporter_counts.get(key, 0) + 1
    verdict.suspicious = {
        key
        for key, count in verdict.reporter_counts.items()
        if count >= verdict.threshold_count
    }
    return verdict
