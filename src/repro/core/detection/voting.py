"""Leader voting and crawler-list propagation (Section 4.3).

Leaders vote their groups' suspicious keys; keys confirmed by a
majority of leaders are classified as crawlers.  Majority voting is
what tolerates *adversarial* leaders -- nodes malware analysts might
inject to frame innocent IPs (poisoning mitigation lists) or whitelist
real crawlers.  On the read side, bots retrieve the classified list
from ``n`` random leaders and keep majority-confirmed entries; results
are reliable while ``|A| < n x m`` (adversaries fewer than the votes a
majority requires).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.detection.aggregation import GroupVerdict


class LeaderBehavior(Enum):
    """How a leader participates in voting."""

    HONEST = "honest"
    SUPPRESS = "suppress"  # whitelist true crawlers: report nothing
    FRAME = "frame"        # additionally report innocent victim keys


@dataclass(frozen=True)
class LeaderVote:
    """One leader's submitted suspicious-key set."""

    group_index: int
    keys: frozenset

    @classmethod
    def from_verdict(
        cls,
        verdict: GroupVerdict,
        behavior: LeaderBehavior = LeaderBehavior.HONEST,
        framed_keys: Iterable[int] = (),
    ) -> "LeaderVote":
        if behavior is LeaderBehavior.SUPPRESS:
            keys: frozenset = frozenset()
        elif behavior is LeaderBehavior.FRAME:
            keys = frozenset(verdict.suspicious) | frozenset(framed_keys)
        else:
            keys = frozenset(verdict.suspicious)
        return cls(group_index=verdict.group_index, keys=keys)


def majority_count(total: int, majority_fraction: float) -> int:
    """Votes needed for a majority: strictly more than the fraction."""
    return int(math.floor(total * majority_fraction)) + 1


def tally_votes(votes: Sequence[LeaderVote], majority_fraction: float = 0.5) -> Set[int]:
    """Keys voted suspicious by a majority of leaders."""
    if not votes:
        return set()
    if not 0 < majority_fraction < 1:
        raise ValueError("majority_fraction must be in (0, 1)")
    needed = majority_count(len(votes), majority_fraction)
    counts: Dict[int, int] = {}
    for vote in votes:
        for key in vote.keys:
            counts[key] = counts.get(key, 0) + 1
    return {key for key, count in counts.items() if count >= needed}


def retrieve_from_leaders(
    leader_lists: Sequence[Set[int]],
    sample_size: int,
    rng: random.Random,
    majority_fraction: float = 0.5,
) -> Set[int]:
    """Bot-side crawler-list retrieval.

    The bot samples ``sample_size`` leaders and keeps keys confirmed by
    a majority of the sample, bounding the damage a faulty leader's
    list can do.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    if not leader_lists:
        return set()
    sample = rng.sample(list(leader_lists), min(sample_size, len(leader_lists)))
    needed = majority_count(len(sample), majority_fraction)
    counts: Dict[int, int] = {}
    for keys in sample:
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
    return {key for key, count in counts.items() if count >= needed}


def reliability_bound(adversarial: int, sample_size: int, majority_fraction: float = 0.5) -> bool:
    """The paper's reliability condition: ``|A| < n x m``."""
    return adversarial < sample_size * majority_fraction
