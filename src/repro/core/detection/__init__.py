"""Syntax-agnostic distributed crawler detection (paper Section 4.3).

The algorithm detects crawlers purely from network coverage: a source
that requested peer lists from an anomalously large fraction of the
population inside one detection window is a crawler, no matter how
protocol-perfect its messages are.  It runs distributed across the
botnet, in periodic rounds:

1. **Round announcement** (:mod:`repro.core.detection.rounds`): the
   botmaster pushes a signed, timestamped announcement through gossip;
   it names ``g`` identifier bit positions and per-group leaders.
2. **Group formation** (:mod:`repro.core.detection.groups`): bots
   partition themselves into ``2^g`` groups by sampling those bit
   positions from their random IDs, forming a tree overlay per group.
3. **Hard-hitter aggregation**
   (:mod:`repro.core.detection.aggregation`): every bot reports the
   IPs that requested its peer list within the history interval; the
   leader flags IPs reported by at least a threshold fraction ``t`` of
   its group.
4. **Crawler voting** (:mod:`repro.core.detection.voting`): leaders
   majority-vote the flagged IPs; majority voting tolerates Byzantine
   leaders that frame innocents or whitelist crawlers.
5. **Crawler propagation**: bots retrieve the list from ``n`` random
   leaders and keep majority-confirmed entries, reliable while
   ``|A| < n x m``.

:mod:`repro.core.detection.coordinator` orchestrates a round;
:mod:`repro.core.detection.offline` replays logged sensor traffic
through the detector with simulated contact-ratio limiting and subnet
aggregation -- the engine behind Figure 2 and Table 4.
"""

from repro.core.detection.coordinator import (
    DetectionConfig,
    DetectionRoundResult,
    ParticipantReport,
    run_round,
)
from repro.core.detection.offline import (
    EvaluationResult,
    SensorLogDataset,
    evaluate_detection,
    simulate_contact_ratio,
)

__all__ = [
    "DetectionConfig",
    "DetectionRoundResult",
    "EvaluationResult",
    "ParticipantReport",
    "SensorLogDataset",
    "evaluate_detection",
    "run_round",
    "simulate_contact_ratio",
]
