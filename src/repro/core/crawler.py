"""Peer-list crawlers for GameOver Zeus and Sality.

A crawler starts from a bootstrap peer list (as ripped from a bot
sample) and recursively requests peer lists from every bot it learns
about, subject to a :class:`~repro.core.stealth.StealthPolicy`
(contact ratio, per-target request spacing, source distribution) and a
defect profile (:mod:`repro.core.defects`) controlling how faithful
its wire messages are.

The crawler records when each distinct bot / IP was first learned,
which bots actually responded (verified -- crawlers cannot verify
excluded or non-routable bots, Section 2.1), and the edges implied by
peer-list responses.  Figures 3 and 4 plot exactly these timelines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.botnets.sality import protocol as sality_protocol
from repro.botnets.sality.protocol import Command, SalityDecodeError
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.protocol import MessageType, ZeusDecodeError
from repro.core.defects import (
    CLEAN_SALITY,
    CLEAN_ZEUS,
    SalityDefectProfile,
    SalityForger,
    ZeusDefectProfile,
    ZeusForger,
)
from repro.core.stealth import StealthPolicy
from repro.faults.retry import NO_RETRY, RetryPolicy
from repro.net.transport import Endpoint, Message, Transport
from repro.obs import runtime as obs
from repro.sim.clock import HOUR
from repro.sim.scheduler import Scheduler, Timer


@dataclass
class CrawlReport:
    """Everything a crawl learned, with timing."""

    started_at: float = 0.0
    first_seen_ip: Dict[int, float] = field(default_factory=dict)
    first_seen_bot: Dict[bytes, float] = field(default_factory=dict)
    bot_endpoints: Dict[bytes, Endpoint] = field(default_factory=dict)
    verified_bots: Set[bytes] = field(default_factory=set)
    edges: Set[Tuple[bytes, bytes]] = field(default_factory=set)
    requests_sent: int = 0
    responses_received: int = 0
    targets_contacted: int = 0
    targets_excluded: int = 0
    # Resilience accounting: pending requests expired on timeout,
    # re-issues sent under the retry policy, and targets abandoned
    # after the retry budget ran dry.
    requests_expired: int = 0
    retries_sent: int = 0
    targets_given_up: int = 0

    def note_discovery(self, time: float, bot_id: bytes, endpoint: Endpoint) -> bool:
        """Record a learned peer; True if the bot id is new."""
        new = bot_id not in self.first_seen_bot
        if new:
            self.first_seen_bot[bot_id] = time
            self.bot_endpoints[bot_id] = endpoint
        self.first_seen_ip.setdefault(endpoint.ip, time)
        return new

    @property
    def distinct_ips(self) -> int:
        return len(self.first_seen_ip)

    @property
    def distinct_bots(self) -> int:
        return len(self.first_seen_bot)

    def ips_found_by(self, time: float) -> int:
        """Distinct IPs learned up to (and including) ``time``."""
        return sum(1 for t in self.first_seen_ip.values() if t <= time)

    def coverage_series(self, until: float, bucket: float = HOUR) -> List[Tuple[float, int]]:
        """Cumulative distinct-IP counts on bucket boundaries -- the
        curves of Figures 3 and 4."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        points = []
        t = self.started_at
        while t <= until + 1e-9:
            points.append((t, self.ips_found_by(t)))
            t += bucket
        return points


class _Target:
    __slots__ = (
        "bot_id", "endpoint", "requests_sent", "responded",
        "retries", "retry_scheduled", "gave_up",
    )

    def __init__(self, bot_id: bytes, endpoint: Endpoint) -> None:
        self.bot_id = bot_id
        self.endpoint = endpoint
        self.requests_sent = 0
        self.responded = False
        self.retries = 0
        self.retry_scheduled = False
        self.gave_up = False


@dataclass
class _PendingRequest:
    """One in-flight request awaiting its reply."""

    target_id: bytes
    sent_at: float
    source_id: bytes = b""  # Zeus: the source id the reply is keyed under


class _CrawlerBase:
    """Shared crawl-loop machinery; family subclasses do the wire work.

    Pending requests live in ``self._pending`` (keyed by session id or
    nonce, family-specific) and are *expired* once they outlive
    ``retry.timeout``: a lost reply must not leak the entry forever.
    With a retrying policy, expired targets are re-issued to with
    exponential backoff until the per-target and global budgets run
    out; the default :data:`~repro.faults.retry.NO_RETRY` policy only
    expires (the paper's crawlers never retried), keeping baseline runs
    byte-identical.
    """

    def __init__(
        self,
        name: str,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        policy: Optional[StealthPolicy] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.name = name
        self.endpoint = endpoint
        self.transport = transport
        self.scheduler = scheduler
        self.rng = rng
        self.policy = policy if policy is not None else StealthPolicy()
        self.retry = retry if retry is not None else NO_RETRY
        self.report = CrawlReport()
        self.running = False
        self._targets: Dict[bytes, _Target] = {}
        self._pending: Dict[object, _PendingRequest] = {}
        self._request_counter = 0
        self._retries_spent = 0
        self._expiry_timer: Optional[Timer] = None
        # Observability: request-lifecycle counters labeled by crawler
        # name, pre-bound here so the per-request cost is one no-op (or
        # one add) per event; trace emission is guarded by truthiness.
        self._trace = obs.tracer()
        registry = obs.metrics()
        self._m_issued = registry.counter(
            "crawler.requests_issued", "peer-list requests sent (incl. retries)"
        ).labels(name)
        self._m_replied = registry.counter(
            "crawler.responses", "responses matched to a pending request"
        ).labels(name)
        self._m_expired = registry.counter(
            "crawler.requests_expired", "pending requests expired on timeout"
        ).labels(name)
        self._m_retries = registry.counter(
            "crawler.retries", "re-issues under the retry policy"
        ).labels(name)
        self._m_gave_up = registry.counter(
            "crawler.targets_given_up", "targets abandoned after the retry budget"
        ).labels(name)

    # -- lifecycle -------------------------------------------------------

    def start(self, bootstrap: Sequence[Tuple[bytes, Endpoint]]) -> None:
        """Bind our source endpoints and begin crawling from
        ``bootstrap`` (bot id, endpoint) pairs."""
        if self.running:
            raise RuntimeError("crawler already running")
        self.running = True
        self.report.started_at = self.scheduler.now
        self.transport.bind(self.endpoint, self._on_message)
        for source in self.policy.source_endpoints:
            if not self.transport.is_bound(source):
                self.transport.bind(source, self._on_message)
        for bot_id, endpoint in bootstrap:
            # Bootstrap peers are always contacted: a crawler must talk
            # to its seed list to get going at all; contact-ratio
            # limiting applies to peers *discovered* during the crawl.
            self.discover(bot_id, endpoint, force_contact=True)
        self._schedule_expiry_sweep()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        if self._expiry_timer is not None:
            self._expiry_timer.cancel()
            self._expiry_timer = None
        self.transport.unbind(self.endpoint)
        for source in self.policy.source_endpoints:
            self.transport.unbind(source)

    # -- pending-request expiry / retry -------------------------------------

    def _schedule_expiry_sweep(self) -> None:
        self._expiry_timer = self.scheduler.call_later(
            max(1.0, self.retry.timeout / 2.0), self._expiry_sweep
        )

    def _expiry_sweep(self) -> None:
        if not self.running:
            return
        self._expire_pending(self.scheduler.now)
        self._schedule_expiry_sweep()

    def _expire_pending(self, now: float) -> None:
        """Drop pending entries whose reply never came.

        Without this, every lost reply leaked its ``_pending`` entry
        forever and the slot was silently dead.
        """
        expired = [
            key
            for key, pending in self._pending.items()
            if now - pending.sent_at > self.retry.timeout
        ]
        for key in expired:
            pending = self._pending.pop(key)
            self.report.requests_expired += 1
            self._m_expired.inc()
            if self._trace:
                self._trace.instant(
                    now, "crawler", "request.expired",
                    crawler=self.name, target=pending.target_id.hex(),
                    age=round(now - pending.sent_at, 3),
                )
            self._on_request_expired(pending)

    def _on_request_expired(self, pending: _PendingRequest) -> None:
        target = self._targets.get(pending.target_id)
        if target is None or target.responded or not self.running:
            return
        if target.requests_sent < self.policy.requests_per_target:
            return  # the scheduled request loop is still firing
        if target.retry_scheduled or any(
            p.target_id == pending.target_id for p in self._pending.values()
        ):
            return  # a younger request (or a queued retry) may still answer
        budget = self.retry.retry_budget
        out_of_budget = budget is not None and self._retries_spent >= budget
        if target.retries >= self.retry.max_retries or out_of_budget:
            if not target.gave_up:
                target.gave_up = True
                self.report.targets_given_up += 1
                self._m_gave_up.inc()
                if self._trace:
                    self._trace.instant(
                        self.scheduler.now, "crawler", "target.gave_up",
                        crawler=self.name, target=target.bot_id.hex(),
                        retries=target.retries, out_of_budget=out_of_budget,
                    )
            return
        target.retries += 1
        target.retry_scheduled = True
        self._retries_spent += 1
        delay = self.retry.backoff(target.retries - 1, self.rng)
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "crawler", "request.retry_scheduled",
                crawler=self.name, target=target.bot_id.hex(),
                attempt=target.retries, delay=round(delay, 3),
            )
        self.scheduler.call_later(delay, self._refire, target)

    def _refire(self, target: _Target) -> None:
        target.retry_scheduled = False
        if not self.running or target.responded:
            return
        self._request_counter += 1
        self.report.requests_sent += 1
        self.report.retries_sent += 1
        self._m_retries.inc()
        self._m_issued.inc()
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "crawler", "request.issued",
                crawler=self.name, target=target.bot_id.hex(), retry=True,
            )
        self.send_request(target)

    @property
    def pending_requests(self) -> int:
        """Live pending entries (bounded by expiry; tests assert this)."""
        return len(self._pending)

    # -- discovery / scheduling -----------------------------------------------

    def discover(
        self,
        bot_id: bytes,
        endpoint: Endpoint,
        via: Optional[bytes] = None,
        force_contact: bool = False,
    ) -> None:
        """Learn about a peer; contact it if the policy allows."""
        now = self.scheduler.now
        if via is not None:
            self.report.edges.add((via, bot_id))
        ips_before = len(self.report.first_seen_ip) if self._trace else 0
        new = self.report.note_discovery(now, bot_id, endpoint)
        if self._trace and len(self.report.first_seen_ip) > ips_before:
            # Observation only: the analysis layer derives coverage-
            # convergence curves from these (repro trace analyze).
            self._trace.instant(
                now, "crawler", "ip.discovered",
                crawler=self.name, total=len(self.report.first_seen_ip),
            )
        if not new or not self.running:
            return
        if not force_contact and not self.policy.should_contact(bot_id):
            self.report.targets_excluded += 1
            return
        target = _Target(bot_id, endpoint)
        self._targets[bot_id] = target
        self.report.targets_contacted += 1
        if self.policy.initial_contact_delay:
            # Suspend-adherent crawlers pick up new targets on their
            # next cycle; spread first contacts across one cycle.
            delay = self.rng.uniform(0.1, self.policy.initial_contact_delay)
        else:
            # Small jitter spreads the initial burst after bootstrap.
            delay = self.rng.uniform(0.1, 5.0)
        self.scheduler.call_later(delay, self._fire, target)

    def _fire(self, target: _Target) -> None:
        if not self.running:
            return
        target.requests_sent += 1
        self._request_counter += 1
        self.report.requests_sent += 1
        self._m_issued.inc()
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "crawler", "request.issued",
                crawler=self.name, target=target.bot_id.hex(),
                attempt=target.requests_sent,
            )
        self.send_request(target)
        if target.requests_sent < self.policy.requests_per_target:
            interval = self.policy.per_target_interval
            jitter = self.rng.uniform(0.9, 1.1)
            self.scheduler.call_later(max(0.05, interval * jitter), self._fire, target)

    def _source_endpoint(self) -> Endpoint:
        chosen = self.policy.source_for(self._request_counter, self.scheduler.now)
        return chosen if chosen is not None else self.endpoint

    # -- family hooks ------------------------------------------------------------

    def send_request(self, target: _Target) -> None:
        raise NotImplementedError

    def _on_message(self, message: Message) -> None:
        raise NotImplementedError


class ZeusCrawler(_CrawlerBase):
    """A GameOver Zeus peer-list crawler."""

    def __init__(
        self,
        name: str,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        policy: Optional[StealthPolicy] = None,
        profile: ZeusDefectProfile = CLEAN_ZEUS,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(name, endpoint, transport, scheduler, rng, policy, retry)
        self.profile = profile
        self.forger = ZeusForger(profile, rng)
        # session id -> pending request, for reply matching/decryption.
        self._pending: Dict[bytes, _PendingRequest] = {}
        self._recent_source_ids: List[bytes] = []

    def send_request(self, target: _Target) -> None:
        now = self.scheduler.now
        lookup = self.forger.lookup_key(target.bot_id)
        message = self.forger.build(MessageType.PEER_LIST_REQUEST, payload=lookup)
        self._pending[message.session_id] = _PendingRequest(
            target_id=target.bot_id, sent_at=now, source_id=message.source_id
        )
        self._remember_source(message.source_id)
        source = self._source_endpoint()
        self.transport.send(source, target.endpoint, self.forger.encrypt(message, target.bot_id))
        if not self.profile.protocol_logic and target.requests_sent == 1:
            # Protocol-adherent crawlers intersperse the other message
            # types normal bots use (Section 4.1.4).
            extra = self.forger.build(MessageType.VERSION_REQUEST)
            self._pending[extra.session_id] = _PendingRequest(
                target_id=target.bot_id, sent_at=now, source_id=extra.source_id
            )
            self.report.requests_sent += 1
            self.transport.send(source, target.endpoint, self.forger.encrypt(extra, target.bot_id))

    def _remember_source(self, source_id: bytes) -> None:
        if source_id not in self._recent_source_ids:
            self._recent_source_ids.append(source_id)
            if len(self._recent_source_ids) > 64:
                self._recent_source_ids.pop(0)

    def _decrypt(self, payload: bytes) -> Optional[zeus_protocol.ZeusMessage]:
        # Replies are encrypted under the source id we presented; with
        # the random-source defect there are many candidates.
        for key in reversed(self._recent_source_ids):
            try:
                return zeus_protocol.decrypt_message(payload, key)
            except ZeusDecodeError:
                continue
        return None

    def _on_message(self, message: Message) -> None:
        decoded = self._decrypt(message.payload)
        if decoded is None:
            return
        pending = self._pending.pop(decoded.session_id, None)
        if pending is None:
            return
        target_id = pending.target_id
        self.report.responses_received += 1
        self._m_replied.inc()
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "crawler", "request.replied",
                crawler=self.name, target=target_id.hex(),
                rtt=round(self.scheduler.now - pending.sent_at, 6),
            )
        target = self._targets.get(target_id)
        if target is not None and not target.responded:
            target.responded = True
            self.report.verified_bots.add(target_id)
        if decoded.msg_type != MessageType.PEER_LIST_REPLY:
            return
        try:
            entries = zeus_protocol.decode_peer_entries(decoded.payload)
        except ZeusDecodeError:
            return
        for bot_id, endpoint in entries:
            self.discover(bot_id, endpoint, via=target_id)


class SalityCrawler(_CrawlerBase):
    """A Sality peer-exchange crawler.

    Because each response carries a single peer entry from a ~1000
    entry list, meaningful coverage requires many requests per bot --
    callers should set ``policy.requests_per_target`` accordingly (the
    in-the-wild crawlers sent these in quick succession, the Table 2
    hard-hitter defect).
    """

    EPHEMERAL_TTL = 120.0

    def __init__(
        self,
        name: str,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        policy: Optional[StealthPolicy] = None,
        profile: SalityDefectProfile = CLEAN_SALITY,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(name, endpoint, transport, scheduler, rng, policy, retry)
        self.profile = profile
        self.forger = SalityForger(profile, rng)
        self._pending: Dict[int, _PendingRequest] = {}  # nonce -> pending
        self._ephemerals: Set[Endpoint] = set()

    def _exchange_source(self) -> Endpoint:
        """Source endpoint for one exchange.

        Normal Sality senders use a fresh random port per exchange;
        the fixed-port defect (and NAT-style distributed sources) pin
        the port instead.
        """
        base = self._source_endpoint()
        if self.profile.port_range:
            return base
        for _ in range(16):
            candidate = Endpoint(base.ip, self.rng.randrange(10240, 65536))
            if not self.transport.is_bound(candidate):
                self.transport.bind(candidate, self._on_message)
                self._ephemerals.add(candidate)
                self.scheduler.call_later(self.EPHEMERAL_TTL, self._expire_ephemeral, candidate)
                return candidate
        return base

    def _expire_ephemeral(self, endpoint: Endpoint) -> None:
        if endpoint in self._ephemerals:
            self._ephemerals.discard(endpoint)
            self.transport.unbind(endpoint)

    def stop(self) -> None:
        for endpoint in list(self._ephemerals):
            self.transport.unbind(endpoint)
        self._ephemerals.clear()
        super().stop()

    def send_request(self, target: _Target) -> None:
        if not self.profile.protocol_logic and target.requests_sent % 5 == 0:
            # Adherent crawlers intersperse URL-pack exchanges the way
            # real bots do; defective ones send bare PLR streams.
            command, payload = Command.URLPACK_REQUEST, (1).to_bytes(4, "big")
        else:
            command, payload = Command.PEER_REQUEST, b""
        message = self.forger.build(command, payload=payload)
        self._pending[message.nonce] = _PendingRequest(
            target_id=target.bot_id, sent_at=self.scheduler.now
        )
        self.transport.send(self._exchange_source(), target.endpoint, self.forger.encode(message))

    def _on_message(self, message: Message) -> None:
        try:
            decoded = sality_protocol.decode_packet(message.payload)
        except SalityDecodeError:
            return
        pending = self._pending.pop(decoded.nonce, None)
        if pending is None:
            return
        target_id = pending.target_id
        self.report.responses_received += 1
        self._m_replied.inc()
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "crawler", "request.replied",
                crawler=self.name, target=target_id.hex(),
                rtt=round(self.scheduler.now - pending.sent_at, 6),
            )
        target = self._targets.get(target_id)
        if target is not None and not target.responded:
            target.responded = True
            self.report.verified_bots.add(target_id)
        if decoded.command != Command.PEER_RESPONSE:
            return
        try:
            entry = sality_protocol.decode_peer_entry(decoded.payload)
        except SalityDecodeError:
            return
        if entry is None:
            return
        peer_id, endpoint = entry
        self.discover(peer_id.to_bytes(4, "big"), endpoint, via=target_id)
