"""Passive sensor nodes for GameOver Zeus and Sality.

A sensor joins the botnet like a new bot: it *announces* itself until
enough bots hold it in their peer lists, then turns passive and maps
the network from whoever contacts it (Section 2.2).  Sensors here:

* implement the **full protocol** (they subclass the real bot
  behaviour), since botnets evict unresponsive or wrongly-responding
  peers;
* **log every inbound message field-by-field** -- these logs are the
  dataset the paper's crawler anomaly analysis (Section 4.1) and the
  offline detector evaluation (Section 6) run on;
* optionally send an **active peer-list request back** to every bot
  that contacts them, collecting connectivity (edge) data through NAT
  punch-holes -- the "augmented sensor" of Sections 2.2/8.2;
* optionally reproduce the defects of in-the-wild sensors
  (Section 4.2) via :class:`SensorDefectProfile`: empty peer-list
  replies, duplicated promoted entries, missing proxy-list support,
  missing update support, stale version numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.botnets.base import PeerEntry
from repro.botnets.sality import protocol as sality_protocol
from repro.botnets.sality.bot import SalityBot, SalityConfig
from repro.botnets.sality.protocol import Command, SalityDecodeError
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.bot import ZeusBot, ZeusConfig
from repro.botnets.zeus.protocol import MessageType, ZeusDecodeError, ZeusMessage
from repro.faults.retry import RetryPolicy
from repro.net.transport import Endpoint, Message, Transport
from repro.obs import runtime as obs_runtime
from repro.sim.clock import DAY, MINUTE
from repro.sim.scheduler import Scheduler


@dataclass(frozen=True)
class SensorDefectProfile:
    """Defects of in-the-wild Zeus sensors (Section 4.2)."""

    name: str = "clean"
    empty_peer_lists: bool = False    # reply to PLRs with zero entries
    duplicate_peers: bool = False     # serve duplicated promoted entries
    no_proxy_reply: bool = False      # fail to return the proxy-bot list
    no_update_support: bool = False   # ignore update (data) requests
    stale_version: bool = False       # report an outdated version

    def defect_names(self) -> List[str]:
        rows = (
            "empty_peer_lists", "duplicate_peers", "no_proxy_reply",
            "no_update_support", "stale_version",
        )
        return [row for row in rows if getattr(self, row)]


CLEAN_SENSOR = SensorDefectProfile()


@dataclass
class ObservedZeusMessage:
    """One logged inbound Zeus message, as a sensor saw it."""

    time: float
    src_ip: int
    src_port: int
    decrypt_ok: bool
    msg_type: int = -1
    random_byte: int = -1
    ttl: int = -1
    lop: int = -1
    session_id: bytes = b""
    source_id: bytes = b""
    padding: bytes = b""
    lookup_key: bytes = b""


@dataclass
class ObservedSalityMessage:
    """One logged inbound Sality packet, as a sensor saw it."""

    time: float
    src_ip: int
    src_port: int
    decode_ok: bool
    command: int = -1
    bot_id: int = -1
    minor_version: int = -1
    padding: bytes = b""


class ZeusSensor(ZeusBot):
    """A Zeus sensor: full bot protocol + logging + announcement."""

    def __init__(
        self,
        node_id: str,
        bot_id: bytes,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        config: Optional[ZeusConfig] = None,
        profile: SensorDefectProfile = CLEAN_SENSOR,
        announce_duration: float = 2 * DAY,
        announce_fanout: int = 10,
        active_peer_list_requests: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            bot_id=bot_id,
            endpoint=endpoint,
            transport=transport,
            scheduler=scheduler,
            rng=rng,
            routable=True,  # sensors must be reachable to be useful
            config=config,
        )
        self.profile = profile
        self.announce_duration = announce_duration
        self.announce_fanout = announce_fanout
        self.active_peer_list_requests = active_peer_list_requests
        # Optional resilience for active probing: re-issue peer-list
        # probes whose replies the network ate (None = never retry).
        self.retry = retry
        self.probes_expired = 0
        self.probe_retries = 0
        self.observations: List[ObservedZeusMessage] = []
        self.observed_edges: Set[Tuple[bytes, bytes]] = set()
        self._started_at: Optional[float] = None
        self._probed_sources: Set[bytes] = set()
        self._probe_attempts: Dict[bytes, int] = {}
        # Defective sensors report a version several updates behind.
        self._reported_version = 0x00020100 if profile.stale_version else self.config.version
        # Observability: inbound-log and active-probe lifecycle
        # counters, labeled by sensor node id (no-op stubs when off).
        self._trace = obs_runtime.tracer()
        registry = obs_runtime.metrics()
        self._m_observed = registry.counter(
            "sensor.observations", "inbound messages logged by sensors"
        ).labels(node_id)
        self._m_probes = registry.counter(
            "sensor.probes_issued", "active peer-list probes sent"
        ).labels(node_id)
        self._m_probes_expired = registry.counter(
            "sensor.probes_expired", "active probes expired on timeout"
        ).labels(node_id)
        self._m_probe_retries = registry.counter(
            "sensor.probe_retries", "active probes re-issued under retry"
        ).labels(node_id)

    # -- lifecycle --------------------------------------------------------

    def start(self, first_cycle_delay: Optional[float] = None) -> None:
        self._started_at = self.scheduler.now
        super().start(first_cycle_delay=first_cycle_delay if first_cycle_delay is not None else 1.0)

    @property
    def announcing(self) -> bool:
        return (
            self._started_at is not None
            and self.scheduler.now - self._started_at < self.announce_duration
        )

    def run_cycle(self) -> None:
        """Announce while young; afterwards stay passive (keep peers
        fresh only, never crawl)."""
        now = self.scheduler.now
        self._expire_pending(now)
        if not self.announcing:
            return
        entries = self.peer_list.entries()
        if not entries:
            return
        fanout = min(self.announce_fanout, len(entries))
        for entry in self.rng.sample(entries, fanout):
            # A peer-list request is the announcement: the receiving
            # bot learns us through the push mechanism.
            self._send_request(entry.bot_id, entry.endpoint, MessageType.PEER_LIST_REQUEST, entry.bot_id)

    # -- logging + dispatch ----------------------------------------------------

    def handle_message(self, message: Message) -> None:
        observed = self._observe(message)
        self.observations.append(observed)
        self._m_observed.inc()
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "sensor", "observe",
                sensor=self.node_id, src=str(message.src),
                decrypt_ok=observed.decrypt_ok, msg_type=observed.msg_type,
            )
        if not observed.decrypt_ok:
            self.undecryptable += 1
            return
        if self.active_peer_list_requests and observed.source_id not in self._probed_sources:
            self._probed_sources.add(observed.source_id)
            entry = PeerEntry(
                bot_id=observed.source_id, endpoint=message.src, last_seen=self.scheduler.now
            )
            self.peer_list.add(entry)
            current = self.peer_list.get(observed.source_id)
            if current is not None:
                self._m_probes.inc()
                if self._trace:
                    self._trace.instant(
                        self.scheduler.now, "sensor", "probe.issued",
                        sensor=self.node_id, target=observed.source_id.hex(),
                    )
                self._send_request(
                    current.bot_id, current.endpoint, MessageType.PEER_LIST_REQUEST, observed.source_id
                )
        super().handle_message(message)

    def _observe(self, message: Message) -> ObservedZeusMessage:
        base = ObservedZeusMessage(
            time=self.scheduler.now,
            src_ip=message.src.ip,
            src_port=message.src.port,
            decrypt_ok=False,
        )
        try:
            decoded = zeus_protocol.decrypt_message(message.payload, self.bot_id)
        except ZeusDecodeError:
            return base
        base.decrypt_ok = True
        base.msg_type = decoded.msg_type
        base.random_byte = decoded.random_byte
        base.ttl = decoded.ttl
        base.lop = len(decoded.padding)
        base.session_id = decoded.session_id
        base.source_id = decoded.source_id
        base.padding = decoded.padding
        if decoded.msg_type == MessageType.PEER_LIST_REQUEST:
            base.lookup_key = decoded.payload
        return base

    # -- active-probe retry ------------------------------------------------------

    def _expire_pending(self, now: float) -> None:
        """Expire as a bot does, then re-issue timed-out active probes
        under the retry policy (bounded attempts per probed source)."""
        if self.retry is None:
            super()._expire_pending(now)
            return
        expired = [
            pending
            for pending in self._pending.values()
            if now - pending.sent_at > self.config.response_timeout
        ]
        super()._expire_pending(now)
        for pending in expired:
            if (
                pending.msg_type != MessageType.PEER_LIST_REQUEST
                or pending.peer_id not in self._probed_sources
            ):
                continue
            self.probes_expired += 1
            self._m_probes_expired.inc()
            if self._trace:
                self._trace.instant(
                    now, "sensor", "probe.expired",
                    sensor=self.node_id, target=pending.peer_id.hex(),
                )
            attempts = self._probe_attempts.get(pending.peer_id, 0)
            if attempts >= self.retry.max_retries:
                continue
            self._probe_attempts[pending.peer_id] = attempts + 1
            delay = self.retry.backoff(attempts, self.rng)
            if self._trace:
                self._trace.instant(
                    now, "sensor", "probe.retry_scheduled",
                    sensor=self.node_id, target=pending.peer_id.hex(),
                    attempt=attempts + 1, delay=round(delay, 3),
                )
            self.scheduler.call_later(delay, self._reprobe, pending.peer_id)

    def _reprobe(self, peer_id: bytes) -> None:
        if not self.online:
            return
        entry = self.peer_list.get(peer_id)
        if entry is None:
            return  # the eviction machinery already gave up on it
        self.probe_retries += 1
        self._m_probe_retries.inc()
        self._m_probes.inc()
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "sensor", "probe.issued",
                sensor=self.node_id, target=peer_id.hex(), retry=True,
            )
        self._send_request(entry.bot_id, entry.endpoint, MessageType.PEER_LIST_REQUEST, peer_id)

    # -- edge collection from our own peer-list requests -------------------------

    def _on_peer_list_reply(self, reply: ZeusMessage, src: Endpoint) -> None:
        pending = self._pending.get(reply.session_id)
        if pending is not None and self.active_peer_list_requests:
            try:
                entries = zeus_protocol.decode_peer_entries(reply.payload)
            except ZeusDecodeError:
                entries = []
            for bot_id, _ in entries:
                self.observed_edges.add((pending.peer_id, bot_id))
        super()._on_peer_list_reply(reply, src)

    # -- defective services ---------------------------------------------------------

    def _on_peer_list_request(self, request: ZeusMessage, src: Endpoint) -> None:
        now = self.scheduler.now
        self._plr_history.append((now, src.ip))
        self.peer_list.add(PeerEntry(bot_id=request.source_id, endpoint=src, last_seen=now))
        if self.profile.empty_peer_lists:
            self._reply(
                request, src, MessageType.PEER_LIST_REPLY, zeus_protocol.encode_peer_entries([])
            )
            return
        # Same selection as select_closest over this list's entries;
        # delegated so a slab-backed list ranks on precomputed id ints.
        selected = self.peer_list.closest(
            request.payload, request.source_id, self.config.peers_per_response
        )
        if self.profile.duplicate_peers and selected:
            # Promote the first entry (e.g. a sinkhole) by duplication --
            # "a behavior never displayed by legitimate bots".
            promoted = selected[0]
            selected = ([promoted] * 3 + selected)[: self.config.peers_per_response]
        self._reply(
            request, src, MessageType.PEER_LIST_REPLY, zeus_protocol.encode_peer_entries(selected)
        )

    def _on_proxy_request(self, request: ZeusMessage, src: Endpoint) -> None:
        if self.profile.no_proxy_reply:
            return  # silently fail, as all analyzed sensors did
        super()._on_proxy_request(request, src)

    def _on_data_request(self, request: ZeusMessage, src: Endpoint) -> None:
        if self.profile.no_update_support:
            return
        super()._on_data_request(request, src)

    def _on_version_request(self, request: ZeusMessage, src: Endpoint) -> None:
        self.peer_list.touch(request.source_id, self.scheduler.now)
        payload = zeus_protocol.encode_version_reply(self._reported_version, self.endpoint.port)
        self._reply(request, src, MessageType.VERSION_REPLY, payload)

    # -- analysis helpers ---------------------------------------------------------

    def observed_ips(self) -> Set[int]:
        return {obs.src_ip for obs in self.observations}

    def peer_list_request_log(
        self, since: float = 0.0, until: Optional[float] = None
    ) -> List[ObservedZeusMessage]:
        return [
            obs
            for obs in self.observations
            if obs.decrypt_ok
            and obs.msg_type == MessageType.PEER_LIST_REQUEST
            and obs.time >= since
            and (until is None or obs.time < until)
        ]


class SalitySensor(SalityBot):
    """A Sality sensor: full bot protocol + logging.

    The paper could not distinguish (hypothetical) Sality sensors from
    legitimate high-in-degree bots precisely because a full-protocol
    responder shows no anomalies -- this class is that responder.
    """

    def __init__(
        self,
        node_id: str,
        bot_id: bytes,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        config: Optional[SalityConfig] = None,
        announce_duration: float = 2 * DAY,
    ) -> None:
        super().__init__(
            node_id=node_id,
            bot_id=bot_id,
            endpoint=endpoint,
            transport=transport,
            scheduler=scheduler,
            rng=rng,
            routable=True,
            config=config,
        )
        self.announce_duration = announce_duration
        self.observations: List[ObservedSalityMessage] = []
        self._started_at: Optional[float] = None
        self._trace = obs_runtime.tracer()
        self._m_observed = obs_runtime.metrics().counter(
            "sensor.observations", "inbound messages logged by sensors"
        ).labels(node_id)

    def start(self, first_cycle_delay: Optional[float] = None) -> None:
        self._started_at = self.scheduler.now
        super().start(first_cycle_delay=first_cycle_delay if first_cycle_delay is not None else 1.0)

    @property
    def announcing(self) -> bool:
        return (
            self._started_at is not None
            and self.scheduler.now - self._started_at < self.announce_duration
        )

    def run_cycle(self) -> None:
        now = self.scheduler.now
        self._expire_pending(now)
        entries = self.peer_list.entries()
        if not entries:
            return
        if self.announcing:
            fanout = min(self.config.announce_fanout, len(entries))
            for entry in self.rng.sample(entries, fanout):
                self._send_request(
                    entry, Command.HELLO, sality_protocol.encode_hello(self.endpoint.port)
                )
        else:
            # Passive phase: answer probes; keep a trickle of URL-pack
            # exchanges so goodcount does not decay at our peers.
            count = min(2, len(entries))
            for entry in self.rng.sample(entries, count):
                payload = self.urlpack_sequence.to_bytes(4, "big")
                self._send_request(entry, Command.URLPACK_REQUEST, payload)

    def handle_message(self, message: Message) -> None:
        observed = ObservedSalityMessage(
            time=self.scheduler.now,
            src_ip=message.src.ip,
            src_port=message.src.port,
            decode_ok=False,
        )
        try:
            decoded = sality_protocol.decode_packet(message.payload)
        except SalityDecodeError:
            self.observations.append(observed)
            self._m_observed.inc()
            if self._trace:
                self._trace.instant(
                    self.scheduler.now, "sensor", "observe",
                    sensor=self.node_id, src=str(message.src), decode_ok=False,
                )
            self.undecodable += 1
            return
        observed.decode_ok = True
        observed.command = decoded.command
        observed.bot_id = decoded.bot_id
        observed.minor_version = decoded.minor_version
        observed.padding = decoded.padding
        self.observations.append(observed)
        self._m_observed.inc()
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "sensor", "observe",
                sensor=self.node_id, src=str(message.src),
                decode_ok=True, command=decoded.command,
            )
        super().handle_message(message)

    def observed_ips(self) -> Set[int]:
        return {obs.src_ip for obs in self.observations}

    def peer_list_request_log(
        self, since: float = 0.0, until: Optional[float] = None
    ) -> List[ObservedSalityMessage]:
        return [
            obs
            for obs in self.observations
            if obs.decode_ok
            and obs.command == Command.PEER_REQUEST
            and obs.time >= since
            and (until is None or obs.time < until)
        ]
