"""Sensor detection by in-degree ranking plus active probing
(paper Section 4.2).

The paper found Zeus sensors by (1) building a view of the
connectivity graph and ranking nodes by in-degree -- sensors attract
in-edges by design -- then (2) actively probing the high-in-degree
candidates, because high in-degree alone also matches hundreds of
legitimate well-reachable bots.  A probe sends the message types
in-the-wild sensors got wrong: proxy-list requests (all failed to
answer), update requests (none answered), peer-list requests (most
returned empty or duplicated entries), version requests (mostly stale).

:func:`rank_by_in_degree` implements step (1) over the population's
peer lists; :class:`SensorProber` implements step (2) on the live
simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.botnets.zeus import protocol
from repro.botnets.zeus.protocol import MessageType, ZeusDecodeError
from repro.net.transport import Endpoint, Message, Transport
from repro.sim.scheduler import Scheduler

# A version this far behind the current network version is "stale".
STALE_VERSION_MARGIN = 0x00000100


@dataclass(frozen=True)
class Candidate:
    """A high-in-degree node worth probing."""

    bot_id: bytes
    endpoint: Endpoint
    in_degree: int


def rank_by_in_degree(bots: Sequence, top: int = 20) -> List[Candidate]:
    """Rank every peer-list entry across ``bots`` by how many peer
    lists hold it (its in-degree)."""
    holders: Dict[Tuple[bytes, Endpoint], int] = {}
    for bot in bots:
        peer_list = getattr(bot, "peer_list", None)
        if peer_list is None:
            continue
        for entry in peer_list:
            key = (entry.bot_id, entry.endpoint)
            holders[key] = holders.get(key, 0) + 1
    ranked = sorted(holders.items(), key=lambda item: (-item[1], item[0][1]))
    return [
        Candidate(bot_id=bot_id, endpoint=endpoint, in_degree=count)
        for (bot_id, endpoint), count in ranked[:top]
    ]


@dataclass
class ProbeVerdict:
    """Outcome of probing one candidate."""

    candidate: Candidate
    anomalies: List[str] = field(default_factory=list)
    responded: bool = False

    @property
    def is_sensor_suspect(self) -> bool:
        """Sensors betray themselves through response anomalies; an
        unresponsive candidate is just a dead peer, not a suspect."""
        return self.responded and bool(self.anomalies)


class SensorProber:
    """Actively probes candidates with the full message-type battery."""

    def __init__(
        self,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        current_version: int,
        probe_timeout: float = 30.0,
    ) -> None:
        self.endpoint = endpoint
        self.transport = transport
        self.scheduler = scheduler
        self.rng = rng
        self.current_version = current_version
        self.probe_timeout = probe_timeout
        self.bot_id = protocol.random_id(rng)
        self._replies: Dict[bytes, protocol.ZeusMessage] = {}

    # Each battery message is sent this many times: a single lost
    # datagram must not make a healthy bot look like a broken sensor.
    ATTEMPTS = 3

    def probe(self, candidates: Sequence[Candidate]) -> List[ProbeVerdict]:
        """Probe all candidates and classify their response anomalies."""
        self.transport.bind(self.endpoint, self._on_message)
        try:
            sessions: Dict[Tuple[int, int], List[bytes]] = {}
            for index, candidate in enumerate(candidates):
                for offset, msg_type, payload in self._battery(candidate):
                    for attempt in range(self.ATTEMPTS):
                        message = protocol.make_message(
                            msg_type, self.bot_id, self.rng, payload=payload
                        )
                        sessions.setdefault((index, msg_type), []).append(
                            message.session_id
                        )
                        self.scheduler.call_later(
                            offset + index * 2.0 + attempt * 10.0,
                            self._send,
                            candidate,
                            message,
                        )
            deadline = (
                self.scheduler.now
                + len(candidates) * 2.0
                + self.ATTEMPTS * 10.0
                + self.probe_timeout
            )
            self.scheduler.run_until(deadline)
            return [
                self._classify(candidate, index, sessions)
                for index, candidate in enumerate(candidates)
            ]
        finally:
            self.transport.unbind(self.endpoint)

    def _battery(self, candidate: Candidate):
        return (
            (0.0, MessageType.VERSION_REQUEST, b""),
            (0.5, MessageType.PEER_LIST_REQUEST, self.bot_id),
            (1.0, MessageType.PROXY_REQUEST, b""),
            (1.5, MessageType.DATA_REQUEST, b"\x01"),
        )

    def _send(self, candidate: Candidate, message: protocol.ZeusMessage) -> None:
        self.transport.send(
            self.endpoint, candidate.endpoint, protocol.encrypt_message(message, candidate.bot_id)
        )

    def _on_message(self, message: Message) -> None:
        try:
            decoded = protocol.decrypt_message(message.payload, self.bot_id)
        except ZeusDecodeError:
            return
        self._replies[decoded.session_id] = decoded

    def _classify(
        self,
        candidate: Candidate,
        index: int,
        sessions: Dict[Tuple[int, int], List[bytes]],
    ) -> ProbeVerdict:
        verdict = ProbeVerdict(candidate=candidate)

        def reply_for(msg_type: int) -> Optional[protocol.ZeusMessage]:
            for session in sessions.get((index, msg_type), ()):
                reply = self._replies.get(session)
                if reply is not None:
                    return reply
            return None

        version_reply = reply_for(MessageType.VERSION_REQUEST)
        if version_reply is not None:
            verdict.responded = True
            try:
                version, _ = protocol.decode_version_reply(version_reply.payload)
                if version + STALE_VERSION_MARGIN <= self.current_version:
                    verdict.anomalies.append("stale_version")
            except ZeusDecodeError:
                verdict.anomalies.append("malformed_version_reply")
        plr_reply = reply_for(MessageType.PEER_LIST_REQUEST)
        if plr_reply is not None:
            verdict.responded = True
            try:
                entries = protocol.decode_peer_entries(plr_reply.payload)
            except ZeusDecodeError:
                entries = None
                verdict.anomalies.append("malformed_peer_list")
            if entries is not None:
                if not entries:
                    verdict.anomalies.append("empty_peer_list")
                else:
                    ids = [bot_id for bot_id, _ in entries]
                    if len(ids) != len(set(ids)):
                        verdict.anomalies.append("duplicate_peers")
        if reply_for(MessageType.PROXY_REQUEST) is None:
            verdict.anomalies.append("no_proxy_reply")
        if reply_for(MessageType.DATA_REQUEST) is None:
            verdict.anomalies.append("no_update_reply")
        if not verdict.responded:
            # Dead peer: the "anomalies" are just silence.
            verdict.anomalies = []
        return verdict
