"""Sinkholing: the takedown operation recon exists to serve.

The paper's motivation (Sections 1, 8.2): every P2P botnet takedown
needs accurate recon first — sinkholing "overwrites peer list entries"
and therefore needs the population map (sensors) and connectivity
information (crawlers / augmented sensors) to know which entries to
poison.  This module implements a GameOver-Zeus-style sinkholing
campaign against the simulated botnet:

* :class:`SinkholeNode` — a full-protocol responder that answers peer
  list requests *only* with other sinkhole entries, so a bot that
  starts talking to sinkholes is progressively steered away from the
  real population.
* :class:`SinkholeCampaign` — drives the poisoning: every sinkhole
  periodically sends peer-list requests to the target bots (the push
  mechanism inserts the requesting sinkhole into the target's peer
  list), and measures capture over time.

Two of the paper's structural points become measurable here:

* **Address diversity matters.**  Zeus accepts at most one peer-list
  entry per /20 subnet, so a sinkholing operation confined to one /20
  can occupy at most one of ~50-150 peer-list slots per bot; campaigns
  need sinkholes spread across many /20s (mirroring Section 5.3's
  conclusion that serious recon/attack infrastructure needs a /16 or
  32 distinct /20s).
* **Recon quality bounds takedown reach.**  The campaign can only
  poison bots it knows about; feeding it a crawler's partial view
  instead of the full population caps the capture rate accordingly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.botnets.base import PeerEntry
from repro.botnets.zeus import protocol
from repro.botnets.zeus.bot import ZeusBot, ZeusConfig
from repro.botnets.zeus.protocol import MessageType, ZeusMessage
from repro.net.transport import Endpoint, Transport
from repro.sim.clock import MINUTE
from repro.sim.scheduler import Scheduler


class SinkholeNode(ZeusBot):
    """A sinkhole: protocol-complete, but every peer-list response
    promotes only sibling sinkholes."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Set by the campaign after all sinkholes exist.
        self.siblings: List[Tuple[bytes, Endpoint]] = []
        self.poison_responses = 0

    def _on_peer_list_request(self, request: ZeusMessage, src: Endpoint) -> None:
        now = self.scheduler.now
        self._plr_history.append((now, src.ip))
        self.peer_list.add(PeerEntry(bot_id=request.source_id, endpoint=src, last_seen=now))
        entries = [entry for entry in self.siblings if entry[0] != request.source_id]
        selected = entries[: self.config.peers_per_response]
        self.poison_responses += 1
        self._reply(
            request, src, MessageType.PEER_LIST_REPLY, protocol.encode_peer_entries(selected)
        )

    def run_cycle(self) -> None:
        """Campaign-driven; no autonomous cycle behaviour."""
        self._expire_pending(self.scheduler.now)


@dataclass
class CaptureSnapshot:
    """Poisoning progress at one instant."""

    time: float
    bots_with_sinkhole: int
    total_bots: int
    mean_sinkhole_share: float

    @property
    def reach(self) -> float:
        return self.bots_with_sinkhole / self.total_bots if self.total_bots else 0.0


class SinkholeCampaign:
    """Coordinates sinkhole nodes poisoning a target list.

    ``sinkhole_subnets`` controls address diversity: endpoints are
    taken one per /20 from the given bases.  ``targets`` is the recon
    product — (bot id, endpoint) pairs for the bots to poison.
    """

    def __init__(
        self,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        sinkhole_endpoints: Sequence[Endpoint],
        poison_interval: float = 10 * MINUTE,
        config: Optional[ZeusConfig] = None,
    ) -> None:
        if not sinkhole_endpoints:
            raise ValueError("campaign needs at least one sinkhole endpoint")
        self.transport = transport
        self.scheduler = scheduler
        self.rng = rng
        self.poison_interval = poison_interval
        self.nodes: List[SinkholeNode] = []
        for index, endpoint in enumerate(sinkhole_endpoints):
            node = SinkholeNode(
                node_id=f"sinkhole-{index}",
                bot_id=protocol.random_id(rng),
                endpoint=endpoint,
                transport=transport,
                scheduler=scheduler,
                rng=random.Random(rng.getrandbits(64)),
                routable=True,
                config=config if config is not None else ZeusConfig(),
            )
            self.nodes.append(node)
        siblings = [(node.bot_id, node.endpoint) for node in self.nodes]
        for node in self.nodes:
            node.siblings = siblings
        self._targets: List[Tuple[bytes, Endpoint]] = []
        self._running = False
        self.pushes_sent = 0

    @property
    def sinkhole_ids(self) -> Set[bytes]:
        return {node.bot_id for node in self.nodes}

    def start(self, targets: Sequence[Tuple[bytes, Endpoint]]) -> None:
        """Begin poisoning ``targets`` (the recon product)."""
        if self._running:
            raise RuntimeError("campaign already running")
        self._running = True
        self._targets = list(targets)
        for node in self.nodes:
            node.start(first_cycle_delay=self.poison_interval)
        self.scheduler.call_later(1.0, self._poison_round)

    def stop(self) -> None:
        self._running = False
        for node in self.nodes:
            node.stop()

    def _poison_round(self) -> None:
        if not self._running:
            return
        # Each round, every sinkhole pushes itself into a slice of the
        # target list via peer-list requests (the push mechanism).
        for node in self.nodes:
            slice_size = max(1, len(self._targets) // len(self.nodes))
            picks = self.rng.sample(self._targets, min(slice_size, len(self._targets)))
            for bot_id, endpoint in picks:
                message = protocol.make_message(
                    MessageType.PEER_LIST_REQUEST,
                    node.bot_id,
                    node.rng,
                    payload=bot_id,  # normal lookup semantics: stay stealthy
                )
                self.pushes_sent += 1
                node.send(endpoint, protocol.encrypt_message(message, bot_id))
        self.scheduler.call_later(self.poison_interval, self._poison_round)

    # -- measurement -----------------------------------------------------

    def capture_snapshot(self, bots: Sequence) -> CaptureSnapshot:
        """Measure poisoning across ``bots`` (ZeusBot-like objects)."""
        sinkhole_ids = self.sinkhole_ids
        with_sinkhole = 0
        shares = []
        for bot in bots:
            entries = bot.peer_list.entries()
            if not entries:
                shares.append(0.0)
                continue
            poisoned = sum(1 for entry in entries if entry.bot_id in sinkhole_ids)
            if poisoned:
                with_sinkhole += 1
            shares.append(poisoned / len(entries))
        return CaptureSnapshot(
            time=self.scheduler.now,
            bots_with_sinkhole=with_sinkhole,
            total_bots=len(list(bots)),
            mean_sinkhole_share=sum(shares) / len(shares) if shares else 0.0,
        )


def spread_endpoints(
    base_ip: int, count: int, per_slash20: bool = True, port: int = 5353
) -> List[Endpoint]:
    """Sinkhole endpoints: one per /20 when diverse, or all packed
    into a single /20 to demonstrate the Zeus filter's resistance."""
    step = 0x1000 if per_slash20 else 4
    return [Endpoint(base_ip + index * step, port) for index in range(count)]
