"""Stealthy crawling strategies (paper Section 5).

Three evasion techniques against out-degree / request-frequency
crawler detection, all combinable through one :class:`StealthPolicy`:

* **Contact-ratio limiting** (Section 5.1): contact only ``1/x`` of the
  bots, chosen deterministically from the bot identifier so repeated
  runs exclude the same bots.  Excluded bots are still *learned* from
  the peer lists of contacted bots, just never verified.
* **Request-frequency limiting** (Section 5.2): respect (a fraction of)
  the family's suspend cycle between successive requests to the same
  bot, instead of hard-hitting.
* **Distributed crawling / address rotation** (Section 5.3): spread
  egress over many source endpoints, optionally rotating on a period so
  no address exceeds the per-address detection threshold.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.net.transport import Endpoint


def contact_hash(bot_id: bytes) -> int:
    """Stable 64-bit hash of a bot identifier.

    Deterministic across runs and processes (unlike ``hash()``), so a
    ratio-limited crawler restricts itself to a *fixed* subset of bots,
    as the paper's contact-ratio crawlers do ("contacted a
    deterministically restricted fraction of bots, based on the bot
    identifier", Section 6.2).
    """
    return int.from_bytes(hashlib.blake2b(bot_id, digest_size=8).digest(), "big")


@dataclass
class StealthPolicy:
    """One crawler's stealth configuration.

    ``contact_ratio`` is the ``x`` in "contact 1/x of all bots".
    ``per_target_interval`` is the minimum spacing between requests to
    the same bot: the family's full suspend cycle for a fully adherent
    crawler, half of it for "half suspend cycle", or a small value for
    aggressive crawling.  ``source_endpoints`` is the pool for
    distributed crawling; ``rotation_interval`` switches the active
    source periodically instead of round-robining per request.
    """

    contact_ratio: int = 1
    per_target_interval: float = 10.0
    source_endpoints: Sequence[Endpoint] = ()
    rotation_interval: Optional[float] = None
    requests_per_target: int = 5
    # Continuous alternative to contact_ratio: contact this fraction of
    # bots (used to replay the per-crawler coverage levels of Tables
    # 2/3, which are not powers of two).  Overrides contact_ratio.
    contact_fraction: Optional[float] = None
    # How long after discovery a NEW target may first be contacted.
    # None = almost immediately (a small anti-burst jitter).  A
    # fully suspend-cycle-adherent crawler processes newly learned
    # peers on its next cycle, not instantly: set this to the cycle
    # length and first contacts spread uniformly across one cycle.
    initial_contact_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.contact_ratio < 1:
            raise ValueError("contact_ratio must be >= 1")
        if self.per_target_interval < 0:
            raise ValueError("per_target_interval must be >= 0")
        if self.requests_per_target < 1:
            raise ValueError("requests_per_target must be >= 1")
        if self.rotation_interval is not None and self.rotation_interval <= 0:
            raise ValueError("rotation_interval must be positive")
        if self.contact_fraction is not None and not 0.0 < self.contact_fraction <= 1.0:
            raise ValueError("contact_fraction must be in (0, 1]")
        if self.initial_contact_delay is not None and self.initial_contact_delay < 0:
            raise ValueError("initial_contact_delay must be >= 0")

    def should_contact(self, bot_id: bytes) -> bool:
        """Is this bot inside our deterministic contact subset?"""
        if self.contact_fraction is not None:
            if self.contact_fraction >= 1.0:
                return True
            return contact_hash(bot_id) % 10_000 < int(self.contact_fraction * 10_000)
        if self.contact_ratio == 1:
            return True
        return contact_hash(bot_id) % self.contact_ratio == 0

    def source_for(self, request_index: int, now: float) -> Optional[Endpoint]:
        """Which source endpoint to use for the Nth request at time
        ``now``; None means "use the crawler's default endpoint"."""
        if not self.source_endpoints:
            return None
        if self.rotation_interval is not None:
            slot = int(now // self.rotation_interval)
            return self.source_endpoints[slot % len(self.source_endpoints)]
        return self.source_endpoints[request_index % len(self.source_endpoints)]


def aggressive_policy(requests_per_target: int = 5, min_interval: float = 12.0) -> StealthPolicy:
    """An aggressive (but Zeus-auto-blacklist-aware) policy.

    Even aggressive Zeus crawlers must stay under the automatic
    blacklisting frequency (Section 6.2.2), hence the default ~12 s
    per-target spacing; pass a smaller ``min_interval`` for botnets
    without auto-blacklisting (e.g. Sality).
    """
    return StealthPolicy(per_target_interval=min_interval, requests_per_target=requests_per_target)


def suspend_cycle_policy(
    cycle_seconds: float,
    fraction: float = 1.0,
    requests_per_target: int = 5,
) -> StealthPolicy:
    """A frequency-limited policy adhering to ``fraction`` of the
    family suspend cycle (1.0 = full cycle, 0.5 = half)."""
    if fraction <= 0:
        raise ValueError("fraction must be positive")
    return StealthPolicy(
        per_target_interval=cycle_seconds * fraction,
        requests_per_target=requests_per_target,
    )
