"""Internet-wide scanning as a recon method (paper Section 7).

Two prerequisites decide whether a P2P botnet is scannable (Table 5):

1. the bot protocol listens on a known fixed port (or tiny range), and
2. an infection-revealing probe message can be constructed without
   per-bot knowledge.

GameOver Zeus fails (2): messages are encrypted under the receiving
bot's ID, so no universal probe exists.  Zeus, Sality, Waledac, and
Storm all fail (1): thousands of candidate ports per host make sweeps
intrusive and slow.  Only ZeroAccess and Kelihos pass both.

:func:`susceptibility_report` regenerates Table 5 from the family
registry; :class:`InternetScanner` actually performs a sweep over a
simulated address space against probeable responders, demonstrating
both the mechanics and the port-range blowup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.botnets.families import FAMILIES, FAMILY_ORDER, FamilyProfile, get_family
from repro.net.address import Subnet
from repro.net.transport import Endpoint, Message, Transport
from repro.sim.scheduler import Scheduler

# A ZMap-style universal probe: any infected host answers it on its
# protocol port; uninfected hosts ignore it.
PROBE_MAGIC = b"\x5a\x4d\x61\x70-repro-probe"
PROBE_ACK = b"\x5a\x41infected"


@dataclass(frozen=True)
class SusceptibilityRow:
    """One row of Table 5."""

    family: str
    fixed_port: bool
    probe_constructible: bool
    susceptible: bool


def susceptibility_report() -> List[SusceptibilityRow]:
    """Regenerate Table 5 from the family registry."""
    return [
        SusceptibilityRow(
            family=name,
            fixed_port=FAMILIES[name].fixed_port,
            probe_constructible=FAMILIES[name].probe_constructible,
            susceptible=FAMILIES[name].scanning_susceptible,
        )
        for name in FAMILY_ORDER
    ]


class ProbeResponder:
    """A minimal infected host for scan experiments.

    Stands in for a ZeroAccess/Kelihos-style bot: listens on its
    family's protocol port and answers the universal probe.  (For the
    Zeus case there is deliberately *no* responder class -- no valid
    probe can be built, which :meth:`InternetScanner.scan` surfaces as
    a hard error.)
    """

    def __init__(self, endpoint: Endpoint, transport: Transport) -> None:
        self.endpoint = endpoint
        self.transport = transport
        self.probes_answered = 0
        transport.bind(endpoint, self._on_message)

    def _on_message(self, message: Message) -> None:
        if message.payload == PROBE_MAGIC:
            self.probes_answered += 1
            self.transport.send(self.endpoint, message.src, PROBE_ACK)


@dataclass
class ScanResult:
    """Outcome of one Internet-wide sweep."""

    family: str
    addresses_probed: int = 0
    probes_sent: int = 0
    responders: Set[Endpoint] = field(default_factory=set)
    duration: float = 0.0

    @property
    def hosts_found(self) -> int:
        return len({endpoint.ip for endpoint in self.responders})


class ScanUnsupportedError(RuntimeError):
    """The target family cannot be scanned (Table 5 prerequisites)."""


class InternetScanner:
    """A ZMap-style scanner over the simulated address space."""

    def __init__(
        self,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        probes_per_second: float = 1000.0,
    ) -> None:
        if probes_per_second <= 0:
            raise ValueError("probes_per_second must be positive")
        self.endpoint = endpoint
        self.transport = transport
        self.scheduler = scheduler
        self.rng = rng
        self.probes_per_second = probes_per_second
        self._result: Optional[ScanResult] = None

    def scan(
        self,
        family_name: str,
        address_space: Sequence[Subnet],
        port_limit: int = 64,
        allow_wide_port_ranges: bool = False,
    ) -> ScanResult:
        """Sweep ``address_space`` for bots of ``family_name``.

        Raises :class:`ScanUnsupportedError` when the family's protocol
        precludes scanning: no constructible probe (Zeus), or a port
        range wider than ``port_limit`` unless the caller explicitly
        opts into the blowup with ``allow_wide_port_ranges``.
        """
        family = get_family(family_name)
        if not family.probe_constructible:
            raise ScanUnsupportedError(
                f"{family_name}: probes need per-bot knowledge "
                "(destination-keyed encryption); Internet-wide scanning is "
                "inherently incompatible (Section 7)"
            )
        low, high = family.port_range
        ports = list(range(low, high + 1))
        if len(ports) > port_limit and not allow_wide_port_ranges:
            raise ScanUnsupportedError(
                f"{family_name}: {len(ports)} candidate ports per host; "
                "scanning would be intrusive and inefficient (Section 7)"
            )
        result = ScanResult(family=family_name)
        self._result = result
        self.transport.bind(self.endpoint, self._on_message)
        started = self.scheduler.now
        send_gap = 1.0 / self.probes_per_second
        when = started
        for subnet in address_space:
            for ip in subnet:
                result.addresses_probed += 1
                for port in ports:
                    result.probes_sent += 1
                    when += send_gap
                    self.scheduler.call_at(
                        when, self._probe, Endpoint(ip, port)
                    )
        # Run the sweep plus a grace window for the last replies.
        self.scheduler.run_until(when + 5.0)
        result.duration = self.scheduler.now - started
        self.transport.unbind(self.endpoint)
        self._result = None
        return result

    def _probe(self, target: Endpoint) -> None:
        self.transport.send(self.endpoint, target, PROBE_MAGIC)

    def _on_message(self, message: Message) -> None:
        if self._result is not None and message.payload == PROBE_ACK:
            self._result.responders.add(message.src)
