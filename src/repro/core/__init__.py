"""The paper's primary contribution: recon tools, their defect models,
anomaly detection, and the distributed crawler-detection algorithm.

Layout:

* :mod:`repro.core.defects` -- per-crawler/sensor defect profiles (the
  shortcomings of Tables 2/3 and Section 4.2) and message forgers that
  reproduce them on the wire.
* :mod:`repro.core.stealth` -- stealthy crawling strategies (Section
  5): contact-ratio limiting, request-frequency limiting, distributed
  crawling.
* :mod:`repro.core.crawler` -- Zeus and Sality crawlers built on those
  pieces, with coverage timelines (Figures 3/4).
* :mod:`repro.core.sensor` -- passive sensors with announcement and
  active peer-list-request augmentation (Sections 2.2, 4.2).
* :mod:`repro.core.scanning` -- Internet-wide scanning (Section 7,
  Table 5).
* :mod:`repro.core.anomaly` -- protocol-specific anomaly detectors
  (Section 4.1/4.2; regenerates Tables 2/3).
* :mod:`repro.core.detection` -- the syntax-agnostic distributed
  crawler-detection algorithm (Section 4.3; Figure 2, Table 4).
"""

from repro.core.crawler import CrawlReport, SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.sensor import SalitySensor, SensorDefectProfile, ZeusSensor
from repro.core.stealth import StealthPolicy

__all__ = [
    "CrawlReport",
    "SalityCrawler",
    "SalityDefectProfile",
    "SalitySensor",
    "SensorDefectProfile",
    "StealthPolicy",
    "ZeusCrawler",
    "ZeusDefectProfile",
    "ZeusSensor",
]
