"""Protocol-logic anomaly detection (Section 4.1.4).

Crawlers cut corners on protocol logic: they stream bare peer-list
requests without the version/update/URL-pack traffic real bots
intersperse, randomize the Zeus lookup key that real bots always set to
the remote peer's ID, and (in Sality) ship stale minor version numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class MessageMixRule:
    """Flags sources whose traffic is (nearly) all peer-list requests.

    Real bots mix message types: version probes every cycle, periodic
    update and URL-pack exchanges.  ``max_plr_fraction`` is generous
    because even real bots lean towards peer-list traffic when short
    on peers.
    """

    min_samples: int = 10
    max_plr_fraction: float = 0.90

    def is_anomalous(self, plr_count: int, total_count: int) -> bool:
        if total_count < self.min_samples:
            return False
        return plr_count / total_count > self.max_plr_fraction


@dataclass(frozen=True)
class LookupKeyRule:
    """Flags Zeus sources whose lookup keys are not the receiver's ID.

    Normal bots "always set this field to the identifier of the remote
    peer" -- the sensor knows its own ID, so any other value is a
    randomized (coverage-widening) lookup.  A small tolerance absorbs
    requests that raced an ID change.
    """

    min_samples: int = 5
    max_mismatch_fraction: float = 0.5

    def is_anomalous(self, lookup_keys: Sequence[bytes], receiver_id: bytes) -> bool:
        relevant = [key for key in lookup_keys if key]
        if len(relevant) < self.min_samples:
            return False
        mismatches = sum(1 for key in relevant if key != receiver_id)
        return mismatches / len(relevant) > self.max_mismatch_fraction


@dataclass(frozen=True)
class VersionRule:
    """Flags Sality sources reporting a wrong minor version
    (Table 2: only 2 of 11 crawlers used a valid one)."""

    min_samples: int = 5

    def is_anomalous(self, minor_versions: Sequence[int], current_minor: int) -> bool:
        if len(minor_versions) < self.min_samples:
            return False
        wrong = sum(1 for v in minor_versions if v != current_minor)
        return wrong / len(minor_versions) > 0.5
