"""Entropy estimation and low-entropy field detection (Section 4.1.2).

Zeus source and session IDs are SHA-1 hashes, and message padding is
random, so any of those fields observed with materially less than 8
bits/byte of empirical entropy -- or with conspicuous printable-ASCII
content like ``ACME-MALWARE-LAB-07`` -- betrays a crawler.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, List, Sequence

# High-entropy 20-byte hashes pool to well above this once a few
# samples accumulate; ASCII identifiers and zeroed padding land far
# below it.
DEFAULT_MIN_BITS_PER_BYTE = 3.5
# Fraction of printable-ASCII bytes above which an "SHA-1" field is
# clearly a human-chosen string.
DEFAULT_MAX_PRINTABLE_RATIO = 0.85


def shannon_entropy(data: bytes) -> float:
    """Empirical Shannon entropy of ``data`` in bits per byte.

    Returns 0.0 for empty input.
    """
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    return -sum(
        (count / total) * math.log2(count / total) for count in counts.values()
    )


def printable_ratio(data: bytes) -> float:
    """Fraction of printable-ASCII bytes (0x20-0x7E)."""
    if not data:
        return 0.0
    return sum(1 for b in data if 0x20 <= b <= 0x7E) / len(data)


def pooled_entropy(samples: Iterable[bytes]) -> float:
    """Entropy of the concatenation of all samples.

    Pooling matters: a single 20-byte hash has at most ~4.3 bits/byte
    of *empirical* entropy (20 samples over 256 symbols), so per-sample
    estimates are meaningless; the pool converges to ~8 for true
    randomness and stays low for repetitive or ASCII content.
    """
    return shannon_entropy(b"".join(samples))


def is_low_entropy(
    samples: Sequence[bytes],
    min_bits_per_byte: float = DEFAULT_MIN_BITS_PER_BYTE,
    max_printable_ratio: float = DEFAULT_MAX_PRINTABLE_RATIO,
    min_bytes: int = 40,
) -> bool:
    """Do the pooled ``samples`` betray a non-random field?

    Two independent signals: pooled entropy below the threshold, or a
    dominant printable-ASCII composition.  Requires at least
    ``min_bytes`` of pooled data before judging, to avoid flagging
    sources seen only once or twice.
    """
    pooled = b"".join(samples)
    if len(pooled) < min_bytes:
        return False
    if shannon_entropy(pooled) < min_bits_per_byte:
        return True
    return printable_ratio(pooled) > max_printable_ratio
