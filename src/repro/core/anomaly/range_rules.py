"""Range-anomaly detection (Section 4.1.1).

Range anomalies are static or constrained values in message fields
that real bots randomize (random byte, TTL, padding length, session
IDs, Sality source ports) -- and, dually, random values in fields that
real bots keep stable (Zeus source IDs, Sality bot IDs).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class RangeRule:
    """Flags a field as *constrained* when a handful of values dominate
    across enough samples.

    ``min_samples`` guards against judging sparse traffic;
    ``max_distinct`` is the largest dominant-value count still
    considered anomalous (e.g. 3 tolerates a crawler rotating among a
    small session pool, Section 4.1.1).  Dominance rather than an
    exact distinct count keeps the rule robust against stray samples:
    a crawler with the invalid-encryption defect occasionally emits
    wrongly-keyed messages that decode to random garbage fields, and a
    few such outliers must not launder an otherwise constant field.
    """

    min_samples: int = 10
    max_distinct: int = 2
    dominance: float = 0.95

    def is_constrained(self, values: Sequence) -> bool:
        if len(values) < self.min_samples:
            return False
        top = Counter(values).most_common(self.max_distinct)
        return sum(count for _, count in top) / len(values) >= self.dominance


@dataclass(frozen=True)
class DispersionRule:
    """Flags a field as *anomalously random* when too many distinct
    values are seen -- e.g. a fresh source ID on every message, where a
    real bot's ID is stable (a handful per IP is normal: NATed bots
    share addresses)."""

    min_samples: int = 10
    max_normal_distinct: int = 8

    def is_dispersed(self, values: Sequence) -> bool:
        if len(values) < self.min_samples:
            return False
        return len(set(values)) > self.max_normal_distinct


def expected_uniform_distinct(samples: int, space: int) -> float:
    """Expected number of distinct values when drawing ``samples``
    uniformly from ``space`` values (birthday-style baseline used to
    calibrate rule thresholds in tests)."""
    if samples <= 0 or space <= 0:
        return 0.0
    return space * (1.0 - (1.0 - 1.0 / space) ** samples)
