"""Anomaly-analysis pipelines (regenerate the paper's Tables 2 and 3).

The analyzers merge the observation logs of many sensors, group them
by source IP, apply every rule from the sibling modules, and emit one
:class:`CrawlerFinding` per sufficiently-active source: its defect
flags (Table 2/3 rows) and its sensor coverage (the tables' bottom
row).  Following the paper, only sources covering at least
``min_coverage`` of the sensors with at least ``min_messages``
messages are studied ("well-functioning crawlers which cover at least
1% of the bot population, ≥ 50 messages to our sensors").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.botnets.sality.protocol import CURRENT_MINOR_VERSION, Command
from repro.botnets.zeus.protocol import MessageType
from repro.core.anomaly.encryption import EncryptionRule
from repro.core.anomaly.entropy import is_low_entropy
from repro.core.anomaly.frequency import HardHitterRule
from repro.core.anomaly.logic import LookupKeyRule, MessageMixRule, VersionRule
from repro.core.anomaly.range_rules import DispersionRule, RangeRule
from repro.sim.clock import MINUTE


@dataclass(frozen=True)
class CrawlerFinding:
    """One analyzed source: its defect flags and reach."""

    ip: int
    defects: Tuple[str, ...]
    message_count: int
    coverage: float  # fraction of sensors this source contacted

    def has(self, defect: str) -> bool:
        return defect in self.defects


@dataclass(frozen=True)
class ZeusThresholds:
    """Tunable rule thresholds for the Zeus analyzer."""

    min_messages: int = 20
    min_coverage: float = 0.01
    range_rule: RangeRule = field(default_factory=RangeRule)
    session_rule: RangeRule = field(default_factory=lambda: RangeRule(max_distinct=3))
    dispersion_rule: DispersionRule = field(default_factory=DispersionRule)
    encryption_rule: EncryptionRule = field(default_factory=EncryptionRule)
    mix_rule: MessageMixRule = field(default_factory=MessageMixRule)
    lookup_rule: LookupKeyRule = field(default_factory=LookupKeyRule)
    hard_hitter_rule: HardHitterRule = field(
        default_factory=lambda: HardHitterRule(suspend_cycle=30 * MINUTE)
    )


@dataclass(frozen=True)
class SalityThresholds:
    """Tunable rule thresholds for the Sality analyzer."""

    min_messages: int = 20
    min_coverage: float = 0.01
    range_rule: RangeRule = field(default_factory=RangeRule)
    port_rule: RangeRule = field(default_factory=RangeRule)
    dispersion_rule: DispersionRule = field(default_factory=DispersionRule)
    encryption_rule: EncryptionRule = field(default_factory=EncryptionRule)
    mix_rule: MessageMixRule = field(default_factory=MessageMixRule)
    version_rule: VersionRule = field(default_factory=VersionRule)
    hard_hitter_rule: HardHitterRule = field(
        default_factory=lambda: HardHitterRule(suspend_cycle=40 * MINUTE)
    )


class _SourceAccumulator:
    """Merged per-source-IP state across all sensors."""

    __slots__ = (
        "valid", "invalid", "plr_count", "random_bytes", "ttls", "lops",
        "sessions", "sources", "paddings", "lookup_mismatches", "lookups",
        "plr_times_by_sensor", "sensors_contacted", "bot_ids",
        "minor_versions", "ports",
    )

    def __init__(self) -> None:
        self.valid = 0
        self.invalid = 0
        self.plr_count = 0
        self.random_bytes: List[int] = []
        self.ttls: List[int] = []
        self.lops: List[int] = []
        self.sessions: List[bytes] = []
        self.sources: List[bytes] = []
        self.paddings: List[bytes] = []
        self.lookup_mismatches = 0
        self.lookups = 0
        self.plr_times_by_sensor: Dict[str, List[float]] = {}
        self.sensors_contacted: Set[str] = set()
        self.bot_ids: List[int] = []
        self.minor_versions: List[int] = []
        self.ports: List[int] = []


class ZeusAnomalyAnalyzer:
    """Scans merged Zeus sensor logs for the Table 3 defect classes."""

    def __init__(self, thresholds: Optional[ZeusThresholds] = None) -> None:
        self.thresholds = thresholds if thresholds is not None else ZeusThresholds()

    def analyze(self, sensors: Sequence) -> List[CrawlerFinding]:
        """``sensors``: ZeusSensor-like objects exposing ``node_id``,
        ``bot_id``, and ``observations``."""
        if not sensors:
            return []
        accumulators: Dict[int, _SourceAccumulator] = {}
        for sensor in sensors:
            for obs in sensor.observations:
                acc = accumulators.get(obs.src_ip)
                if acc is None:
                    acc = accumulators[obs.src_ip] = _SourceAccumulator()
                acc.sensors_contacted.add(sensor.node_id)
                if not obs.decrypt_ok:
                    acc.invalid += 1
                    continue
                acc.valid += 1
                acc.random_bytes.append(obs.random_byte)
                acc.ttls.append(obs.ttl)
                acc.lops.append(obs.lop)
                acc.sessions.append(obs.session_id)
                acc.sources.append(obs.source_id)
                if obs.padding:
                    acc.paddings.append(obs.padding)
                if obs.msg_type == MessageType.PEER_LIST_REQUEST:
                    acc.plr_count += 1
                    acc.lookups += 1
                    if obs.lookup_key != sensor.bot_id:
                        acc.lookup_mismatches += 1
                    acc.plr_times_by_sensor.setdefault(sensor.node_id, []).append(obs.time)
        findings = []
        for ip, acc in accumulators.items():
            coverage = len(acc.sensors_contacted) / len(sensors)
            total = acc.valid + acc.invalid
            if total < self.thresholds.min_messages or coverage < self.thresholds.min_coverage:
                continue
            findings.append(
                CrawlerFinding(
                    ip=ip,
                    defects=tuple(self._defects(acc)),
                    message_count=total,
                    coverage=coverage,
                )
            )
        findings.sort(key=lambda f: (-f.coverage, f.ip))
        return findings

    def _defects(self, acc: _SourceAccumulator) -> List[str]:
        t = self.thresholds
        defects = []
        if t.range_rule.is_constrained(acc.random_bytes):
            defects.append("rnd_range")
        if t.range_rule.is_constrained(acc.ttls):
            defects.append("ttl_range")
        if t.range_rule.is_constrained(acc.lops):
            defects.append("lop_range")
        if t.session_rule.is_constrained(acc.sessions):
            defects.append("session_range")
        if is_low_entropy(sorted(set(acc.sessions)), min_bytes=20):
            defects.append("session_entropy")
        if t.dispersion_rule.is_dispersed(acc.sources):
            defects.append("random_source")
        if is_low_entropy(sorted(set(acc.sources)), min_bytes=20):
            defects.append("source_entropy")
        if acc.paddings and is_low_entropy(acc.paddings, min_bytes=40):
            defects.append("padding_entropy")
        if acc.lookups >= t.lookup_rule.min_samples and acc.lookup_mismatches / acc.lookups > t.lookup_rule.max_mismatch_fraction:
            defects.append("abnormal_lookup")
        if any(
            t.hard_hitter_rule.is_hard_hitter(times)
            for times in acc.plr_times_by_sensor.values()
        ):
            defects.append("hard_hitter")
        if t.mix_rule.is_anomalous(acc.plr_count, acc.valid):
            defects.append("protocol_logic")
        if t.encryption_rule.is_anomalous(acc.valid, acc.invalid):
            defects.append("encryption")
        return defects


class SalityAnomalyAnalyzer:
    """Scans merged Sality sensor logs for the Table 2 defect classes."""

    def __init__(self, thresholds: Optional[SalityThresholds] = None) -> None:
        self.thresholds = thresholds if thresholds is not None else SalityThresholds()

    def analyze(self, sensors: Sequence) -> List[CrawlerFinding]:
        """``sensors``: SalitySensor-like objects exposing ``node_id``
        and ``observations``."""
        if not sensors:
            return []
        accumulators: Dict[int, _SourceAccumulator] = {}
        for sensor in sensors:
            for obs in sensor.observations:
                acc = accumulators.get(obs.src_ip)
                if acc is None:
                    acc = accumulators[obs.src_ip] = _SourceAccumulator()
                acc.sensors_contacted.add(sensor.node_id)
                if not obs.decode_ok:
                    acc.invalid += 1
                    continue
                acc.valid += 1
                acc.bot_ids.append(obs.bot_id)
                acc.minor_versions.append(obs.minor_version)
                acc.lops.append(len(obs.padding))
                acc.ports.append(obs.src_port)
                if obs.command == Command.PEER_REQUEST:
                    acc.plr_count += 1
                    acc.plr_times_by_sensor.setdefault(sensor.node_id, []).append(obs.time)
        findings = []
        for ip, acc in accumulators.items():
            coverage = len(acc.sensors_contacted) / len(sensors)
            total = acc.valid + acc.invalid
            if total < self.thresholds.min_messages or coverage < self.thresholds.min_coverage:
                continue
            findings.append(
                CrawlerFinding(
                    ip=ip,
                    defects=tuple(self._defects(acc)),
                    message_count=total,
                    coverage=coverage,
                )
            )
        findings.sort(key=lambda f: (-f.coverage, f.ip))
        return findings

    def _defects(self, acc: _SourceAccumulator) -> List[str]:
        t = self.thresholds
        defects = []
        if t.dispersion_rule.is_dispersed(acc.bot_ids):
            defects.append("random_id")
        if t.version_rule.is_anomalous(acc.minor_versions, CURRENT_MINOR_VERSION):
            defects.append("version")
        if t.range_rule.is_constrained(acc.lops):
            defects.append("lop_range")
        if t.port_rule.is_constrained(acc.ports):
            defects.append("port_range")
        if any(
            t.hard_hitter_rule.is_hard_hitter(times)
            for times in acc.plr_times_by_sensor.values()
        ):
            defects.append("hard_hitter")
        if t.mix_rule.is_anomalous(acc.plr_count, acc.valid):
            defects.append("protocol_logic")
        if t.encryption_rule.is_anomalous(acc.valid, acc.invalid):
            defects.append("encryption")
        return defects


ZEUS_DEFECT_ROWS: Tuple[str, ...] = (
    "rnd_range", "ttl_range", "lop_range", "session_range",
    "session_entropy", "random_source", "source_entropy",
    "padding_entropy", "abnormal_lookup", "hard_hitter",
    "protocol_logic", "encryption",
)

SALITY_DEFECT_ROWS: Tuple[str, ...] = (
    "random_id", "version", "lop_range", "port_range",
    "hard_hitter", "protocol_logic", "encryption",
)


def defect_matrix(
    findings: Sequence[CrawlerFinding], rows: Sequence[str]
) -> Dict[str, List[bool]]:
    """Row-major defect matrix: row name -> one flag per finding
    (column), in the findings' order.  The shape of Tables 2/3."""
    return {row: [finding.has(row) for finding in findings] for row in rows}
