"""Request-frequency (hard-hitter) anomaly detection (Section 4.1.5).

Real bots exchange one peer-list request per neighbor and then suspend
for a full cycle (30 min Zeus, 40 min Sality).  Crawlers chasing
coverage fire repeated requests at the same bot in quick succession.
The rule looks for bursts *within one sensor's log*: several requests
from the same source inside a small fraction of the suspend cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class HardHitterRule:
    """Flags sources bursting requests at a single observer.

    A source is a hard hitter if any sliding window of
    ``burst_size`` consecutive requests (to one sensor) spans less
    than ``burst_window_fraction`` of the family's suspend cycle.
    """

    suspend_cycle: float
    burst_size: int = 3
    burst_window_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.suspend_cycle <= 0:
            raise ValueError("suspend_cycle must be positive")
        if self.burst_size < 2:
            raise ValueError("burst_size must be >= 2")

    @property
    def burst_window(self) -> float:
        return self.suspend_cycle * self.burst_window_fraction

    def is_hard_hitter(self, request_times: Sequence[float]) -> bool:
        """``request_times``: timestamps of one source's requests at
        one sensor (any order)."""
        if len(request_times) < self.burst_size:
            return False
        times = sorted(request_times)
        window = self.burst_window
        span = self.burst_size - 1
        return any(
            times[i + span] - times[i] < window for i in range(len(times) - span)
        )

    def median_gap(self, request_times: Sequence[float]) -> float:
        """Median inter-request gap, a secondary diagnostic."""
        if len(request_times) < 2:
            return float("inf")
        times = sorted(request_times)
        gaps = sorted(b - a for a, b in zip(times, times[1:]))
        return gaps[len(gaps) // 2]
