"""Protocol-specific anomaly detection (paper Sections 4.1 and 4.2).

Sensors log every inbound message field-by-field; these detectors scan
those logs, per source IP, for the defect classes of Tables 2 and 3:

* :mod:`repro.core.anomaly.entropy` -- entropy estimation helpers and
  low-entropy field detection (Section 4.1.2).
* :mod:`repro.core.anomaly.range_rules` -- static/constrained values in
  fields that should be randomized, and random values in fields that
  should be stable (Section 4.1.1).
* :mod:`repro.core.anomaly.encryption` -- invalid-encryption detection
  (Section 4.1.3).
* :mod:`repro.core.anomaly.logic` -- protocol-logic anomalies: bare
  peer-list-request streams, abnormal lookup keys, stale version
  numbers (Section 4.1.4).
* :mod:`repro.core.anomaly.frequency` -- hard-hitter detection
  (Section 4.1.5).
* :mod:`repro.core.anomaly.report` -- the analyzer pipelines that merge
  sensor logs, apply every rule, and emit the per-crawler defect
  matrices that regenerate Tables 2 and 3.
"""

from repro.core.anomaly.report import (
    CrawlerFinding,
    SalityAnomalyAnalyzer,
    SalityThresholds,
    ZeusAnomalyAnalyzer,
    ZeusThresholds,
)

__all__ = [
    "CrawlerFinding",
    "SalityAnomalyAnalyzer",
    "SalityThresholds",
    "ZeusAnomalyAnalyzer",
    "ZeusThresholds",
]
