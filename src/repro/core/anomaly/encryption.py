"""Invalid-encryption detection (Section 4.1.3).

7 of the 21 in-the-wild Zeus crawlers interleaved correctly encoded
messages with ones encrypted under the wrong per-bot key (they lost
track of which ID belongs to which bot).  At the sensor, those appear
as undecryptable blobs from a source that *also* sends valid traffic
-- persistent garbage from an IP that never decodes is just noise, not
a broken crawler.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EncryptionRule:
    """Flags sources interspersing valid and undecryptable messages."""

    min_invalid: int = 2
    min_valid: int = 1

    def is_anomalous(self, valid_count: int, invalid_count: int) -> bool:
        return invalid_count >= self.min_invalid and valid_count >= self.min_valid
