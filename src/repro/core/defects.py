"""Crawler defect profiles and defect-faithful message forgers.

Section 4.1 of the paper classifies the shortcomings of in-the-wild
crawlers into range anomalies, entropy anomalies, invalid encryption,
protocol-logic anomalies, and request-frequency anomalies.  A
:class:`ZeusDefectProfile` / :class:`SalityDefectProfile` records which
of those defects one crawler exhibits (one profile per column of
Tables 2/3), and the forger classes construct wire messages that
actually *show* those defects, so the anomaly detectors in
:mod:`repro.core.anomaly` have real bytes to find them in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.botnets.sality import protocol as sality_protocol
from repro.botnets.sality.protocol import SalityMessage
from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.protocol import MessageType, ZeusMessage


@dataclass(frozen=True)
class ZeusDefectProfile:
    """Which Table 3 defects one Zeus crawler exhibits.

    ``coverage`` is the fraction of the sensor population the crawler
    reached in the paper's measurement (the Table 3 bottom row), used
    by the workload generators to scale each crawler's reach.
    """

    name: str
    rnd_range: bool = False        # static/constrained random byte
    ttl_range: bool = False        # static/constrained TTL
    lop_range: bool = False        # constrained padding length
    session_range: bool = False    # static or small-set session IDs
    session_entropy: bool = False  # low-entropy session IDs
    random_source: bool = False    # fresh random source ID per message
    source_entropy: bool = False   # ASCII/low-entropy source ID
    padding_entropy: bool = False  # non-random padding bytes
    abnormal_lookup: bool = False  # randomized lookup key
    hard_hitter: bool = False      # rapid repeated peer-list requests
    protocol_logic: bool = False   # peer-list requests only
    encryption: bool = False       # occasionally wrong per-bot keys
    coverage: float = 1.0

    def defect_names(self) -> List[str]:
        """The active defect flags, in Table 3 row order."""
        rows = (
            "rnd_range", "ttl_range", "lop_range", "session_range",
            "session_entropy", "random_source", "source_entropy",
            "padding_entropy", "abnormal_lookup", "hard_hitter",
            "protocol_logic", "encryption",
        )
        return [row for row in rows if getattr(self, row)]


@dataclass(frozen=True)
class SalityDefectProfile:
    """Which Table 2 defects one Sality crawler exhibits."""

    name: str
    random_id: bool = False        # bot ID changes between messages
    version: bool = False          # wrong minor version number
    lop_range: bool = False        # fixed/constrained padding length
    port_range: bool = False       # fixed source port
    hard_hitter: bool = False      # rapid repeated peer-list requests
    protocol_logic: bool = False   # repeated PLRs, no URL packs
    encryption: bool = False       # malformed encryption (unused in the
    #   wild: the paper found none; kept for completeness)
    coverage: float = 1.0

    def defect_names(self) -> List[str]:
        rows = (
            "random_id", "version", "lop_range", "port_range",
            "hard_hitter", "protocol_logic", "encryption",
        )
        return [row for row in rows if getattr(self, row)]


# A "clean" profile: what a protocol-adherent stealthy crawler emits.
CLEAN_ZEUS = ZeusDefectProfile(name="clean")
CLEAN_SALITY = SalityDefectProfile(name="clean")

# Low-entropy source IDs seen in the wild carried company names in
# ASCII (Section 4.1.2); the forger reproduces the pattern.
_ASCII_ID_PREFIX = b"ACME-MALWARE-LAB-"


class ZeusForger:
    """Builds Zeus messages exhibiting a given defect profile.

    A clean profile yields byte-for-byte normal bot behaviour; every
    enabled defect perturbs exactly the fields Section 4.1 describes.
    """

    def __init__(self, profile: ZeusDefectProfile, rng: random.Random) -> None:
        self.profile = profile
        self.rng = rng
        self.base_source_id = self._make_source_id()
        self._session_pool = [zeus_protocol.random_id(rng) for _ in range(3)]
        self._message_counter = 0
        self._last_recipient_id: Optional[bytes] = None

    def _make_source_id(self) -> bytes:
        if self.profile.source_entropy:
            suffix = str(self.rng.randrange(100)).zfill(2).encode()
            raw = _ASCII_ID_PREFIX + suffix
            return raw.ljust(zeus_protocol.ID_LEN, b"\x00")[: zeus_protocol.ID_LEN]
        return zeus_protocol.random_id(self.rng)

    def source_id(self) -> bytes:
        if self.profile.random_source:
            # Fresh random ID per message: the ">1000 source IDs per
            # IP" anomaly.
            return zeus_protocol.random_id(self.rng)
        return self.base_source_id

    def session_id(self) -> bytes:
        if self.profile.session_entropy:
            raw = b"SESSION-%08d" % self._message_counter
            return raw.ljust(zeus_protocol.ID_LEN, b"\x20")[: zeus_protocol.ID_LEN]
        if self.profile.session_range:
            return self.rng.choice(self._session_pool)
        return zeus_protocol.random_id(self.rng)

    def lookup_key(self, target_id: bytes) -> bytes:
        if self.profile.abnormal_lookup:
            return zeus_protocol.random_id(self.rng)
        return target_id  # normal semantics: the remote peer's ID

    def _header_fields(self) -> Tuple[int, int, bytes]:
        rnd = 0x00 if self.profile.rnd_range else self.rng.randrange(256)
        ttl = 0x40 if self.profile.ttl_range else self.rng.randrange(256)
        if self.profile.lop_range:
            lop = 0  # padding stripped to save bandwidth
        else:
            lop = self.rng.randrange(0, zeus_protocol.MAX_LOP)
        if self.profile.padding_entropy:
            padding = b"\x00" * lop
        else:
            padding = bytes(self.rng.getrandbits(8) for _ in range(lop))
        return rnd, ttl, padding

    def build(
        self,
        msg_type: int,
        payload: bytes = b"",
        session_id: Optional[bytes] = None,
    ) -> ZeusMessage:
        self._message_counter += 1
        rnd, ttl, padding = self._header_fields()
        return ZeusMessage(
            msg_type=msg_type,
            session_id=session_id if session_id is not None else self.session_id(),
            source_id=self.source_id(),
            payload=payload,
            random_byte=rnd,
            ttl=ttl,
            padding=padding,
        )

    def encryption_key(self, recipient_id: bytes) -> bytes:
        """The key this crawler uses towards ``recipient_id``.

        With the encryption defect, the crawler sporadically loses
        track of per-bot IDs and reuses the *previous* target's key
        (Section 4.1.3: "crawlers ... do not correctly keep track of
        the identifier of each bot they find").
        """
        key = recipient_id
        if (
            self.profile.encryption
            and self._last_recipient_id is not None
            and self._last_recipient_id != recipient_id
            and self.rng.random() < 0.3
        ):
            key = self._last_recipient_id
        self._last_recipient_id = recipient_id
        return key

    def encrypt(self, message: ZeusMessage, recipient_id: bytes) -> bytes:
        return zeus_protocol.encrypt_message(message, self.encryption_key(recipient_id))


class SalityForger:
    """Builds Sality packets exhibiting a given defect profile."""

    # In-the-wild crawlers used a stale minor version (Table 2: only 2
    # of 11 used a valid one).
    STALE_MINOR_VERSION = 4

    def __init__(self, profile: SalityDefectProfile, rng: random.Random) -> None:
        self.profile = profile
        self.rng = rng
        self.base_bot_id = rng.getrandbits(32)

    def bot_id(self) -> int:
        if self.profile.random_id:
            return self.rng.getrandbits(32)
        return self.base_bot_id

    def minor_version(self) -> int:
        if self.profile.version:
            return self.STALE_MINOR_VERSION
        return sality_protocol.CURRENT_MINOR_VERSION

    def padding(self) -> bytes:
        if self.profile.lop_range:
            return b""  # fixed zero-length padding
        length = self.rng.randrange(0, sality_protocol.MAX_PADDING + 1)
        return bytes(self.rng.getrandbits(8) for _ in range(length))

    def build(
        self,
        command: int,
        payload: bytes = b"",
        nonce: Optional[int] = None,
    ) -> SalityMessage:
        return SalityMessage(
            command=command,
            bot_id=self.bot_id(),
            nonce=nonce if nonce is not None else self.rng.getrandbits(32),
            payload=payload,
            minor_version=self.minor_version(),
            padding=self.padding(),
        )

    def encode(self, message: SalityMessage) -> bytes:
        wire = sality_protocol.encode_packet(message)
        if self.profile.encryption and self.rng.random() < 0.3:
            # Garble the encrypted body (wrong key material).
            body = bytearray(wire)
            body[4] ^= 0xA5
            wire = bytes(body)
        return wire
