"""Per-point health indicators merged into sweep aggregation.

When a sweep runs with metrics capture, every
:class:`~repro.runner.sweep.PointRecord` carries its own metrics
snapshot.  This module folds those into the same derived-indicator
vocabulary the trace analyzer uses
(:func:`repro.obs.analyze.snapshot_indicators`): per-point scalar
indicators, a whole-sweep merged view, and a coverage summary of which
points carried metrics at all -- mixed sweeps (some points captured,
some not, e.g. records merged from pre-metrics runs) are first-class.

Indicators are observability metadata: they are derived from
``record.metrics`` only and can never reach ``record.values`` or an
exhibit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.analyze.health import snapshot_indicators
from repro.obs.metrics import merge_snapshots
from repro.runner.sweep import PointRecord, SweepResult

#: Indicators surfaced in the rendered table (when present).
KEY_INDICATORS = (
    "net.sent",
    "net.delivered",
    "net.dropped.loss",
    "crawler.requests_issued",
    "crawler.responses",
    "crawler.requests_expired",
    "crawler.retries",
    "sensor.observations",
    "detect.rounds",
    "detect.gossip_messages",
)


def point_indicators(record: PointRecord) -> Optional[Dict[str, float]]:
    """One point's flat scalar indicators, or None when the record
    carries no metrics snapshot (pre-capture records merge cleanly)."""
    if record.metrics is None:
        return None
    return snapshot_indicators(record.metrics)


def sweep_health(result: SweepResult, fleet: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The sweep's merged health view.

    ``indicators`` is derived from the merged snapshot (counters
    summed across points, gauges maxed -- the
    :func:`~repro.obs.metrics.merge_snapshots` contract), so it is
    independent of worker count and point order.  ``per_point`` keeps
    the per-index indicator mappings (None for uncaptured points) for
    drill-down.

    ``fleet`` (a dispatcher's
    :meth:`~repro.runner.dispatch.DispatchExecutor.fleet_summary`)
    is embedded verbatim when given, so a dispatched sweep's health
    report also names which hosts did what and their last telemetry.
    """
    captured = [record for record in result.records if record.metrics is not None]
    merged = merge_snapshots(record.metrics for record in captured)
    per_point: Dict[str, Optional[Dict[str, float]]] = {
        str(record.index): point_indicators(record) for record in result.records
    }
    doc = {
        "schema": "repro-sweep-health/1",
        "sweep": result.spec.name,
        "points": len(result.records),
        "points_with_metrics": len(captured),
        "indicators": dict(sorted(snapshot_indicators(merged).items())),
        "per_point": per_point,
        "execution": {
            "workers": result.metrics.workers,
            "wall_time": round(result.metrics.wall_time, 4),
            "retries": result.metrics.retries,
            "utilization": round(result.metrics.utilization(), 4),
        },
    }
    if fleet is not None:
        doc["fleet"] = fleet
    return doc


def render_sweep_health(result: SweepResult, fleet: Optional[Dict[str, Any]] = None) -> str:
    """Terminal-friendly sweep health: coverage of capture, the key
    merged indicators, the widest per-point spread, and (for
    dispatched sweeps) the per-host fleet section."""
    health = sweep_health(result, fleet=fleet)
    lines: List[str] = [
        f"sweep health ({health['sweep']}): "
        f"{health['points_with_metrics']}/{health['points']} points captured metrics"
    ]
    if health["points_with_metrics"]:
        indicators = health["indicators"]
        shown = [key for key in KEY_INDICATORS if key in indicators]
        width = max((len(key) for key in shown), default=0)
        for key in shown:
            lines.append(f"  {key:<{width}}  {indicators[key]:g}")
        spread = _widest_spread(health["per_point"])
        if spread is not None:
            key, low, high = spread
            lines.append(f"  widest per-point spread: {key} ({low:g} .. {high:g})")
    else:
        lines.append("  (run with --metrics/capture_metrics=True to populate indicators)")
    if fleet is not None:
        from repro.obs.telemetry import render_fleet

        lines.append(render_fleet(fleet))
    return "\n".join(lines)


def _widest_spread(
    per_point: Dict[str, Optional[Dict[str, float]]]
) -> Optional[tuple]:
    """The indicator with the largest relative min..max spread across
    captured points -- the first place to look when one point behaves
    unlike the rest."""
    ranges: Dict[str, List[float]] = {}
    for indicators in per_point.values():
        if not indicators:
            continue
        for key, value in indicators.items():
            ranges.setdefault(key, []).append(value)
    best: Optional[tuple] = None
    best_ratio = 0.0
    for key, values in sorted(ranges.items()):
        if len(values) < 2:
            continue
        low, high = min(values), max(values)
        if high <= low:
            continue
        ratio = (high - low) / max(abs(high), abs(low), 1e-12)
        if ratio > best_ratio:
            best_ratio = ratio
            best = (key, low, high)
    return best
