"""Sharded experiment runner.

Fans parameter sweeps (the work lists behind Figures 2-4 and Table 4)
out across a ``multiprocessing`` pool -- or runs them serially through
the identical API -- with per-point deterministic seed derivation, so
aggregated results are bit-identical regardless of worker count or
scheduling order.  See DESIGN notes in :mod:`repro.runner.sweep`.

Quick use::

    from repro.runner import build_sweep, run_sweep, render_result

    result = run_sweep(build_sweep("fig2", root_seed=0), workers=4)
    print(render_result(result))
"""

from repro.runner.aggregate import (
    AGGREGATORS,
    coverage_relative,
    coverage_series,
    fig2_grid,
    fig2_series,
    render_fig2_sweep,
    render_fig3_sweep,
    render_result,
)
from repro.runner.dispatch import (
    DispatchExecutor,
    HostFault,
    HostFaultPlan,
    LocalHostPool,
    SubprocessHostPool,
    dispatch_sweep,
    parse_host_faults,
    sample_fault_plan,
)
from repro.runner.executors import (
    ProcessExecutor,
    SerialExecutor,
    SweepExecutionError,
    run_sweep,
)
from repro.runner.health import (
    point_indicators,
    render_sweep_health,
    sweep_health,
)
from repro.runner.progress import ConsoleProgress, ProgressEvent
from repro.runner.registry import register_point, registered_points, resolve_point
from repro.runner.sweep import (
    PointRecord,
    SweepMetrics,
    SweepPoint,
    SweepResult,
    SweepSpec,
    make_points,
    merge_records,
    point_seed,
)
from repro.runner.sweeps import SWEEPS, build_sweep

# Importing the library registers the paper's point functions.
from repro.runner import points as _points  # noqa: F401

__all__ = [
    "AGGREGATORS",
    "ConsoleProgress",
    "coverage_relative",
    "coverage_series",
    "dispatch_sweep",
    "DispatchExecutor",
    "HostFault",
    "HostFaultPlan",
    "LocalHostPool",
    "parse_host_faults",
    "sample_fault_plan",
    "SubprocessHostPool",
    "fig2_grid",
    "fig2_series",
    "render_fig2_sweep",
    "render_fig3_sweep",
    "PointRecord",
    "ProcessExecutor",
    "ProgressEvent",
    "SerialExecutor",
    "SweepExecutionError",
    "SweepMetrics",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "SWEEPS",
    "build_sweep",
    "make_points",
    "merge_records",
    "point_indicators",
    "point_seed",
    "register_point",
    "registered_points",
    "render_result",
    "render_sweep_health",
    "resolve_point",
    "run_sweep",
    "sweep_health",
]
