"""Library of registered point functions for the paper's sweeps.

Two families of work are fanned out here:

* **Detection cells** (Figure 2 / Table 4 style): every cell replays
  *the same* logged capture under one (threshold, contact-ratio)
  configuration -- the paper's Section 6.1 methodology, which pins
  measured differences on the parameters rather than churn.  The
  capture is deterministic given its ``capture_seed`` parameter, so
  each worker process rebuilds it once and memoizes it; cells then
  shard freely.

* **Ratio crawls** (Figure 3 / Table 4 C-row style): every point runs
  a full simulation with one ratio-limited crawler.  All points share
  one ``capture_seed``, so every crawl faces a *bit-identical* botnet
  (same churn, same topology) -- the sharded equivalent of the paper
  running all crawls "in parallel ... to ensure that performance
  differences did not result from churn", with the added isolation
  that crawls cannot perturb each other through shared peer lists.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Set, Tuple

from repro.core.crawler import SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.detection import DetectionConfig, SensorLogDataset
from repro.core.detection.offline import evaluate_detection
from repro.core.stealth import StealthPolicy
from repro.runner.registry import register_point
from repro.sim.clock import HOUR
from repro.workloads.crawler_profiles import ZEUS_CRAWLERS
from repro.workloads.population import sality_config, zeus_config
from repro.workloads.scenarios import (
    build_sality_scenario,
    build_zeus_scenario,
    crawler_endpoint,
    launch_zeus_fleet,
)

# -- shared capture, memoized per process ---------------------------------

#: (capture kind, canonical params) -> (dataset, ground-truth crawler IPs).
#: Per-process: each pool worker pays one capture build, then serves
#: every detection cell sharded to it from memory.
_CAPTURE_CACHE: Dict[Tuple[Any, ...], Tuple[SensorLogDataset, Set[int]]] = {}

_CAPTURE_KEYS = (
    "scale",
    "capture_seed",
    "sensors",
    "announce_hours",
    "measure_hours",
    "fleet_size",
    "truth_min_coverage",
)


def _zeus_capture(params: Mapping[str, Any]) -> Tuple[SensorLogDataset, Set[int]]:
    key = ("zeus",) + tuple(params[k] for k in _CAPTURE_KEYS) + (
        params.get("topology"),
    )
    cached = _CAPTURE_CACHE.get(key)
    if cached is not None:
        return cached
    config = zeus_config(
        params["scale"],
        master_seed=params["capture_seed"],
        topology=params.get("topology"),
    )
    scenario = build_zeus_scenario(
        config,
        sensor_count=params["sensors"],
        announce_hours=params["announce_hours"],
    )
    profiles = ZEUS_CRAWLERS[: params["fleet_size"]]
    launch_zeus_fleet(scenario, profiles)
    scenario.run_for(params["measure_hours"] * HOUR)
    dataset = SensorLogDataset.from_zeus_sensors(
        scenario.sensors, since=scenario.measurement_start
    )
    truth = {
        crawler.endpoint.ip
        for crawler in scenario.crawlers
        if crawler.profile.coverage >= params["truth_min_coverage"]
    }
    _CAPTURE_CACHE[key] = (dataset, truth)
    return dataset, truth


def clear_capture_cache() -> None:
    """Drop memoized captures (tests use this to measure rebuilds)."""
    _CAPTURE_CACHE.clear()


@register_point("zeus-detection-cell")
def zeus_detection_cell(params: Mapping[str, Any], seed: int) -> Mapping[str, Any]:
    """One Figure 2 / Table 4 cell: detector accuracy at one
    (threshold, contact ratio) over the shared capture.

    Grouping randomness comes from ``detection_seed`` -- one value for
    the whole sweep, so cells differ only in their parameters (the
    benchmark's ``detection_grid`` does the same).  The per-point
    ``seed`` is the fallback when a sweep wants independent grouping.
    """
    dataset, truth = _zeus_capture(params)
    config = DetectionConfig(
        group_bits=params["group_bits"],
        threshold=params["threshold"],
        aggregation_prefix=params.get("aggregation_prefix", 32),
    )
    result = evaluate_detection(
        dataset,
        truth,
        config,
        random.Random(params.get("detection_seed", seed)),
        contact_ratio=params["ratio"],
    )
    return {
        "threshold": params["threshold"],
        "ratio": params["ratio"],
        "detection_rate": result.detection_rate,
        "false_positives": result.false_positives,
        "detected": len(result.detected_crawlers),
        "truth": len(truth),
    }


# -- per-point ratio crawls -----------------------------------------------


def _series_as_lists(series) -> list:
    return [[float(time), int(count)] for time, count in series]


@register_point("zeus-ratio-crawl")
def zeus_ratio_crawl(params: Mapping[str, Any], seed: int) -> Mapping[str, Any]:
    """One Figure 3a point: a 1/ratio-limited Zeus crawl against the
    sweep's shared-seed botnet."""
    scenario = build_zeus_scenario(
        zeus_config(
            params["scale"],
            master_seed=params["capture_seed"],
            topology=params.get("topology"),
        ),
        sensor_count=params["sensors"],
        announce_hours=params["announce_hours"],
    )
    net = scenario.net
    ratio = params["ratio"]
    crawler = ZeusCrawler(
        name=f"ratio-1/{ratio}",
        endpoint=crawler_endpoint(0),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(seed),
        policy=StealthPolicy(
            contact_ratio=ratio,
            per_target_interval=params.get("per_target_interval", 15.0),
            requests_per_target=params.get("requests_per_target", 4),
        ),
        profile=ZeusDefectProfile(name=f"r{ratio}"),
    )
    crawler.start(net.bootstrap_sample(params.get("bootstrap", 10), seed=params["capture_seed"]))
    scenario.run_for(params["hours"] * HOUR)
    report = crawler.report
    until = net.scheduler.now
    return {
        "ratio": ratio,
        "distinct_ips": report.distinct_ips,
        "requests_sent": report.requests_sent,
        "series": _series_as_lists(
            report.coverage_series(until=until, bucket=params.get("bucket", 2 * HOUR))
        ),
    }


@register_point("sality-ratio-crawl")
def sality_ratio_crawl(params: Mapping[str, Any], seed: int) -> Mapping[str, Any]:
    """One Figure 3b point: a 1/ratio-limited Sality crawl against the
    sweep's shared-seed botnet."""
    scenario = build_sality_scenario(
        sality_config(
            params["scale"],
            master_seed=params["capture_seed"],
            topology=params.get("topology"),
        ),
        sensor_count=params["sensors"],
        announce_hours=params["announce_hours"],
    )
    net = scenario.net
    ratio = params["ratio"]
    crawler = SalityCrawler(
        name=f"ratio-1/{ratio}",
        endpoint=crawler_endpoint(0),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(seed),
        policy=StealthPolicy(
            contact_ratio=ratio,
            per_target_interval=params.get("per_target_interval", 60.0),
            requests_per_target=params.get("requests_per_target", 40),
        ),
        profile=SalityDefectProfile(name=f"r{ratio}"),
    )
    crawler.start(net.bootstrap_sample(params.get("bootstrap", 10), seed=params["capture_seed"]))
    scenario.run_for(params["hours"] * HOUR)
    report = crawler.report
    until = net.scheduler.now
    return {
        "ratio": ratio,
        "distinct_ips": report.distinct_ips,
        "requests_sent": report.requests_sent,
        "series": _series_as_lists(
            report.coverage_series(until=until, bucket=params.get("bucket", 2 * HOUR))
        ),
    }


@register_point("echo")
def echo(params: Mapping[str, Any], seed: int) -> Mapping[str, Any]:
    """Diagnostic point: returns its inputs (CLI smoke tests)."""
    return {"seed": seed, **dict(params)}
