"""Progress hooks for sweep execution.

Executors emit :class:`ProgressEvent` objects to an optional callback;
:class:`ConsoleProgress` is the CLI's line-per-point renderer.  Hooks
are observability only -- they never influence results.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, TextIO

from repro.runner.sweep import PointRecord, SweepPoint

#: Event kinds, in lifecycle order.
SWEEP_START = "sweep-start"
POINT_DONE = "point-done"
POINT_RETRY = "point-retry"
POOL_RESTART = "pool-restart"
#: Dispatcher-only kinds: a plan fault fired; a host was declared
#: lost (heartbeat budget exhausted) and its lease re-issued; a host
#: reported a telemetry snapshot (advisory, for live fleet views).
HOST_FAULT = "host-fault"
HOST_LOST = "host-lost"
HOST_TELEMETRY = "host-telemetry"
SWEEP_DONE = "sweep-done"


@dataclass(frozen=True)
class ProgressEvent:
    kind: str
    completed: int
    total: int
    point: Optional[SweepPoint] = None
    record: Optional[PointRecord] = None
    detail: str = ""
    #: Wall-clock seconds since the sweep started, at emission time.
    elapsed: float = 0.0
    #: Dispatcher events only: the host the event concerns, and its
    #: latest advisory telemetry snapshot (see HOST_TELEMETRY).
    host: Optional[int] = None
    telemetry: Optional[Mapping[str, Any]] = None


ProgressHook = Callable[[ProgressEvent], Any]


class ConsoleProgress:
    """Print one line per lifecycle event to ``stream`` (stderr by
    default so piped sweep output stays clean)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: ProgressEvent) -> None:
        if event.kind == HOST_TELEMETRY:
            # Advisory fleet chatter; the live fleet view renders it,
            # the line-per-point console stays quiet.
            return
        if event.kind == SWEEP_START:
            line = f"sweep: {event.total} points"
        elif event.kind == POINT_DONE and event.record is not None:
            line = (
                f"[{event.completed}/{event.total}] "
                f"{event.point.label() if event.point else event.record.point} "
                f"({event.record.wall_time:.2f}s, t+{event.elapsed:.2f}s"
                f"{self._pace(event)})"
            )
        elif event.kind == POINT_RETRY and event.point is not None:
            line = f"retry {event.point.label()}: {event.detail}"
        elif event.kind == POOL_RESTART:
            line = f"worker pool restarted: {event.detail}"
        elif event.kind == HOST_FAULT:
            line = f"host fault injected: {event.detail}"
        elif event.kind == HOST_LOST:
            line = f"host lost: {event.detail}"
        elif event.kind == SWEEP_DONE:
            line = f"sweep done: {event.detail}"
        else:  # pragma: no cover - future event kinds degrade gracefully
            line = f"{event.kind}: {event.detail}"
        print(line, file=self.stream)
        self.stream.flush()

    @staticmethod
    def _pace(event: ProgressEvent) -> str:
        """Running completion rate and ETA, derived purely from the
        event's own ``completed``/``elapsed`` -- no hook state."""
        if event.elapsed <= 0 or event.completed <= 0:
            return ""
        rate = event.completed / event.elapsed
        remaining = max(0, event.total - event.completed)
        eta = remaining / rate
        return f", {rate:.1f} pts/s, eta {eta:.0f}s"
