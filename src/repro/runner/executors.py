"""Sweep executors: serial reference and sharded multiprocessing.

Both executors expose the same ``run(spec, progress=...)`` API and are
interchangeable by construction: a point's record depends only on its
``(point, params, seed)`` triple (see :mod:`repro.runner.sweep`), and
the aggregation gate reorders records by point index.  The serial
executor is the cheap path for tests and small runs; the process
executor shards points across a worker pool and adds bounded-retry
handling for failing points and crashed workers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import multiprocessing

from repro.runner.progress import (
    POINT_DONE,
    POINT_RETRY,
    POOL_RESTART,
    SWEEP_DONE,
    SWEEP_START,
    ProgressEvent,
    ProgressHook,
)
from repro.runner.registry import resolve_point
from repro.runner.sweep import (
    PointRecord,
    SweepMetrics,
    SweepPoint,
    SweepResult,
    SweepSpec,
    merge_records,
)

#: One bundled point execution request; plain data so it pickles.
#: The trailing flag asks the executing process to capture a per-point
#: metrics snapshot into the record.
_Task = Tuple[str, Dict[str, Any], int, int, int, bool]


class SweepExecutionError(RuntimeError):
    """A point kept failing after its retry budget was spent.

    ``indices`` names the sweep point indices that could not be
    completed, so callers (and CI logs) can identify the failing cells
    without parsing the message.
    """

    def __init__(self, message: str, indices: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.indices: Tuple[int, ...] = tuple(indices)


def _execute_point(task: _Task) -> PointRecord:
    """Run one point in the current process (worker or serial caller).

    Top-level so the parallel executor can ship it to workers; the
    record's ``values`` depend only on (point, params, seed) while
    ``wall_time``/``worker``/``attempts``/``metrics`` are
    observability metadata.  Metrics capture activates a fresh
    per-point registry around the point function (leaving any ambient
    tracer in place), so snapshots never mix across points or workers.
    """
    point_name, params, seed, index, attempt, capture = task
    fn = resolve_point(point_name)
    start = time.perf_counter()
    snapshot = None
    if capture:
        from repro.obs import runtime as obs_runtime
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        with obs_runtime.activated(metrics=registry):
            values = fn(params, seed)
        snapshot = registry.snapshot()
    else:
        values = fn(params, seed)
    return PointRecord(
        index=index,
        point=point_name,
        params=params,
        seed=seed,
        values=dict(values),
        wall_time=time.perf_counter() - start,
        worker=f"pid:{os.getpid()}",
        attempts=attempt,
        metrics=snapshot,
    )


def _task_for(point: SweepPoint, attempt: int, capture: bool = False) -> _Task:
    return (point.point, dict(point.params), point.seed, point.index, attempt, capture)


class _ExecutorBase:
    """Shared retry bookkeeping and progress emission."""

    def __init__(self, max_retries: int = 2, capture_metrics: bool = False) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.capture_metrics = capture_metrics

    @staticmethod
    def _emit(progress: Optional[ProgressHook], event: ProgressEvent) -> None:
        if progress is not None:
            progress(event)

    def _attempts_allowed(self) -> int:
        return self.max_retries + 1

    def _finish(
        self,
        spec: SweepSpec,
        records: Mapping[int, PointRecord],
        metrics: SweepMetrics,
        started: float,
        progress: Optional[ProgressHook],
    ) -> SweepResult:
        metrics.wall_time = time.perf_counter() - started
        merged = merge_records(list(records.values()), len(spec))
        self._emit(
            progress,
            ProgressEvent(
                kind=SWEEP_DONE,
                completed=metrics.points_completed,
                total=metrics.points_total,
                detail=metrics.summary(),
                elapsed=metrics.wall_time,
            ),
        )
        return SweepResult(spec=spec, records=merged, metrics=metrics)


class SerialExecutor(_ExecutorBase):
    """In-process reference executor: one point at a time, in index
    order.  Supports every registered point function, including
    closures tests or benchmarks register locally."""

    workers = 1

    def run(self, spec: SweepSpec, progress: Optional[ProgressHook] = None) -> SweepResult:
        started = time.perf_counter()
        metrics = SweepMetrics(workers=1, points_total=len(spec))
        self._emit(progress, ProgressEvent(SWEEP_START, 0, len(spec)))
        records: Dict[int, PointRecord] = {}
        for point in spec.points:
            for attempt in range(1, self._attempts_allowed() + 1):
                try:
                    record = _execute_point(
                        _task_for(point, attempt, self.capture_metrics)
                    )
                except Exception as exc:
                    if attempt >= self._attempts_allowed():
                        raise SweepExecutionError(
                            f"point {point.label()} failed after {attempt} attempts",
                            indices=(point.index,),
                        ) from exc
                    metrics.retries += 1
                    self._emit(
                        progress,
                        ProgressEvent(
                            POINT_RETRY,
                            metrics.points_completed,
                            len(spec),
                            point=point,
                            detail=repr(exc),
                            elapsed=time.perf_counter() - started,
                        ),
                    )
                else:
                    records[point.index] = record
                    metrics.points_completed += 1
                    metrics.point_wall_times.append(record.wall_time)
                    self._emit(
                        progress,
                        ProgressEvent(
                            POINT_DONE,
                            metrics.points_completed,
                            len(spec),
                            point=point,
                            record=record,
                            elapsed=time.perf_counter() - started,
                        ),
                    )
                    break
        return self._finish(spec, records, metrics, started, progress)


class ProcessExecutor(_ExecutorBase):
    """Shard points across a ``multiprocessing`` pool.

    Failure handling is bounded-retry at two levels: a point whose
    function raises is resubmitted up to ``max_retries`` times, and a
    worker crash hard enough to break the pool (``os._exit``, signal)
    triggers a pool restart with every unfinished point resubmitted.
    Either way a point that keeps failing surfaces as
    :class:`SweepExecutionError` instead of hanging the sweep.

    The default ``fork`` start method (on platforms that support it)
    keeps locally registered point functions visible to workers; pass
    ``mp_context="spawn"`` for importable-only registries.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_retries: int = 2,
        mp_context: Optional[str] = None,
        capture_metrics: bool = False,
    ) -> None:
        super().__init__(max_retries=max_retries, capture_metrics=capture_metrics)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._mp_context = mp_context

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(self._mp_context),
        )

    def run(self, spec: SweepSpec, progress: Optional[ProgressHook] = None) -> SweepResult:
        started = time.perf_counter()
        metrics = SweepMetrics(workers=self.workers, points_total=len(spec))
        self._emit(progress, ProgressEvent(SWEEP_START, 0, len(spec)))
        records: Dict[int, PointRecord] = {}
        attempts: Dict[int, int] = {point.index: 0 for point in spec.points}
        pending: List[SweepPoint] = list(spec.points)
        pool = self._new_pool()
        try:
            while pending:
                futures = {}
                for point in pending:
                    attempts[point.index] += 1
                    futures[
                        pool.submit(
                            _task_wrapper,
                            _task_for(point, attempts[point.index], self.capture_metrics),
                        )
                    ] = point
                retry_round: List[SweepPoint] = []
                pool_broken: Optional[BaseException] = None
                for future in as_completed(futures):
                    point = futures[future]
                    try:
                        record = future.result()
                    except BrokenExecutor as exc:
                        # The whole pool died; every in-flight point
                        # lands here.  Resubmit survivors, bounded by
                        # the same per-point attempt budget.
                        pool_broken = exc
                        if attempts[point.index] >= self._attempts_allowed():
                            raise SweepExecutionError(
                                f"point {point.label()} kept crashing its worker "
                                f"({attempts[point.index]} attempts)",
                                indices=(point.index,),
                            ) from exc
                        retry_round.append(point)
                    except Exception as exc:
                        if attempts[point.index] >= self._attempts_allowed():
                            raise SweepExecutionError(
                                f"point {point.label()} failed after "
                                f"{attempts[point.index]} attempts",
                                indices=(point.index,),
                            ) from exc
                        metrics.retries += 1
                        self._emit(
                            progress,
                            ProgressEvent(
                                POINT_RETRY,
                                metrics.points_completed,
                                len(spec),
                                point=point,
                                detail=repr(exc),
                                elapsed=time.perf_counter() - started,
                            ),
                        )
                        retry_round.append(point)
                    else:
                        records[point.index] = record
                        metrics.points_completed += 1
                        metrics.point_wall_times.append(record.wall_time)
                        self._emit(
                            progress,
                            ProgressEvent(
                                POINT_DONE,
                                metrics.points_completed,
                                len(spec),
                                point=point,
                                record=record,
                                elapsed=time.perf_counter() - started,
                            ),
                        )
                if pool_broken is not None:
                    pool.shutdown(wait=True, cancel_futures=True)
                    pool = self._new_pool()
                    metrics.pool_restarts += 1
                    self._emit(
                        progress,
                        ProgressEvent(
                            POOL_RESTART,
                            metrics.points_completed,
                            len(spec),
                            detail=repr(pool_broken),
                            elapsed=time.perf_counter() - started,
                        ),
                    )
                pending = sorted(retry_round, key=lambda p: p.index)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return self._finish(spec, records, metrics, started, progress)


def _task_wrapper(task: _Task) -> PointRecord:
    """Worker-side entry point (separate name so tracebacks read
    clearly in retry diagnostics)."""
    return _execute_point(task)


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    max_retries: int = 2,
    progress: Optional[ProgressHook] = None,
    mp_context: Optional[str] = None,
    capture_metrics: bool = False,
) -> SweepResult:
    """Run ``spec`` with the executor matching ``workers``: serial for
    1 (no process machinery at all), sharded otherwise.

    ``capture_metrics`` snapshots a fresh per-point metrics registry
    into each record (see :meth:`SweepResult.merged_metrics`); it is
    observability metadata and cannot change the records' values.
    """
    if workers <= 1:
        return SerialExecutor(
            max_retries=max_retries, capture_metrics=capture_metrics
        ).run(spec, progress=progress)
    executor = ProcessExecutor(
        workers=workers,
        max_retries=max_retries,
        mp_context=mp_context,
        capture_metrics=capture_metrics,
    )
    return executor.run(spec, progress=progress)
