"""Sweep definitions: points, specs, records, and metrics.

A *sweep* is the unit of work behind every parameter-scan exhibit
(Figure 2's threshold x ratio grid, Figure 3's contact-ratio curves):
a list of points, each naming a registered point function, a plain
parameter mapping, and a deterministically derived child seed.

Determinism contract
--------------------
Each point's seed is derived from the sweep's root seed and the
point's *index* (``derive_seed(root_seed, "sweep-point:<index>")``),
never from execution order, worker id, or wall time.  Point functions
receive only ``(params, seed)`` and must draw all randomness from that
seed.  Consequently the record produced for a point is a pure function
of ``(point, params, seed)`` and the aggregated sweep output is
bit-identical regardless of worker count or scheduling order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.rng import derive_seed


def point_seed(root_seed: int, index: int) -> int:
    """Child seed for point ``index`` of a sweep rooted at
    ``root_seed``.  Independent of worker count and execution order by
    construction (a pure function of the pair)."""
    return derive_seed(root_seed, f"sweep-point:{index}")


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a parameter sweep.

    ``point`` names a function in :mod:`repro.runner.registry`;
    ``params`` must be a plain picklable mapping (it crosses process
    boundaries under the parallel executor).
    """

    index: int
    point: str
    params: Mapping[str, Any]
    seed: int

    def label(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"[{self.index}] {self.point}({inner})"


@dataclass(frozen=True)
class SweepSpec:
    """A named, fully materialized sweep: the work list an executor
    runs.  ``aggregator`` optionally names a renderer in
    :mod:`repro.runner.aggregate` used by the CLI."""

    name: str
    root_seed: int
    points: Tuple[SweepPoint, ...]
    aggregator: Optional[str] = None

    def __len__(self) -> int:
        return len(self.points)


def make_points(
    root_seed: int, point: str, params_list: Sequence[Mapping[str, Any]]
) -> Tuple[SweepPoint, ...]:
    """Materialize points for one point function, deriving child seeds
    by index."""
    return tuple(
        SweepPoint(
            index=index,
            point=point,
            params=dict(params),
            seed=point_seed(root_seed, index),
        )
        for index, params in enumerate(params_list)
    )


@dataclass(frozen=True)
class PointRecord:
    """The result of executing one sweep point.

    ``values`` is the point function's return mapping and is the only
    field aggregation may read (it is deterministic).  ``wall_time``,
    ``worker``, ``attempts`` and ``metrics`` are observability
    metadata and vary run to run; they feed metrics, never exhibits.
    ``metrics`` is the point's own metrics snapshot (see
    :mod:`repro.obs.metrics`), captured only when the sweep ran with
    ``capture_metrics=True``; ``None`` otherwise.
    """

    index: int
    point: str
    params: Mapping[str, Any]
    seed: int
    values: Mapping[str, Any]
    wall_time: float = 0.0
    worker: str = ""
    attempts: int = 1
    metrics: Optional[Mapping[str, Any]] = None


@dataclass
class SweepMetrics:
    """Progress/utilization counters for one sweep execution."""

    workers: int = 1
    points_total: int = 0
    points_completed: int = 0
    retries: int = 0
    pool_restarts: int = 0
    wall_time: float = 0.0
    point_wall_times: List[float] = field(default_factory=list)

    @property
    def point_time_total(self) -> float:
        return sum(self.point_wall_times)

    @property
    def point_time_mean(self) -> float:
        if not self.point_wall_times:
            return 0.0
        return self.point_time_total / len(self.point_wall_times)

    def utilization(self) -> float:
        """Fraction of the worker pool's wall-clock capacity spent
        inside point functions (1.0 = perfectly packed shards)."""
        capacity = self.workers * self.wall_time
        if capacity <= 0:
            return 0.0
        return min(1.0, self.point_time_total / capacity)

    def summary(self) -> str:
        return (
            f"{self.points_completed}/{self.points_total} points in "
            f"{self.wall_time:.2f}s wall ({self.workers} worker"
            f"{'s' if self.workers != 1 else ''}, "
            f"{self.point_time_mean:.2f}s/point mean, "
            f"utilization {self.utilization() * 100:.0f}%, "
            f"{self.retries} retries)"
        )


@dataclass
class SweepResult:
    """Aggregated outcome of a sweep run: records in point-index order
    (the deterministic payload) plus execution metrics (not)."""

    spec: SweepSpec
    records: List[PointRecord]
    metrics: SweepMetrics

    def values(self) -> List[Dict[str, Any]]:
        """Per-point value mappings in index order -- the
        determinism-guaranteed payload, free of execution metadata."""
        return [dict(record.values) for record in self.records]

    def record(self, index: int) -> PointRecord:
        return self.records[index]

    def merged_metrics(self) -> Dict[str, Any]:
        """Whole-sweep view of the per-point metrics snapshots
        (counters summed, gauges maxed); empty when the sweep was run
        without metrics capture."""
        from repro.obs.metrics import merge_snapshots

        return merge_snapshots(
            record.metrics for record in self.records if record.metrics is not None
        )


def merge_records(records: Sequence[PointRecord], expected: int) -> List[PointRecord]:
    """Order records by point index and verify the sweep is complete:
    no duplicates, no holes, no stray indices.  This is the
    aggregation-layer gate that makes worker scheduling (and
    dispatcher host recovery) invisible downstream: an executor that
    hands over too few, too many, or out-of-range records fails loudly
    here rather than producing a silently partial exhibit."""
    if expected < 0:
        raise ValueError("expected record count must be >= 0")
    by_index: Dict[int, PointRecord] = {}
    for record in records:
        if not 0 <= record.index < expected:
            raise ValueError(
                f"record index {record.index} outside sweep of {expected} points"
            )
        if record.index in by_index:
            raise ValueError(f"duplicate record for point {record.index}")
        by_index[record.index] = record
    if len(by_index) != expected:
        missing = [i for i in range(expected) if i not in by_index]
        raise ValueError(
            f"sweep incomplete: got {len(by_index)}/{expected} records, "
            f"missing points {missing}"
        )
    return [by_index[i] for i in range(expected)]
