"""Host transports: the pluggable seam the dispatcher drives.

A :class:`HostPool` owns N hosts and exposes a *stepped*, synchronous
API: the dispatcher repeatedly calls ``step(host)`` to advance one
host by one unit of work and collect at most one :class:`HostReply`.
``None`` means the host did not respond this step -- a missed
heartbeat, which is the *only* failure signal the dispatcher gets.
Host loss is therefore always inferred the way it would be over a real
wire: by silence, never by privileged inspection of transport state.

Fault injection is part of the transport contract
(:meth:`HostPool.inject`), so the dispatcher's recovery paths are
exercised end to end: when a plan kills a host, the dispatcher sees
missed heartbeats and re-leases -- exactly what an ssh transport would
observe on a real host failure.

:class:`LocalHostPool` is the in-process reference transport: fully
deterministic (step-counted, no wall clock, no threads), supporting
every fault kind -- the transport tests and CI run against it.  The
subprocess transport lives in :mod:`repro.runner.dispatch.subproc`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.runner.dispatch.faultplan import KILL, PARTITION, STALL, HostFault
from repro.runner.dispatch.wire import WorkUnit
from repro.runner.executors import _execute_point
from repro.runner.sweep import PointRecord

#: Reply kinds.
REPLY_RECORD = "record"
REPLY_ERROR = "error"
REPLY_IDLE = "idle"
REPLY_BUSY = "busy"


@dataclass(frozen=True)
class HostReply:
    """What one ``step(host)`` produced.

    ``record`` and ``error`` carry work outcomes; ``idle`` (queue
    drained) and ``busy`` (still executing) are pure heartbeats.  Any
    reply at all resets the host's missed-heartbeat counter.

    ``telemetry`` is an optional advisory snapshot of the host's state
    (points done, RSS, wall-clock age) for the fleet view; the
    dispatcher's correctness never depends on it.
    """

    host: int
    kind: str
    record: Optional[PointRecord] = None
    index: Optional[int] = None
    error: str = ""
    telemetry: Optional[Mapping[str, Any]] = None


class HostPool:
    """Abstract transport: N hosts executing leased work units."""

    def host_ids(self) -> List[int]:
        raise NotImplementedError

    def submit(self, host: int, unit: WorkUnit) -> None:
        """Enqueue a work unit on ``host``'s lease queue."""
        raise NotImplementedError

    def step(self, host: int) -> Optional[HostReply]:
        """Advance ``host`` one unit; None = no response (missed
        heartbeat)."""
        raise NotImplementedError

    def inject(self, fault: HostFault) -> None:
        """Apply a plan fault at the transport layer."""
        raise NotImplementedError

    def discard(self, host: int) -> None:
        """Tear down a host the dispatcher declared lost; it must
        never produce another reply."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "HostPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _LocalHost:
    """One simulated host: a lease queue plus fault state, advanced in
    deterministic steps."""

    __slots__ = (
        "host_id",
        "queue",
        "killed",
        "stalled_for",
        "partitioned_for",
        "points_done",
        "started",
    )

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self.queue: Deque[WorkUnit] = deque()
        self.killed = False
        self.stalled_for = 0
        self.partitioned_for = 0
        self.points_done = 0
        self.started = time.perf_counter()

    def telemetry(self) -> Dict[str, Any]:
        # Same shape the subprocess hostworker ships back over the
        # wire; RSS is process-wide here because local hosts share one
        # interpreter.
        from repro.bench import current_rss_kb, peak_rss_kb

        return {
            "points_done": self.points_done,
            "rss_kb": current_rss_kb(),
            "peak_rss_kb": peak_rss_kb(),
            "wall_s": round(time.perf_counter() - self.started, 3),
        }

    def step(self) -> Optional[HostReply]:
        if self.killed:
            return None
        if self.stalled_for > 0:
            # Stalled: no work, no heartbeat.  The lease queue survives,
            # so a short stall resumes transparently.
            self.stalled_for -= 1
            return None
        if self.partitioned_for > 0:
            # Partitioned: the host keeps burning through its lease but
            # every reply (result *and* heartbeat) is lost in transit.
            self.partitioned_for -= 1
            if self.queue:
                self._execute(self.queue.popleft())
            return None
        if self.queue:
            return self._execute(self.queue.popleft())
        return HostReply(host=self.host_id, kind=REPLY_IDLE)

    def _execute(self, unit: WorkUnit) -> HostReply:
        try:
            record = _execute_point(unit.task())
        except Exception as exc:
            return HostReply(
                host=self.host_id,
                kind=REPLY_ERROR,
                index=unit.index,
                error=repr(exc),
            )
        # Relabel the worker for the per-host timeline; pure metadata,
        # never part of the deterministic payload.
        record = replace(record, worker=f"host:{self.host_id}")
        self.points_done += 1
        return HostReply(
            host=self.host_id,
            kind=REPLY_RECORD,
            record=record,
            telemetry=self.telemetry(),
        )


class LocalHostPool(HostPool):
    """In-process reference transport: deterministic, thread-free, and
    supporting the full fault vocabulary (kill/stall/partition)."""

    #: Transport capability flag the dispatcher surfaces in errors.
    supported_faults = (KILL, STALL, PARTITION)

    def __init__(self, hosts: int) -> None:
        if hosts < 1:
            raise ValueError("hosts must be >= 1")
        self._hosts: Dict[int, _LocalHost] = {
            host_id: _LocalHost(host_id) for host_id in range(hosts)
        }

    def host_ids(self) -> List[int]:
        return sorted(self._hosts)

    def submit(self, host: int, unit: WorkUnit) -> None:
        target = self._hosts[host]
        if target.killed:
            # A lease shipped to a host that died before the dispatcher
            # noticed: lost in transit.  The dispatcher's ledger still
            # tracks the point, so heartbeat-miss recovery re-leases it
            # -- the same path a real wire would take.
            return
        target.queue.append(unit)

    def step(self, host: int) -> Optional[HostReply]:
        return self._hosts[host].step()

    def inject(self, fault: HostFault) -> None:
        target = self._hosts[fault.host]
        if fault.kind == KILL:
            target.killed = True
            target.queue.clear()
        elif fault.kind == STALL:
            target.stalled_for += fault.duration
        elif fault.kind == PARTITION:
            target.partitioned_for += fault.duration
        else:  # pragma: no cover - HostFault validates kinds
            raise ValueError(f"unknown fault kind {fault.kind!r}")

    def discard(self, host: int) -> None:
        target = self._hosts[host]
        target.killed = True
        target.queue.clear()

    def close(self) -> None:
        for host in self._hosts.values():
            host.killed = True
            host.queue.clear()
