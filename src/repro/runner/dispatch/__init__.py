"""Multi-host sweep dispatch with host-failure recovery.

The dispatcher shards a sweep's point list into leases across a host
pool, heartbeats the hosts, and re-leases work lost to dead, stalled,
or partitioned hosts -- merging the surviving records into a
:class:`~repro.runner.sweep.SweepResult` byte-identical to a serial
run.  Fault injection (:class:`HostFaultPlan`) is a first-class,
deterministic API so every recovery path is a unit-testable scenario
rather than a timing accident.

Quick use::

    from repro.runner.dispatch import dispatch_sweep, parse_host_faults
    from repro.runner import build_sweep

    result = dispatch_sweep(
        build_sweep("fig2", root_seed=0),
        hosts=3,
        fault_plan=parse_host_faults("kill:1@0.5"),
    )
"""

from repro.runner.dispatch.dispatcher import (
    DispatchExecutor,
    chunk_leases,
    default_chunk_size,
)
from repro.runner.dispatch.faultplan import (
    FAULT_KINDS,
    KILL,
    PARTITION,
    STALL,
    HostFault,
    HostFaultInjector,
    HostFaultPlan,
    parse_host_faults,
    sample_fault_plan,
)
from repro.runner.dispatch.subproc import SubprocessHostPool
from repro.runner.dispatch.transport import (
    REPLY_BUSY,
    REPLY_ERROR,
    REPLY_IDLE,
    REPLY_RECORD,
    HostPool,
    HostReply,
    LocalHostPool,
)
from repro.runner.dispatch.wire import (
    WIRE_VERSION,
    WireVersionError,
    WorkUnit,
    check_hello,
    hello_to_wire,
)

from typing import Optional

from repro.runner.progress import ProgressHook
from repro.runner.sweep import SweepResult, SweepSpec


def dispatch_sweep(
    spec: SweepSpec,
    hosts: int = 2,
    pool: Optional[HostPool] = None,
    chunk_size: Optional[int] = None,
    max_retries: int = 2,
    capture_metrics: bool = False,
    fault_plan: Optional[HostFaultPlan] = None,
    heartbeat_misses: int = 3,
    progress: Optional[ProgressHook] = None,
) -> SweepResult:
    """One-call dispatcher run (the CLI entry point)."""
    executor = DispatchExecutor(
        hosts=hosts,
        pool=pool,
        chunk_size=chunk_size,
        max_retries=max_retries,
        capture_metrics=capture_metrics,
        fault_plan=fault_plan,
        heartbeat_misses=heartbeat_misses,
    )
    return executor.run(spec, progress=progress)


__all__ = [
    "check_hello",
    "chunk_leases",
    "default_chunk_size",
    "dispatch_sweep",
    "DispatchExecutor",
    "FAULT_KINDS",
    "hello_to_wire",
    "HostFault",
    "HostFaultInjector",
    "HostFaultPlan",
    "HostPool",
    "HostReply",
    "KILL",
    "LocalHostPool",
    "parse_host_faults",
    "PARTITION",
    "REPLY_BUSY",
    "REPLY_ERROR",
    "REPLY_IDLE",
    "REPLY_RECORD",
    "sample_fault_plan",
    "STALL",
    "SubprocessHostPool",
    "WIRE_VERSION",
    "WireVersionError",
    "WorkUnit",
]
