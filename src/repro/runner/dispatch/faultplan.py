"""Host-level fault plans for the sweep dispatcher.

A :class:`HostFaultPlan` is pure data, mirroring
:mod:`repro.faults.plan`: a schedule of faults against *hosts* (not
bots) that the dispatcher injects through its transport seam while a
sweep is in flight.  Triggers are expressed as a fraction of the
sweep's acknowledged points, never as wall time, so every recovery
path the plan exercises is deterministic and assertable: "kill host 1
once half the sweep is acked" replays identically on any machine.

Kinds:

* ``kill`` -- the host dies permanently mid-lease; its unacknowledged
  points must be re-leased elsewhere.
* ``stall`` -- the host stops responding (no heartbeats, no results)
  for ``duration`` dispatcher steps, then resumes.  A stall longer
  than the heartbeat-miss budget is indistinguishable from a kill to
  the dispatcher -- by design.
* ``partition`` -- the host keeps executing its lease but every reply
  is lost for ``duration`` steps: the asymmetric-failure case where
  work happens and acknowledgements do not.

Random plans are drawn from a dedicated named RNG stream
(``derive_seed(seed, "dispatch-host-faults")``), so a fault schedule
never perturbs any simulation stream and one integer reproduces the
whole adversarial run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.rng import derive_seed

KILL = "kill"
STALL = "stall"
PARTITION = "partition"

FAULT_KINDS = (KILL, STALL, PARTITION)


@dataclass(frozen=True)
class HostFault:
    """One scheduled host fault.

    ``at_progress`` is the acked-points fraction at which the fault
    fires (0.0 = before any ack, 0.5 = once half the sweep is acked).
    ``duration`` is measured in dispatcher steps and only meaningful
    for ``stall``/``partition``; a ``kill`` is permanent.
    """

    kind: str
    host: int
    at_progress: float
    duration: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown host fault kind {self.kind!r}")
        if self.host < 0:
            raise ValueError("host index must be >= 0")
        if not 0.0 <= self.at_progress <= 1.0:
            raise ValueError("at_progress must be in [0, 1]")
        if self.kind != KILL and self.duration < 1:
            raise ValueError(f"{self.kind} fault needs duration >= 1")

    def label(self) -> str:
        tail = "" if self.kind == KILL else f"x{self.duration}"
        return f"{self.kind}:{self.host}@{self.at_progress:g}{tail}"


@dataclass(frozen=True)
class HostFaultPlan:
    """An immutable schedule of host faults (possibly empty)."""

    faults: Tuple[HostFault, ...] = ()

    def __len__(self) -> int:
        return len(self.faults)

    def validate(self, hosts: int) -> None:
        """Reject plans that reference nonexistent hosts or that kill
        the entire pool (an unrecoverable sweep is a configuration
        error, not a fault-tolerance scenario)."""
        for fault in self.faults:
            if fault.host >= hosts:
                raise ValueError(
                    f"fault {fault.label()} targets host {fault.host} "
                    f"but the pool has {hosts} hosts"
                )
        killed = {f.host for f in self.faults if f.kind == KILL}
        if hosts and len(killed) >= hosts:
            raise ValueError("fault plan kills every host; nothing could finish")

    def label(self) -> str:
        if not self.faults:
            return "(no host faults)"
        return ",".join(fault.label() for fault in self.faults)


def parse_host_faults(spec: str) -> HostFaultPlan:
    """Parse the CLI fault syntax: a comma list of
    ``kind:host@progress[xduration]`` entries, e.g.
    ``kill:1@0.5,stall:0@0.25x6``."""
    faults: List[HostFault] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            kind, rest = chunk.split(":", 1)
            host_text, at_text = rest.split("@", 1)
            duration = 0
            if "x" in at_text:
                at_text, dur_text = at_text.split("x", 1)
                duration = int(dur_text)
            host = int(host_text)
            at_progress = float(at_text)
        except ValueError as exc:
            raise ValueError(
                f"bad host fault {chunk!r} (want kind:host@progress[xduration], "
                f"e.g. kill:1@0.5 or stall:0@0.25x6)"
            ) from exc
        # HostFault's own validation errors are already descriptive.
        faults.append(
            HostFault(
                kind=kind.strip(),
                host=host,
                at_progress=at_progress,
                duration=duration,
            )
        )
    return HostFaultPlan(faults=tuple(faults))


def sample_fault_plan(
    seed: int,
    hosts: int,
    max_faults: int = 3,
    kinds: Sequence[str] = FAULT_KINDS,
    max_duration: int = 8,
) -> HostFaultPlan:
    """Draw a random-but-reproducible plan from the dedicated
    ``dispatch-host-faults`` stream.

    One randomly chosen *survivor* host receives no faults at all, so
    a sampled plan can always be recovered from: a stall or partition
    longer than the dispatcher's heartbeat budget is operationally a
    kill, and sampling does not know the budget -- exempting one host
    from everything is the conservative guarantee.  Stall/partition
    durations are drawn in ``[1, max_duration]``.
    """
    if hosts < 1:
        raise ValueError("hosts must be >= 1")
    rng = random.Random(derive_seed(seed, "dispatch-host-faults"))
    count = rng.randint(0, max(0, max_faults))
    survivor = rng.randrange(hosts)
    faultable = [host for host in range(hosts) if host != survivor]
    killable = list(faultable)
    rng.shuffle(killable)
    faults: List[HostFault] = []
    if not faultable:
        return HostFaultPlan()
    for _ in range(count):
        kind = rng.choice(list(kinds))
        if kind == KILL:
            if not killable:
                continue
            host = killable.pop()
            faults.append(
                HostFault(kind=KILL, host=host, at_progress=round(rng.random(), 3))
            )
        else:
            faults.append(
                HostFault(
                    kind=kind,
                    host=rng.choice(faultable),
                    at_progress=round(rng.random(), 3),
                    duration=rng.randint(1, max_duration),
                )
            )
    return HostFaultPlan(faults=tuple(faults))


class HostFaultInjector:
    """Stateful trigger evaluation over a pure plan.

    The dispatcher calls :meth:`due` once per step with its current
    acked count; each fault fires exactly once, when
    ``acked >= ceil(at_progress * total)``.
    """

    def __init__(self, plan: HostFaultPlan, total_points: int) -> None:
        self.plan = plan
        self.total = total_points
        self._pending = sorted(
            plan.faults, key=lambda f: (f.at_progress, f.host, f.kind)
        )

    def due(self, acked: int) -> List[HostFault]:
        fired: List[HostFault] = []
        remaining: List[HostFault] = []
        for fault in self._pending:
            threshold = math.ceil(fault.at_progress * self.total)
            if acked >= threshold:
                fired.append(fault)
            else:
                remaining.append(fault)
        self._pending = remaining
        return fired

    @property
    def pending(self) -> Tuple[HostFault, ...]:
        return tuple(self._pending)
