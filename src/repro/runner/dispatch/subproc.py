"""Subprocess-per-host transport: one real OS process per "host".

Each host is a ``python -m repro.runner.dispatch.hostworker`` child
speaking the line-oriented wire protocol over stdin/stdout.  This is
the smallest transport that crosses a genuine process boundary -- the
shape an ssh- or queue-backed transport will take -- while staying
runnable in CI.

Only importable point functions are visible to subprocess hosts (each
child starts from a fresh interpreter and imports
:mod:`repro.runner.points`); test-local registrations need
:class:`~repro.runner.dispatch.transport.LocalHostPool`.

Fault support: ``kill`` only (the process is SIGKILLed, which is the
real thing).  ``stall``/``partition`` need the deterministic stepped
transport -- a wall-clock stall in a live process would make recovery
timing-dependent, which is exactly what the fault seam exists to
avoid.
"""

from __future__ import annotations

import os
import select
import subprocess
import sys
from collections import deque
from typing import Deque, Dict, List, Optional

import repro

from repro.runner.dispatch import wire
from repro.runner.dispatch.faultplan import KILL, HostFault
from repro.runner.dispatch.transport import (
    REPLY_BUSY,
    REPLY_ERROR,
    REPLY_IDLE,
    REPLY_RECORD,
    HostPool,
    HostReply,
)
from repro.runner.dispatch.wire import WorkUnit


def worker_env() -> Dict[str, str]:
    """The child's environment: the parent's, with the directory that
    resolves ``import repro`` for *this* process prepended to
    ``PYTHONPATH``.

    The parent may have imported ``repro`` from a source checkout via
    ``sys.path`` manipulation (pytest's rootdir conftest, an IDE
    runner) without PYTHONPATH ever being set -- a bare inherited
    environment would then leave ``python -m
    repro.runner.dispatch.hostworker`` unable to import the package,
    and every host would be born dead.
    """
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + [p for p in existing.split(os.pathsep) if p]
    # Dedup while keeping order: the repro root must stay first.
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


class _SubprocessHost:
    __slots__ = ("host_id", "proc", "queue", "in_flight")

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runner.dispatch.hostworker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=worker_env(),
        )
        self.queue: Deque[WorkUnit] = deque()
        self.in_flight: Optional[WorkUnit] = None

    def alive(self) -> bool:
        return self.proc.poll() is None

    def send(self, message) -> bool:
        if not self.alive():
            return False
        try:
            self.proc.stdin.write(wire.encode(message) + "\n")
            self.proc.stdin.flush()
            return True
        except (BrokenPipeError, OSError, ValueError):
            return False

    def read_reply(self, timeout: float):
        """One decoded wire message, or None if nothing arrived in
        ``timeout`` seconds (or the pipe is gone)."""
        stdout = self.proc.stdout
        if stdout is None:
            return None
        ready, _, _ = select.select([stdout], [], [], timeout)
        if not ready:
            return None
        line = stdout.readline()
        if not line:  # EOF: the process died
            return None
        try:
            return wire.decode(line)
        except ValueError:
            return None

    def kill(self) -> None:
        if self.alive():
            self.proc.kill()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill is final
            pass
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:  # pragma: no cover
                    pass


class SubprocessHostPool(HostPool):
    """One subprocess per host; replies polled with a bounded wait.

    ``step_timeout`` bounds how long one dispatcher step waits for an
    in-flight result.  A live-but-slow host answers with ``busy``
    (liveness comes from ``poll()``), so slow points cost steps, never
    false host-loss verdicts; only a dead process goes silent.
    """

    supported_faults = (KILL,)

    def __init__(self, hosts: int, step_timeout: float = 5.0) -> None:
        if hosts < 1:
            raise ValueError("hosts must be >= 1")
        self.step_timeout = step_timeout
        self._hosts: Dict[int, _SubprocessHost] = {
            host_id: _SubprocessHost(host_id) for host_id in range(hosts)
        }
        try:
            self._handshake()
        except Exception:
            self.close()
            raise

    def _handshake(self) -> None:
        """Version-check every host before any work is leased.

        A mismatched worker fails here with a named
        :class:`~repro.runner.dispatch.wire.WireVersionError` instead
        of a confusing decode failure mid-sweep.  A host that says
        *nothing* is tolerated -- silence is the heartbeat path's
        verdict to make, not the handshake's.
        """
        for host_id, target in sorted(self._hosts.items()):
            if not target.send(wire.hello_to_wire()):
                continue
            message = target.read_reply(self.step_timeout)
            if message is None:
                continue
            wire.check_hello(message, host_id)

    def host_ids(self) -> List[int]:
        return sorted(self._hosts)

    def submit(self, host: int, unit: WorkUnit) -> None:
        target = self._hosts[host]
        if not target.alive():
            # Lost in transit (see LocalHostPool.submit): the ledger
            # keeps the point and heartbeat recovery re-leases it.
            return
        target.queue.append(unit)

    def step(self, host: int) -> Optional[HostReply]:
        target = self._hosts[host]
        if not target.alive():
            return None
        if target.in_flight is None:
            if not target.queue:
                return HostReply(host=host, kind=REPLY_IDLE)
            unit = target.queue.popleft()
            if not target.send(unit.to_wire()):
                # The pipe died between poll() and write: put the unit
                # back so the dispatcher's ledger and our queue agree.
                target.queue.appendleft(unit)
                return None
            target.in_flight = unit
        message = target.read_reply(self.step_timeout)
        if message is None:
            if target.alive():
                return HostReply(host=host, kind=REPLY_BUSY)
            return None
        op = message.get("op")
        unit = target.in_flight
        if op == wire.OP_RECORD:
            target.in_flight = None
            return HostReply(
                host=host,
                kind=REPLY_RECORD,
                record=wire.record_from_wire(message),
                telemetry=message.get("telemetry"),
            )
        if op == wire.OP_ERROR:
            target.in_flight = None
            index = int(message.get("index", -1))
            if index < 0 and unit is not None:
                index = unit.index
            return HostReply(
                host=host,
                kind=REPLY_ERROR,
                index=index,
                error=str(message.get("error", "")),
            )
        # pongs / unknown chatter count as liveness (and may carry a
        # telemetry snapshot for the fleet view).
        return HostReply(host=host, kind=REPLY_BUSY, telemetry=message.get("telemetry"))

    def inject(self, fault: HostFault) -> None:
        if fault.kind != KILL:
            raise ValueError(
                f"subprocess transport supports only {KILL!r} faults "
                f"(got {fault.kind!r}); use LocalHostPool for "
                f"stall/partition scenarios"
            )
        self._hosts[fault.host].kill()

    def discard(self, host: int) -> None:
        self._hosts[host].kill()
        self._hosts[host].queue.clear()

    def close(self) -> None:
        for target in self._hosts.values():
            if target.alive():
                target.send({"op": wire.OP_EXIT})
            target.kill()
