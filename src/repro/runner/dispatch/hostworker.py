"""Subprocess host entry point: ``python -m repro.runner.dispatch.hostworker``.

Reads wire messages (one JSON object per line, see
:mod:`repro.runner.dispatch.wire`) on stdin and writes replies to
stdout.  A host is stateless between work units: it resolves each
unit's point function from the import-time registry
(:mod:`repro.runner.points` registers the paper's library), runs it
with the unit's own ``(params, seed)``, and ships the record back.

Point prints are not a concern: point functions return mappings, and
stdout is reserved for the wire, so the worker redirects ``sys.stdout``
to stderr around point execution as a belt-and-braces guard.

Record and pong replies carry a small ``telemetry`` dict (points done,
RSS, wall-clock age) so the dispatcher can render a live fleet view
without extra round-trips; it is advisory chatter the dispatcher never
depends on.
"""

from __future__ import annotations

import contextlib
import sys
import time

# Importing the runner package registers the library point functions.
import repro.runner  # noqa: F401
from repro.runner.dispatch import wire
from repro.runner.executors import _execute_point


def host_telemetry(points_done: int, started: float) -> dict:
    """Per-host snapshot attached to record/pong replies."""
    from repro.bench import current_rss_kb, peak_rss_kb

    return {
        "points_done": points_done,
        "rss_kb": current_rss_kb(),
        "peak_rss_kb": peak_rss_kb(),
        "wall_s": round(time.perf_counter() - started, 3),
    }


def serve(stdin=None, stdout=None) -> int:
    """The worker loop; separated from ``main`` so tests can drive it
    over in-memory streams."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    started = time.perf_counter()
    points_done = 0

    def reply(message) -> None:
        stdout.write(wire.encode(message) + "\n")
        stdout.flush()

    for line in stdin:
        try:
            message = wire.decode(line)
        except ValueError as exc:
            reply(wire.error_to_wire(-1, f"bad wire line: {exc}"))
            continue
        if message is None:
            continue
        op = message["op"]
        if op == wire.OP_EXIT:
            break
        if op == wire.OP_HELLO:
            # Echo our own version; the pool compares (see
            # wire.check_hello) and rejects mismatches by name.
            reply(wire.hello_to_wire())
            continue
        if op == wire.OP_PING:
            reply({"op": wire.OP_PONG, "telemetry": host_telemetry(points_done, started)})
            continue
        if op == wire.OP_RUN:
            unit = wire.WorkUnit.from_wire(message)
            try:
                with contextlib.redirect_stdout(sys.stderr):
                    record = _execute_point(unit.task())
            except Exception as exc:
                reply(wire.error_to_wire(unit.index, repr(exc)))
            else:
                points_done += 1
                reply(wire.record_to_wire(record, telemetry=host_telemetry(points_done, started)))
            continue
        reply(wire.error_to_wire(-1, f"unknown op {op!r}"))
    return 0


def main() -> int:  # pragma: no cover - exercised via subprocess tests
    return serve()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
