"""Wire protocol for dispatcher <-> host traffic.

One JSON object per line, both directions.  The vocabulary is small on
purpose so an ssh- or queue-backed transport can speak it later
without touching the dispatcher: requests are ``hello`` (version
handshake), ``run`` (a work unit), ``ping`` (liveness probe), and
``exit``; replies are ``record`` (a completed
:class:`~repro.runner.sweep.PointRecord`), ``error`` (the point
function raised), ``pong``, and the ``hello`` echo.

Work units carry the full ``(point, params, seed)`` triple plus the
point index and attempt number, so a host needs no sweep context
beyond an importable point registry -- the same placement-independence
contract the executors rely on (see :mod:`repro.runner.sweep`).

Versioning: the pool opens each host with a ``hello`` carrying
:data:`WIRE_VERSION`; the worker echoes its own version back.  A
mismatch (or a pre-versioned worker that answers "unknown op") raises
:class:`WireVersionError` -- a named, explained failure instead of
whatever decode error a silently incompatible stream would eventually
produce.  Replies may additionally carry a ``telemetry`` dict (see
:mod:`repro.obs.telemetry`); readers ignore unknown keys, so telemetry
is forward-compatible chatter, never load-bearing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.runner.sweep import PointRecord

#: Bump on incompatible wire changes; the hello handshake compares it.
WIRE_VERSION = 1

#: Request ops.
OP_HELLO = "hello"
OP_RUN = "run"
OP_PING = "ping"
OP_EXIT = "exit"

#: Reply ops (plus the OP_HELLO echo).
OP_RECORD = "record"
OP_ERROR = "error"
OP_PONG = "pong"


class WireVersionError(RuntimeError):
    """A host speaks a different wire protocol version (or none)."""


def hello_to_wire() -> Dict[str, Any]:
    """The handshake message either side opens with."""
    return {"op": OP_HELLO, "version": WIRE_VERSION}


def check_hello(message: Mapping[str, Any], host: int) -> None:
    """Validate a host's handshake reply.

    Raises :class:`WireVersionError` with both versions named on a
    mismatch -- including the pre-versioned-worker case, where an old
    worker answers the hello itself with an "unknown op" error.
    """
    op = message.get("op")
    if op == OP_ERROR and "unknown op" in str(message.get("error", "")):
        raise WireVersionError(
            f"host {host} runs a pre-versioned hostworker (it rejected the "
            f"hello handshake: {message.get('error')!r}); this dispatcher "
            f"speaks wire version {WIRE_VERSION} -- update the host"
        )
    if op != OP_HELLO:
        raise WireVersionError(
            f"host {host} answered the hello handshake with op {op!r} "
            f"instead of echoing it; expected wire version {WIRE_VERSION}"
        )
    version = message.get("version")
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"host {host} speaks wire version {version!r}, dispatcher "
            f"speaks {WIRE_VERSION}; align the repro versions on both ends"
        )


@dataclass(frozen=True)
class WorkUnit:
    """One leased point execution: plain data, JSON-able both ways."""

    point: str
    params: Mapping[str, Any]
    seed: int
    index: int
    attempt: int
    capture: bool = False

    def to_wire(self) -> Dict[str, Any]:
        return {
            "op": OP_RUN,
            "point": self.point,
            "params": dict(self.params),
            "seed": self.seed,
            "index": self.index,
            "attempt": self.attempt,
            "capture": self.capture,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "WorkUnit":
        return cls(
            point=str(data["point"]),
            params=dict(data["params"]),
            seed=int(data["seed"]),
            index=int(data["index"]),
            attempt=int(data["attempt"]),
            capture=bool(data.get("capture", False)),
        )

    def task(self):
        """The executor-layer task tuple (see
        :func:`repro.runner.executors._execute_point`)."""
        return (
            self.point,
            dict(self.params),
            self.seed,
            self.index,
            self.attempt,
            self.capture,
        )


def record_to_wire(
    record: PointRecord, telemetry: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "op": OP_RECORD,
        "index": record.index,
        "point": record.point,
        "params": dict(record.params),
        "seed": record.seed,
        "values": dict(record.values),
        "wall_time": record.wall_time,
        "worker": record.worker,
        "attempts": record.attempts,
    }
    if record.metrics is not None:
        out["metrics"] = dict(record.metrics)
    if telemetry is not None:
        out["telemetry"] = dict(telemetry)
    return out


def record_from_wire(data: Mapping[str, Any]) -> PointRecord:
    return PointRecord(
        index=int(data["index"]),
        point=str(data["point"]),
        params=dict(data["params"]),
        seed=int(data["seed"]),
        values=dict(data["values"]),
        wall_time=float(data.get("wall_time", 0.0)),
        worker=str(data.get("worker", "")),
        attempts=int(data.get("attempts", 1)),
        metrics=data.get("metrics"),
    )


def error_to_wire(index: int, error: str) -> Dict[str, Any]:
    return {"op": OP_ERROR, "index": index, "error": error}


def encode(message: Mapping[str, Any]) -> str:
    """One wire line (no trailing newline); keys sorted so identical
    messages are byte-identical on every host."""
    return json.dumps(message, sort_keys=True, separators=(",", ":"))


def decode(line: str) -> Optional[Dict[str, Any]]:
    """Parse one wire line; None for blank lines (keep-alive noise)."""
    line = line.strip()
    if not line:
        return None
    message = json.loads(line)
    if not isinstance(message, dict) or "op" not in message:
        raise ValueError(f"not a wire message: {line[:80]!r}")
    return message
