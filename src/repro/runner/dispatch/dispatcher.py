"""The multi-host sweep dispatcher.

:class:`DispatchExecutor` exposes the executors' ``run(spec,
progress=...)`` API but shards the point list across a
:class:`~repro.runner.dispatch.transport.HostPool`: points are chunked
into *leases*, leases are granted round-robin, and the dispatcher then
drives the pool in deterministic steps, collecting acknowledgements
and heartbeats.

Failure model
-------------
The only failure signal is silence.  A host that misses
``heartbeat_misses`` consecutive steps is declared lost; its
unacknowledged points (tracked in the dispatcher's own lease ledger,
never by asking the transport) are re-leased to the surviving hosts
under the same per-point attempt budget the executors use.  A host
that answers but has silently dropped results (the partition case:
work executed, acks lost) is caught by ledger/idle reconciliation --
an idle host whose ledger still shows pending points gets them
re-leased.  Points whose budget runs out, or whose sweep has no
surviving host, surface as
:class:`~repro.runner.executors.SweepExecutionError` with the failing
indices attached.

Determinism
-----------
Record payloads are pure functions of ``(point, params, seed)``
(see :mod:`repro.runner.sweep`), and :func:`merge_records` re-orders
by index, so the merged :class:`SweepResult` is byte-identical to a
:class:`~repro.runner.executors.SerialExecutor` run no matter which
hosts died when.  With the in-process
:class:`~repro.runner.dispatch.transport.LocalHostPool` the *entire
execution* -- every lease grant, heartbeat miss, fault firing, and
re-lease, as captured by :meth:`DispatchExecutor.timeline` -- is also
deterministic, because progress is counted in steps and acks, never
wall time.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs import runtime as obs_runtime
from repro.obs.events import COMPLETE, INSTANT, TraceEvent
from repro.runner.dispatch.faultplan import (
    HostFault,
    HostFaultInjector,
    HostFaultPlan,
)
from repro.runner.dispatch.transport import (
    REPLY_ERROR,
    REPLY_IDLE,
    REPLY_RECORD,
    HostPool,
    HostReply,
    LocalHostPool,
)
from repro.runner.dispatch.wire import WorkUnit
from repro.runner.executors import SweepExecutionError
from repro.runner.progress import (
    HOST_FAULT,
    HOST_LOST,
    HOST_TELEMETRY,
    POINT_DONE,
    POINT_RETRY,
    SWEEP_DONE,
    SWEEP_START,
    ProgressEvent,
    ProgressHook,
)
from repro.runner.sweep import (
    PointRecord,
    SweepMetrics,
    SweepPoint,
    SweepResult,
    SweepSpec,
    merge_records,
)


def chunk_leases(
    points: Tuple[SweepPoint, ...], hosts: List[int], chunk_size: int
) -> Dict[int, List[SweepPoint]]:
    """Chunk the point list and grant chunks round-robin: chunk ``i``
    goes to ``hosts[i % len(hosts)]``.  Pure function of its inputs,
    so the initial lease layout is part of the deterministic record."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    grants: Dict[int, List[SweepPoint]] = {host: [] for host in hosts}
    for chunk_index in range(0, math.ceil(len(points) / chunk_size) if points else 0):
        chunk = points[chunk_index * chunk_size : (chunk_index + 1) * chunk_size]
        grants[hosts[chunk_index % len(hosts)]].extend(chunk)
    return grants


def default_chunk_size(total_points: int, hosts: int) -> int:
    """Lease granularity default: ~4 chunks per host, so a lost host
    forfeits at most a quarter of its share, floored at 1."""
    if total_points <= 0:
        return 1
    return max(1, math.ceil(total_points / (hosts * 4)))


class DispatchExecutor:
    """Distribute a sweep across a host pool with failure recovery.

    Parameters mirror the executors where they overlap; the new knobs:

    ``hosts``
        Host count for the default transport (ignored when ``pool`` is
        given).
    ``pool``
        A :class:`HostPool`; defaults to an in-process
        :class:`LocalHostPool` -- the deterministic reference
        transport.  Pass a
        :class:`~repro.runner.dispatch.subproc.SubprocessHostPool` for
        real process-per-host execution.
    ``fault_plan``
        A :class:`HostFaultPlan` injected at deterministic progress
        thresholds through the transport seam.
    ``heartbeat_misses``
        Consecutive silent steps before a host is declared lost.
    ``chunk_size``
        Points per lease; defaults to :func:`default_chunk_size`.
    """

    def __init__(
        self,
        hosts: int = 2,
        pool: Optional[HostPool] = None,
        chunk_size: Optional[int] = None,
        max_retries: int = 2,
        capture_metrics: bool = False,
        fault_plan: Optional[HostFaultPlan] = None,
        heartbeat_misses: int = 3,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._own_pool = pool is None
        self.pool = pool if pool is not None else LocalHostPool(hosts)
        self.workers = len(self.pool.host_ids())
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.capture_metrics = capture_metrics
        self.fault_plan = fault_plan if fault_plan is not None else HostFaultPlan()
        self.heartbeat_misses = heartbeat_misses
        self._timeline: List[TraceEvent] = []
        self._fleet: Dict[int, Dict[str, Any]] = {}

    # -- observability -----------------------------------------------------

    def fleet_summary(self) -> Dict[str, Any]:
        """Per-host counters and last-known telemetry from the last
        run, in the shape :func:`repro.obs.telemetry.render_fleet`
        renders and the sweep health report embeds.  Advisory only:
        derived from dispatcher bookkeeping plus whatever telemetry
        hosts volunteered, never consulted for correctness."""
        hosts = {str(host): dict(entry) for host, entry in sorted(self._fleet.items())}
        return {
            "hosts": hosts,
            "leased": sum(e["leased"] for e in self._fleet.values()),
            "acked": sum(e["acked"] for e in self._fleet.values()),
            "lost": sum(1 for e in self._fleet.values() if e["lost"]),
        }

    def timeline(self) -> List[TraceEvent]:
        """The per-host execution timeline of the last run: one
        ``X`` span per acknowledged point on its host's track
        (``host:N``), instants for lease grants, fault firings, host
        losses, and re-leases on the ``dispatch`` track.  Times are
        dispatcher *step* numbers -- deterministic under
        :class:`LocalHostPool`."""
        return sorted(self._timeline, key=lambda e: (e.time, e.cat, e.name))

    # -- main loop ---------------------------------------------------------

    def run(self, spec: SweepSpec, progress: Optional[ProgressHook] = None) -> SweepResult:
        total = len(spec)
        self.fault_plan.validate(self.workers)
        started = time.perf_counter()
        metrics = SweepMetrics(workers=self.workers, points_total=total)
        obs = obs_runtime.metrics()
        dispatched = obs.counter(
            "dispatch.points_dispatched", "work units shipped to hosts (incl. re-leases)"
        )
        # Registered here for their help text; the reply handler
        # re-fetches them by name (registration is idempotent).
        obs.counter("dispatch.acks", "point records acknowledged")
        obs.counter("dispatch.duplicate_acks", "late duplicate records dropped")
        releases = obs.counter("dispatch.releases", "points re-leased after host trouble")
        lost_metric = obs.counter("dispatch.hosts_lost", "hosts declared lost")
        faults_metric = obs.counter("dispatch.faults_injected", "plan faults fired")
        alive_gauge = obs.gauge("dispatch.hosts_alive", "hosts still serving leases")
        steps_gauge = obs.gauge("dispatch.steps", "dispatcher steps taken")

        self._timeline = []
        self._emit(progress, ProgressEvent(SWEEP_START, 0, total))

        points_by_index = {point.index: point for point in spec.points}
        chunk_size = (
            self.chunk_size
            if self.chunk_size is not None
            else default_chunk_size(total, self.workers)
        )
        hosts = list(self.pool.host_ids())
        self._fleet = {
            host: {"leased": 0, "acked": 0, "errors": 0, "lost": False, "telemetry": None}
            for host in hosts
        }
        alive: List[int] = list(hosts)
        alive_gauge.set(len(alive))
        missed: Dict[int, int] = {host: 0 for host in hosts}
        ledger: Dict[int, List[int]] = {host: [] for host in hosts}
        attempts: Dict[int, int] = {index: 0 for index in points_by_index}
        lease_step: Dict[int, int] = {}
        acked: Dict[int, PointRecord] = {}
        injector = HostFaultInjector(self.fault_plan, total)
        step = 0

        def submit(host: int, point: SweepPoint) -> None:
            attempts[point.index] += 1
            if attempts[point.index] > self.max_retries + 1:
                raise SweepExecutionError(
                    f"point {point.label()} exhausted its attempt budget "
                    f"({attempts[point.index] - 1} attempts) across host failures",
                    indices=(point.index,),
                )
            self.pool.submit(
                host,
                WorkUnit(
                    point=point.point,
                    params=dict(point.params),
                    seed=point.seed,
                    index=point.index,
                    attempt=attempts[point.index],
                    capture=self.capture_metrics,
                ),
            )
            ledger[host].append(point.index)
            lease_step[point.index] = step
            self._fleet[host]["leased"] += 1
            dispatched.inc()

        def release(indices: List[int], reason: str) -> None:
            """Re-grant ``indices`` to the least-loaded alive hosts."""
            if not indices:
                return
            if not alive:
                raise SweepExecutionError(
                    f"all hosts lost with {len(indices)} points unfinished "
                    f"({reason}): {sorted(indices)}",
                    indices=sorted(indices),
                )
            for index in sorted(indices):
                target = min(alive, key=lambda h: (len(ledger[h]), h))
                submit(target, points_by_index[index])
                releases.inc()
            self._timeline.append(
                TraceEvent(
                    step,
                    "dispatch",
                    "re-lease",
                    INSTANT,
                    args={"points": sorted(indices), "reason": reason},
                )
            )

        def declare_lost(host: int, reason: str) -> None:
            alive.remove(host)
            self._fleet[host]["lost"] = True
            alive_gauge.set(len(alive))
            lost_metric.inc()
            metrics.pool_restarts += 1  # host losses are the dispatcher's pool events
            self.pool.discard(host)
            orphans = [index for index in ledger[host] if index not in acked]
            ledger[host] = []
            self._timeline.append(
                TraceEvent(
                    step,
                    f"host:{host}",
                    "host-lost",
                    INSTANT,
                    args={"reason": reason, "orphans": sorted(orphans)},
                )
            )
            self._emit(
                progress,
                ProgressEvent(
                    HOST_LOST,
                    len(acked),
                    total,
                    detail=(
                        f"host {host} ({reason}); re-leasing "
                        f"{len(orphans)} points"
                    ),
                    elapsed=time.perf_counter() - started,
                ),
            )
            metrics.retries += len(orphans)
            release(orphans, f"host {host} lost")

        # Initial leases: chunk round-robin across every host.
        for host, leased in chunk_leases(spec.points, hosts, chunk_size).items():
            for point in leased:
                submit(host, point)
            if leased:
                self._timeline.append(
                    TraceEvent(
                        step,
                        f"host:{host}",
                        "lease-grant",
                        INSTANT,
                        args={"points": [p.index for p in leased]},
                    )
                )

        # Generous stall ceiling: every point may burn its full budget,
        # each attempt costing at most a full heartbeat window across
        # the pool, plus slack for fault durations and idle sweeps.
        max_steps = (
            (total + 1)
            * (self.max_retries + 1)
            * (self.heartbeat_misses + 2)
            * max(1, self.workers)
            + sum(f.duration for f in self.fault_plan.faults)
            + 100
        )

        try:
            while len(acked) < total:
                step += 1
                steps_gauge.set(step)
                if step > max_steps:
                    remaining = sorted(set(points_by_index) - set(acked))
                    raise SweepExecutionError(
                        f"dispatcher made no progress after {step} steps; "
                        f"points {remaining} never completed",
                        indices=remaining,
                    )
                for fault in injector.due(len(acked)):
                    self._inject(fault, progress, started, len(acked), total, step)
                    faults_metric.inc()
                for host in list(alive):
                    reply = self.pool.step(host)
                    if reply is None:
                        missed[host] += 1
                        if missed[host] >= self.heartbeat_misses:
                            declare_lost(
                                host, f"{missed[host]} consecutive missed heartbeats"
                            )
                        continue
                    missed[host] = 0
                    self._handle_reply(
                        reply, host, acked, ledger, attempts, points_by_index,
                        lease_step, metrics, progress, started, total, step,
                        release,
                    )
        finally:
            if self._own_pool:
                self.pool.close()

        metrics.wall_time = time.perf_counter() - started
        merged = merge_records(list(acked.values()), total)
        self._emit(
            progress,
            ProgressEvent(
                SWEEP_DONE,
                metrics.points_completed,
                total,
                detail=metrics.summary(),
                elapsed=metrics.wall_time,
            ),
        )
        self._timeline.append(
            TraceEvent(step, "dispatch", "sweep-done", INSTANT,
                       args={"summary": metrics.summary()})
        )
        return SweepResult(spec=spec, records=merged, metrics=metrics)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _emit(progress: Optional[ProgressHook], event: ProgressEvent) -> None:
        if progress is not None:
            progress(event)

    def _inject(
        self,
        fault: HostFault,
        progress: Optional[ProgressHook],
        started: float,
        acked: int,
        total: int,
        step: int,
    ) -> None:
        self.pool.inject(fault)
        self._timeline.append(
            TraceEvent(
                step,
                f"host:{fault.host}",
                f"fault-{fault.kind}",
                INSTANT,
                args={"fault": fault.label(), "at_acked": acked},
            )
        )
        self._emit(
            progress,
            ProgressEvent(
                HOST_FAULT,
                acked,
                total,
                detail=fault.label(),
                elapsed=time.perf_counter() - started,
            ),
        )

    def _handle_reply(
        self,
        reply: HostReply,
        host: int,
        acked: Dict[int, PointRecord],
        ledger: Dict[int, List[int]],
        attempts: Dict[int, int],
        points_by_index: Dict[int, SweepPoint],
        lease_step: Dict[int, int],
        metrics: SweepMetrics,
        progress: Optional[ProgressHook],
        started: float,
        total: int,
        step: int,
        release,
    ) -> None:
        obs = obs_runtime.metrics()
        if reply.telemetry is not None:
            # Advisory host snapshot riding along on the reply: stash
            # the latest and surface it to live fleet views.
            self._fleet[host]["telemetry"] = dict(reply.telemetry)
            self._emit(
                progress,
                ProgressEvent(
                    HOST_TELEMETRY,
                    len(acked),
                    total,
                    detail=f"host {host}",
                    elapsed=time.perf_counter() - started,
                    host=host,
                    telemetry=dict(reply.telemetry),
                ),
            )
        if reply.kind == REPLY_RECORD and reply.record is not None:
            record = reply.record
            if record.index in acked:
                # A late duplicate from a healed partition or a
                # re-leased twin; first ack wins, deterministically.
                obs.counter("dispatch.duplicate_acks").inc()
                return
            acked[record.index] = record
            self._fleet[host]["acked"] += 1
            if record.index in ledger[host]:
                ledger[host].remove(record.index)
            metrics.points_completed += 1
            metrics.point_wall_times.append(record.wall_time)
            obs.counter("dispatch.acks").inc()
            self._timeline.append(
                TraceEvent(
                    lease_step.get(record.index, step),
                    f"host:{host}",
                    f"{record.point}[{record.index}]",
                    COMPLETE,
                    dur=max(0, step - lease_step.get(record.index, step)),
                    args={"attempts": record.attempts, "seed": record.seed},
                )
            )
            self._emit(
                progress,
                ProgressEvent(
                    POINT_DONE,
                    metrics.points_completed,
                    total,
                    point=points_by_index.get(record.index),
                    record=record,
                    elapsed=time.perf_counter() - started,
                ),
            )
            return
        if reply.kind == REPLY_ERROR and reply.index is not None:
            point = points_by_index[reply.index]
            self._fleet[host]["errors"] += 1
            if reply.index in ledger[host]:
                ledger[host].remove(reply.index)
            if attempts[reply.index] >= self.max_retries + 1:
                raise SweepExecutionError(
                    f"point {point.label()} failed after "
                    f"{attempts[reply.index]} attempts: {reply.error}",
                    indices=(reply.index,),
                )
            metrics.retries += 1
            self._emit(
                progress,
                ProgressEvent(
                    POINT_RETRY,
                    metrics.points_completed,
                    total,
                    point=point,
                    detail=reply.error,
                    elapsed=time.perf_counter() - started,
                ),
            )
            release([reply.index], f"point error on host {host}")
            return
        if reply.kind == REPLY_IDLE:
            # Ledger/idle reconciliation: an idle host with pending
            # ledger entries silently lost those results (partition);
            # re-lease them.
            orphans = [index for index in ledger[host] if index not in acked]
            # Acked entries left in the ledger are just stale
            # bookkeeping from duplicate paths; drop them.
            ledger[host] = []
            if orphans:
                metrics.retries += len(orphans)
                release(orphans, f"host {host} idle with unacked lease")
            return
        # REPLY_BUSY and anything else: pure heartbeat.
