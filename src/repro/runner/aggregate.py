"""Merge sweep records into the existing analysis-layer outputs.

The runner's records are plain per-point mappings; this module folds
them back into the shapes :mod:`repro.analysis` already renders --
Figure 2 threshold series, Figure 3 coverage curves with Table 4 C
rows -- so a sharded sweep and the serial benchmarks produce the same
exhibit text.  Only ``record.values`` (the deterministic payload) is
read; wall times and worker ids never reach an exhibit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.coverage import relative_coverage_series
from repro.analysis.tables import render_fig2, render_series_figure
from repro.runner.sweep import SweepResult


def fig2_series(result: SweepResult) -> Dict[float, List[Tuple[int, float]]]:
    """Group detection-cell records into per-threshold Figure 2 lines:
    ``{threshold: [(ratio, % detected), ...]}``."""
    series: Dict[float, List[Tuple[int, float]]] = {}
    for values in result.values():
        series.setdefault(values["threshold"], []).append(
            (values["ratio"], values["detection_rate"] * 100.0)
        )
    return {threshold: sorted(points) for threshold, points in series.items()}


def fig2_grid(result: SweepResult) -> Dict[Tuple[float, int], Dict[str, float]]:
    """Records keyed like ``detection_grid`` output: (threshold, ratio)
    -> the cell's value mapping."""
    return {
        (values["threshold"], values["ratio"]): values for values in result.values()
    }


def render_fig2_sweep(result: SweepResult) -> str:
    return render_fig2(fig2_series(result))


def ratio_label(ratio: int) -> str:
    return f"1/{ratio}"


def coverage_relative(result: SweepResult) -> Dict[str, float]:
    """Table 4 C row from ratio-crawl records: coverage of each
    ratio-limited crawl relative to the unrestricted (ratio 1) one."""
    counts = {ratio_label(v["ratio"]): v["distinct_ips"] for v in result.values()}
    baseline = counts.get(ratio_label(1))
    if not baseline:
        raise ValueError("coverage_relative needs a ratio-1 baseline point")
    return {label: count / baseline for label, count in counts.items()}


def coverage_series(result: SweepResult) -> Dict[str, List[Tuple[float, int]]]:
    """Per-ratio cumulative coverage curves (Figure 3 lines)."""
    return {
        ratio_label(values["ratio"]): [
            (time, count) for time, count in values["series"]
        ]
        for values in result.values()
    }


def render_fig3_sweep(result: SweepResult, title: str, family: str) -> str:
    text = render_series_figure(title, coverage_series(result))
    relative = coverage_relative(result)
    text += f"\n\nC_{family} (relative coverage): " + "  ".join(
        f"{label}={value * 100:.0f}%" for label, value in relative.items()
    )
    return text


def render_generic(result: SweepResult) -> str:
    """Fallback renderer: one aligned row of values per point."""
    rows = result.values()
    if not rows:
        return "(empty sweep)"
    columns = sorted({key for values in rows for key in values})
    cells = [[_fmt(values.get(column)) for column in columns] for values in rows]
    widths = [
        max(len(column), max(len(row[i]) for row in cells)) + 2
        for i, column in enumerate(columns)
    ]
    lines = ["".join(c.rjust(w) for c, w in zip(columns, widths))]
    for row in cells:
        lines.append("".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, dict)):
        return f"<{len(value)} items>"
    return str(value)


#: CLI renderers by aggregator name (see SweepSpec.aggregator).
AGGREGATORS: Dict[str, Callable[[SweepResult], str]] = {
    "fig2": render_fig2_sweep,
    "fig3-zeus": lambda result: render_fig3_sweep(
        result,
        "Figure 3a: Zeus bots crawled for varying contact ratio (sweep runner)",
        "Zeus",
    ),
    "fig3-sality": lambda result: render_fig3_sweep(
        result,
        "Figure 3b: Sality bots crawled for varying contact ratio (sweep runner)",
        "Sality",
    ),
    "generic": render_generic,
}


def render_result(result: SweepResult) -> str:
    """Render a sweep with its spec's aggregator (generic fallback)."""
    renderer = AGGREGATORS.get(result.spec.aggregator or "generic", render_generic)
    return renderer(result)
