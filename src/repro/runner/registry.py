"""Point-function registry.

Sweep points reference their work by *name* rather than by callable so
a point can cross a process boundary as plain data.  Workers resolve
the name back to a function at execution time; under the default fork
start method, functions registered before the pool spins up (including
test-local closures) are visible in every worker.

A point function has the signature::

    fn(params: Mapping[str, Any], seed: int) -> Mapping[str, Any]

It must draw all randomness from ``seed`` and return a plain picklable
mapping; the runner guarantees nothing else about its environment.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping

PointFunction = Callable[[Mapping[str, Any], int], Mapping[str, Any]]

_POINTS: Dict[str, PointFunction] = {}


def register_point(name: str) -> Callable[[PointFunction], PointFunction]:
    """Decorator: register ``fn`` as the point function ``name``."""

    def wrap(fn: PointFunction) -> PointFunction:
        if name in _POINTS and _POINTS[name] is not fn:
            raise ValueError(f"point function {name!r} already registered")
        _POINTS[name] = fn
        return fn

    return wrap


def resolve_point(name: str) -> PointFunction:
    try:
        return _POINTS[name]
    except KeyError:
        raise KeyError(
            f"unknown point function {name!r}; registered: {sorted(_POINTS)}"
        ) from None


def registered_points() -> List[str]:
    return sorted(_POINTS)
