"""Named sweep builders: the paper's parameter scans as work lists.

Each builder materializes a :class:`~repro.runner.sweep.SweepSpec`
from a root seed plus size knobs.  Seeds are derived, never passed
raw: the *capture* seed (one per sweep, shared by every point so all
points measure the same world) and the per-point child seeds (index-
derived, see ``point_seed``) both come from the root seed, so one
integer reproduces an entire sweep bit-for-bit at any worker count.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.runner.sweep import SweepSpec, make_points
from repro.sim.rng import derive_seed

#: Figure 2 defaults (trimmed ratio axis; the flagship benchmark
#: still sweeps the paper's full 1/1..1/256 axis).
FIG2_THRESHOLDS = (0.02, 0.05, 0.10)
FIG2_RATIOS = (1, 2, 4, 8, 16)

#: Figure 3 defaults (the paper's 1/1..1/32 axis).
FIG3_RATIOS = (1, 2, 4, 8, 16, 32)


def fig2_sweep(
    root_seed: int = 0,
    scale: str = "tiny",
    sensors: int = 24,
    announce_hours: float = 2.0,
    measure_hours: float = 6.0,
    thresholds: Sequence[float] = FIG2_THRESHOLDS,
    ratios: Sequence[int] = FIG2_RATIOS,
    fleet_size: int = 8,
    group_bits: int = 3,
    truth_min_coverage: float = 0.2,
    topology: Optional[str] = None,
) -> SweepSpec:
    """Figure 2, sharded: one point per (threshold, contact ratio)
    cell over one shared capture."""
    capture = {
        "scale": scale,
        "capture_seed": derive_seed(root_seed, "fig2-capture"),
        "sensors": sensors,
        "announce_hours": announce_hours,
        "measure_hours": measure_hours,
        "fleet_size": fleet_size,
        "truth_min_coverage": truth_min_coverage,
        "group_bits": group_bits,
        "detection_seed": derive_seed(root_seed, "fig2-detection"),
    }
    if topology is not None:
        # Only set when requested: absent-vs-None must not perturb the
        # params dicts (and thus goldens) of flat sweeps.
        capture["topology"] = topology
    params_list: List[Mapping[str, Any]] = [
        {**capture, "threshold": threshold, "ratio": ratio}
        for threshold in thresholds
        for ratio in ratios
    ]
    return SweepSpec(
        name="fig2",
        root_seed=root_seed,
        points=make_points(root_seed, "zeus-detection-cell", params_list),
        aggregator="fig2",
    )


def _fig3_sweep(
    family: str,
    point: str,
    root_seed: int,
    scale: str,
    sensors: int,
    announce_hours: float,
    hours: float,
    ratios: Sequence[int],
    topology: Optional[str] = None,
) -> SweepSpec:
    capture = {
        "scale": scale,
        "capture_seed": derive_seed(root_seed, f"fig3-{family}-capture"),
        "sensors": sensors,
        "announce_hours": announce_hours,
        "hours": hours,
    }
    if topology is not None:
        capture["topology"] = topology
    params_list: List[Mapping[str, Any]] = [
        {**capture, "ratio": ratio} for ratio in ratios
    ]
    return SweepSpec(
        name=f"fig3-{family}",
        root_seed=root_seed,
        points=make_points(root_seed, point, params_list),
        aggregator=f"fig3-{family}",
    )


def fig3_zeus_sweep(
    root_seed: int = 0,
    scale: str = "tiny",
    sensors: int = 8,
    announce_hours: float = 2.0,
    hours: float = 8.0,
    ratios: Sequence[int] = FIG3_RATIOS,
    topology: Optional[str] = None,
) -> SweepSpec:
    """Figure 3a, sharded: one point per contact ratio, each a full
    Zeus simulation from the same capture seed (identical churn)."""
    return _fig3_sweep(
        "zeus",
        "zeus-ratio-crawl",
        root_seed,
        scale,
        sensors,
        announce_hours,
        hours,
        ratios,
        topology=topology,
    )


def fig3_sality_sweep(
    root_seed: int = 0,
    scale: str = "tiny",
    sensors: int = 8,
    announce_hours: float = 2.0,
    hours: float = 8.0,
    ratios: Sequence[int] = FIG3_RATIOS,
    topology: Optional[str] = None,
) -> SweepSpec:
    """Figure 3b, sharded: as :func:`fig3_zeus_sweep` for Sality."""
    return _fig3_sweep(
        "sality",
        "sality-ratio-crawl",
        root_seed,
        scale,
        sensors,
        announce_hours,
        hours,
        ratios,
        topology=topology,
    )


SWEEPS: Dict[str, Callable[..., SweepSpec]] = {
    "fig2": fig2_sweep,
    "fig3-zeus": fig3_zeus_sweep,
    "fig3-sality": fig3_sality_sweep,
}


def build_sweep(name: str, root_seed: int = 0, **overrides: Any) -> SweepSpec:
    """Materialize a named sweep (CLI entry point)."""
    try:
        builder = SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; available: {sorted(SWEEPS)}") from None
    return builder(root_seed=root_seed, **overrides)
