"""IPv4 addressing primitives.

Addresses are plain unsigned 32-bit ints throughout the codebase (fast
to hash, compare, and mask).  Dotted-quad strings appear only at the
presentation layer.

The /20 subnet granularity shows up twice in the paper: GameOver Zeus
allows at most one peer-list entry per /20 (Section 3.1), and the
crawler detector aggregates reported IPs per subnet, staying accurate
down to /20 and breaking at /19 (Section 6.1.2).  :func:`subnet_key`
implements that masking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set

MAX_IP = 0xFFFFFFFF

# Reserved/special-use ranges (RFC 5735 subset).  Disinformation attacks
# in ZeroAccess padded peer lists with addresses from ranges like these
# (Section 3.3); recon tools should treat them as junk.
_RESERVED_BLOCKS = (
    ("0.0.0.0", 8),
    ("10.0.0.0", 8),
    ("127.0.0.0", 8),
    ("169.254.0.0", 16),
    ("172.16.0.0", 12),
    ("192.0.2.0", 24),
    ("192.168.0.0", 16),
    ("224.0.0.0", 4),
    ("240.0.0.0", 4),
)


def parse_ip(text: str) -> int:
    """Parse dotted-quad ``text`` into an int.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


#: Rendered-address cache: format_ip is on the tracing hot path (every
#: traced net event renders two endpoints) and populations reuse a
#: bounded set of addresses, so memoization pays for itself.  Bounded
#: to keep pathological address scans from growing it without limit.
_FORMAT_CACHE: dict = {}
_FORMAT_CACHE_MAX = 1 << 17


def format_ip(ip: int) -> str:
    """Render an int address as a dotted quad."""
    rendered = _FORMAT_CACHE.get(ip)
    if rendered is None:
        if not 0 <= ip <= MAX_IP:
            raise ValueError(f"address out of range: {ip}")
        rendered = ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))
        if len(_FORMAT_CACHE) < _FORMAT_CACHE_MAX:
            _FORMAT_CACHE[ip] = rendered
    return rendered


#: All 33 netmasks, indexed by prefix length.
_MASKS = tuple(
    (MAX_IP << (32 - prefix)) & MAX_IP if prefix else 0 for prefix in range(33)
)


def prefix_mask(prefix: int) -> int:
    """Netmask for a prefix length, as an int."""
    if not 0 <= prefix <= 32:
        raise ValueError(f"prefix out of range: {prefix}")
    return _MASKS[prefix]


def subnet_key(ip: int, prefix: int) -> int:
    """Network address of ``ip`` under a ``/prefix`` mask.

    Two addresses share a subnet iff their keys match.  The crawler
    detector aggregates hard-hitter reports by this key (/32 == per-IP).
    """
    if not 0 <= prefix <= 32:
        raise ValueError(f"prefix out of range: {prefix}")
    return ip & _MASKS[prefix]


def same_prefix(ip_a: int, ip_b: int, prefix: int) -> bool:
    """True when both addresses fall in the same ``/prefix`` block.

    The Zeus peer-list filter's "one entry per /20" rule and the
    detector's subnet aggregation are both this predicate at different
    prefix lengths.
    """
    if not 0 <= prefix <= 32:
        raise ValueError(f"prefix out of range: {prefix}")
    mask = _MASKS[prefix]
    return (ip_a & mask) == (ip_b & mask)


@dataclass(frozen=True)
class Subnet:
    """A CIDR block."""

    network: int
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"prefix out of range: {self.prefix}")
        if self.network & ~prefix_mask(self.prefix):
            raise ValueError(
                f"{format_ip(self.network)}/{self.prefix} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Subnet":
        """Parse ``"a.b.c.d/n"`` notation."""
        addr, _, prefix = text.partition("/")
        if not prefix:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(subnet_key(parse_ip(addr), int(prefix)), int(prefix))

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix)

    def __contains__(self, ip: int) -> bool:
        return subnet_key(ip, self.prefix) == self.network

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.network, self.network + self.size))

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.prefix}"

    def random_ip(self, rng: random.Random) -> int:
        """Uniform random address inside the block."""
        return self.network + rng.randrange(self.size)

    def subdivide(self, prefix: int) -> List["Subnet"]:
        """Split into equal sub-blocks of the given (longer) prefix."""
        return list(self.blocks(prefix))

    def blocks(self, prefix: int) -> Iterator["Subnet"]:
        """Iterate the ``/prefix`` sub-blocks of this block lazily.

        Prefer this over :meth:`subdivide` when walking a large block
        (a /10 holds 4096 /22s); the allocator-facing topo code streams
        blocks instead of materializing them.
        """
        if prefix < self.prefix:
            raise ValueError("cannot subdivide into a shorter prefix")
        step = 1 << (32 - prefix)
        for net in range(self.network, self.network + self.size, step):
            yield Subnet(net, prefix)


def prefix_of(ip: int, prefix: int) -> Subnet:
    """The ``/prefix`` CIDR block containing ``ip``.

    Convenience over the ad-hoc ``Subnet(ip & mask, n)`` spellings that
    used to live at call sites.
    """
    return Subnet(subnet_key(ip, prefix), prefix)


_RESERVED: List[Subnet] = [
    Subnet(parse_ip(addr), prefix) for addr, prefix in _RESERVED_BLOCKS
]


def is_reserved(ip: int) -> bool:
    """True for special-use addresses (junk when seen in a peer list)."""
    return any(ip in block for block in _RESERVED)


def ip_in_any(ip: int, blocks: Iterable[Subnet]) -> bool:
    """True if ``ip`` falls in any of ``blocks``."""
    return any(ip in block for block in blocks)


class AddressPool:
    """Allocates unique public addresses from a set of CIDR blocks.

    Population builders use one pool per scenario so bots, sensors, and
    crawlers never collide on an address unless a test asks them to.
    """

    def __init__(self, blocks: Sequence[Subnet], rng: random.Random) -> None:
        if not blocks:
            raise ValueError("address pool needs at least one block")
        self._blocks = list(blocks)
        self._rng = rng
        self._allocated: Set[int] = set()

    @property
    def allocated(self) -> Set[int]:
        return set(self._allocated)

    @property
    def capacity(self) -> int:
        return sum(block.size for block in self._blocks)

    def allocate(self, within: Optional[Subnet] = None) -> int:
        """Allocate a fresh address, optionally inside ``within``.

        Random-probes first (cheap when pools are sparse), then falls
        back to a linear scan so exhaustion is detected reliably.
        """
        blocks = [within] if within is not None else self._blocks
        if within is not None and not any(
            subnet_key(within.network, b.prefix) == b.network and within.prefix >= b.prefix
            for b in self._blocks
        ):
            raise ValueError(f"{within} is not inside this pool")
        for _ in range(64):
            block = self._rng.choice(blocks)
            ip = block.random_ip(self._rng)
            if ip not in self._allocated and not is_reserved(ip):
                self._allocated.add(ip)
                return ip
        for block in blocks:
            for ip in block:
                if ip not in self._allocated and not is_reserved(ip):
                    self._allocated.add(ip)
                    return ip
        raise RuntimeError("address pool exhausted")

    def release(self, ip: int) -> None:
        """Return an address to the pool (used by IP churn)."""
        self._allocated.discard(ip)
