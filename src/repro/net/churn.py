"""Churn models: diurnal cycles, IP reassignment, infection churn.

Passive disturbances to recon accuracy (Rajab et al., Kanich et al.,
and the P2PWNED study) bound the useful crawl window: crawling shorter
than 24 hours misses the diurnal trough population, crawling longer
double-counts bots whose dynamic IPs changed (address aliasing).  The
paper's detector therefore uses 24-hour per-bot request histories and
hourly detection rounds.  These models create those effects.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.clock import DAY, HOUR
from repro.sim.scheduler import Scheduler


@dataclass
class DiurnalModel:
    """Sinusoidal online-probability model.

    ``p(t) = base + amplitude * sin(2*pi*(t - peak)/DAY)`` clamped to
    [min_p, max_p].  With the defaults, roughly 75% of bots are online
    at the daily peak and 35% at the trough -- consistent with the
    diurnal swings reported for Zeus and Sality.
    """

    base: float = 0.55
    amplitude: float = 0.20
    peak_hour: float = 20.0  # local evening
    min_p: float = 0.05
    max_p: float = 0.98

    def online_probability(self, time: float) -> float:
        phase = 2.0 * math.pi * (time / DAY - self.peak_hour / 24.0)
        p = self.base + self.amplitude * math.cos(phase)
        return max(self.min_p, min(self.max_p, p))


@dataclass
class ChurnConfig:
    """Session churn knobs.

    ``mean_session`` / ``mean_offline`` are exponential-holding-time
    means; the diurnal model biases the decision to come back online.
    """

    mean_session: float = 6 * HOUR
    mean_offline: float = 3 * HOUR
    diurnal: Optional[DiurnalModel] = None

    def __post_init__(self) -> None:
        if self.mean_session <= 0 or self.mean_offline <= 0:
            raise ValueError("holding times must be positive")


class ChurnProcess:
    """Drives online/offline sessions for a set of nodes.

    The process calls ``on_up(node_id)`` / ``on_down(node_id)`` at
    session boundaries.  Node identity is opaque to the process.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        config: ChurnConfig,
        on_up: Callable[[str], None],
        on_down: Callable[[str], None],
    ) -> None:
        self.scheduler = scheduler
        self.rng = rng
        self.config = config
        self.on_up = on_up
        self.on_down = on_down
        self._online: Dict[str, bool] = {}
        self.transitions = 0

    def add_node(self, node_id: str, online: bool = True) -> None:
        """Register a node and start its session cycle."""
        if node_id in self._online:
            raise ValueError(f"node already managed: {node_id}")
        self._online[node_id] = online
        self._schedule_flip(node_id)

    def is_online(self, node_id: str) -> bool:
        return self._online.get(node_id, False)

    def online_count(self) -> int:
        return sum(1 for up in self._online.values() if up)

    def _schedule_flip(self, node_id: str) -> None:
        if self._online[node_id]:
            delay = self.rng.expovariate(1.0 / self.config.mean_session)
        else:
            delay = self.rng.expovariate(1.0 / self.config.mean_offline)
        self.scheduler.call_later(max(1.0, delay), self._flip, node_id)

    def _flip(self, node_id: str) -> None:
        currently_up = self._online[node_id]
        if currently_up:
            self._go_down(node_id)
        else:
            # Diurnal bias: at the trough, offline bots tend to stay
            # offline a while longer instead of returning immediately.
            diurnal = self.config.diurnal
            if diurnal is not None:
                p = diurnal.online_probability(self.scheduler.now)
                if self.rng.random() > p:
                    self._schedule_flip(node_id)
                    return
            self._go_up(node_id)
        self._schedule_flip(node_id)

    def _go_up(self, node_id: str) -> None:
        self._online[node_id] = True
        self.transitions += 1
        self.on_up(node_id)

    def _go_down(self, node_id: str) -> None:
        self._online[node_id] = False
        self.transitions += 1
        self.on_down(node_id)


class IpChurnProcess:
    """DHCP-style IP reassignment, the source of address aliasing.

    Every ``mean_lease`` seconds (exponential), a managed node gets a
    fresh address via ``reassign(node_id)``; the callback performs the
    actual rebind and returns nothing.  Crawls that span many leases
    will count the same bot under several addresses, inflating size
    estimates -- the aliasing effect that caps useful crawls at ~24h.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        reassign: Callable[[str], None],
        mean_lease: float = 2 * DAY,
    ) -> None:
        if mean_lease <= 0:
            raise ValueError("mean_lease must be positive")
        self.scheduler = scheduler
        self.rng = rng
        self.reassign = reassign
        self.mean_lease = mean_lease
        self.reassignments = 0
        self._managed: List[str] = []

    def add_node(self, node_id: str) -> None:
        self._managed.append(node_id)
        self._schedule(node_id)

    def _schedule(self, node_id: str) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_lease)
        self.scheduler.call_later(max(60.0, delay), self._fire, node_id)

    def _fire(self, node_id: str) -> None:
        self.reassignments += 1
        self.reassign(node_id)
        self._schedule(node_id)
