"""Churn models: diurnal cycles, IP reassignment, infection churn.

Passive disturbances to recon accuracy (Rajab et al., Kanich et al.,
and the P2PWNED study) bound the useful crawl window: crawling shorter
than 24 hours misses the diurnal trough population, crawling longer
double-counts bots whose dynamic IPs changed (address aliasing).  The
paper's detector therefore uses 24-hour per-bot request histories and
hourly detection rounds.  These models create those effects.
"""

from __future__ import annotations

import math
import random
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.clock import DAY, HOUR
from repro.sim.scheduler import Scheduler, Timer

try:  # vectorized deadline scans; the array fallback is ~100x slower
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships in the toolchain
    _np = None


def _due_indices(deadlines: "array", now: float) -> List[int]:
    """Indices whose deadline has arrived (normally a handful)."""
    n = len(deadlines)
    if _np is not None:
        view = _np.frombuffer(deadlines, dtype=_np.float64, count=n)
        return _np.flatnonzero(view <= now).tolist()
    return [i for i in range(n) if deadlines[i] <= now]


def _min_deadline(deadlines: "array") -> float:
    if not len(deadlines):
        return math.inf
    if _np is not None:
        view = _np.frombuffer(deadlines, dtype=_np.float64, count=len(deadlines))
        return float(view.min())
    return min(deadlines)


@dataclass
class DiurnalModel:
    """Sinusoidal online-probability model.

    ``p(t) = base + amplitude * sin(2*pi*(t - peak)/DAY)`` clamped to
    [min_p, max_p].  With the defaults, roughly 75% of bots are online
    at the daily peak and 35% at the trough -- consistent with the
    diurnal swings reported for Zeus and Sality.
    """

    base: float = 0.55
    amplitude: float = 0.20
    peak_hour: float = 20.0  # local evening
    min_p: float = 0.05
    max_p: float = 0.98

    def online_probability(self, time: float) -> float:
        phase = 2.0 * math.pi * (time / DAY - self.peak_hour / 24.0)
        p = self.base + self.amplitude * math.cos(phase)
        return max(self.min_p, min(self.max_p, p))


@dataclass
class ChurnConfig:
    """Session churn knobs.

    ``mean_session`` / ``mean_offline`` are exponential-holding-time
    means; the diurnal model biases the decision to come back online.
    """

    mean_session: float = 6 * HOUR
    mean_offline: float = 3 * HOUR
    diurnal: Optional[DiurnalModel] = None

    def __post_init__(self) -> None:
        if self.mean_session <= 0 or self.mean_offline <= 0:
            raise ValueError("holding times must be positive")


class ChurnProcess:
    """Drives online/offline sessions for a set of nodes.

    The process calls ``on_up(node_id)`` / ``on_down(node_id)`` at
    session boundaries.  Node identity is opaque to the process.

    Instead of one scheduler timer per node (a timer + closure per bot,
    forever), per-node flip deadlines live in a flat float array and a
    *single* timer sits at the earliest one; each firing scans the
    array for due nodes.  Flip times and RNG draw order are exactly
    those of the timer-per-node scheme: deadlines equal the old firing
    times, each node draws its next holding time right after flipping,
    and simultaneous flips are processed in scheduling order (the old
    scheduler-sequence tie-break).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        config: ChurnConfig,
        on_up: Callable[[str], None],
        on_down: Callable[[str], None],
    ) -> None:
        self.scheduler = scheduler
        self.rng = rng
        self.config = config
        self.on_up = on_up
        self.on_down = on_down
        self.transitions = 0
        self._ids: List[str] = []
        self._index: Dict[str, int] = {}
        self._up = bytearray()
        self._deadline = array("d")
        self._stamp = array("Q")  # scheduling order, for same-time ties
        self._stamps = 0
        self._timer: Optional[Timer] = None

    def add_node(self, node_id: str, online: bool = True) -> None:
        """Register a node and start its session cycle."""
        if node_id in self._index:
            raise ValueError(f"node already managed: {node_id}")
        index = len(self._ids)
        self._index[node_id] = index
        self._ids.append(node_id)
        self._up.append(1 if online else 0)
        self._deadline.append(0.0)
        self._stamp.append(0)
        self._arm(index)
        self._retime(self._deadline[index])

    def is_online(self, node_id: str) -> bool:
        index = self._index.get(node_id)
        return False if index is None else bool(self._up[index])

    def online_count(self) -> int:
        return sum(self._up)

    def _arm(self, index: int) -> None:
        """Draw the next holding time for a node's *current* state."""
        if self._up[index]:
            delay = self.rng.expovariate(1.0 / self.config.mean_session)
        else:
            delay = self.rng.expovariate(1.0 / self.config.mean_offline)
        self._deadline[index] = self.scheduler.now + max(1.0, delay)
        self._stamp[index] = self._stamps
        self._stamps += 1

    def _retime(self, deadline: float) -> None:
        """Pull the single timer earlier if ``deadline`` beats it."""
        timer = self._timer
        if timer is not None:
            if timer.time <= deadline:
                return
            timer.cancel()
        self._timer = self.scheduler.call_at(deadline, self._fire)

    def _fire(self) -> None:
        self._timer = None
        now = self.scheduler.now
        due = _due_indices(self._deadline, now)
        if len(due) > 1:
            due.sort(key=self._stamp.__getitem__)
        for index in due:
            if self._up[index]:
                self._go_down(index)
            else:
                # Diurnal bias: at the trough, offline bots tend to stay
                # offline a while longer instead of returning immediately.
                diurnal = self.config.diurnal
                if diurnal is not None:
                    p = diurnal.online_probability(now)
                    if self.rng.random() > p:
                        self._arm(index)
                        continue
                self._go_up(index)
            self._arm(index)
        next_deadline = _min_deadline(self._deadline)
        if next_deadline < math.inf:
            self._retime(next_deadline)

    def _go_up(self, index: int) -> None:
        self._up[index] = 1
        self.transitions += 1
        self.on_up(self._ids[index])

    def _go_down(self, index: int) -> None:
        self._up[index] = 0
        self.transitions += 1
        self.on_down(self._ids[index])


class IpChurnProcess:
    """DHCP-style IP reassignment, the source of address aliasing.

    Every ``mean_lease`` seconds (exponential), a managed node gets a
    fresh address via ``reassign(node_id)``; the callback performs the
    actual rebind and returns nothing.  Crawls that span many leases
    will count the same bot under several addresses, inflating size
    estimates -- the aliasing effect that caps useful crawls at ~24h.

    Like :class:`ChurnProcess`, lease expiries live in one deadline
    array scanned from a single timer rather than one timer per node.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        reassign: Callable[[str], None],
        mean_lease: float = 2 * DAY,
    ) -> None:
        if mean_lease <= 0:
            raise ValueError("mean_lease must be positive")
        self.scheduler = scheduler
        self.rng = rng
        self.reassign = reassign
        self.mean_lease = mean_lease
        self.reassignments = 0
        self._managed: List[str] = []
        self._deadline = array("d")
        self._stamp = array("Q")
        self._stamps = 0
        self._timer: Optional[Timer] = None

    def add_node(self, node_id: str) -> None:
        index = len(self._managed)
        self._managed.append(node_id)
        self._deadline.append(0.0)
        self._stamp.append(0)
        self._arm(index)
        self._retime(self._deadline[index])

    def _arm(self, index: int) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_lease)
        self._deadline[index] = self.scheduler.now + max(60.0, delay)
        self._stamp[index] = self._stamps
        self._stamps += 1

    def _retime(self, deadline: float) -> None:
        timer = self._timer
        if timer is not None:
            if timer.time <= deadline:
                return
            timer.cancel()
        self._timer = self.scheduler.call_at(deadline, self._fire)

    def _fire(self) -> None:
        self._timer = None
        now = self.scheduler.now
        due = _due_indices(self._deadline, now)
        if len(due) > 1:
            due.sort(key=self._stamp.__getitem__)
        for index in due:
            self.reassignments += 1
            self.reassign(self._managed[index])
            self._arm(index)
        next_deadline = _min_deadline(self._deadline)
        if next_deadline < math.inf:
            self._retime(next_deadline)
