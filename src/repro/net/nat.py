"""Routability and NAT modelling.

The paper reports that 60-87% of P2P botnet populations are
*non-routable*: behind NAT gateways or firewalls, able to open outbound
connections but unreachable by unsolicited inbound traffic.  This
asymmetry is the root of the crawler-vs-sensor coverage gap (Fig. 1 and
Table 6): crawlers can only contact routable bots, while sensors hear
from NATed bots that contact them, and can reply through the punch-hole
the outbound connection created.

Two pieces live here:

* :class:`RoutabilityTable` -- tracks which endpoints accept unsolicited
  inbound traffic, and the punch-holes opened by outbound traffic from
  non-routable endpoints.
* :class:`NatGateway` -- groups several non-routable bots behind one
  shared public IP with distinct mapped ports.  Shared IPs matter for
  the detector's false positives: multiple busy NATed bots behind one
  IP look like a single hard-hitting address (Section 6.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import format_ip

# A punch-hole stays open this long after the last outbound packet
# (typical consumer-NAT UDP/TCP mapping lifetime).
DEFAULT_HOLE_TTL = 120.0


class RoutabilityTable:
    """Tracks endpoint routability and NAT punch-holes.

    Keys are endpoint tuples ``(ip, port)``.  The transport consults
    this table on every delivery: traffic to a non-routable endpoint is
    dropped unless the destination previously sent traffic to the
    source's IP (which opened a hole).

    A hole is stored as a bare expiry timestamp -- long runs open
    millions of them, so there is no per-hole object.  Expired holes
    are normally deleted when re-checked; quiet pairs are reclaimed by
    a size-triggered sweep (deterministic: keyed on table size and
    simulated time only, and removing an expired hole is
    behavior-neutral).
    """

    #: Never sweep below this size; the threshold then doubles with the
    #: live population so sweep cost stays amortized O(1) per insert.
    SWEEP_MIN = 4096

    def __init__(self, hole_ttl: float = DEFAULT_HOLE_TTL) -> None:
        self.hole_ttl = hole_ttl
        self._routable: Dict[Tuple[int, int], bool] = {}
        # (non-routable endpoint, remote ip) -> expiry time
        self._holes: Dict[Tuple[Tuple[int, int], int], float] = {}
        self._sweep_at = self.SWEEP_MIN

    def register(self, endpoint: Tuple[int, int], routable: bool) -> None:
        self._routable[endpoint] = routable

    def unregister(self, endpoint: Tuple[int, int]) -> None:
        self._routable.pop(endpoint, None)
        stale = [key for key in self._holes if key[0] == endpoint]
        for key in stale:
            del self._holes[key]

    def is_registered(self, endpoint: Tuple[int, int]) -> bool:
        return endpoint in self._routable

    def is_routable(self, endpoint: Tuple[int, int]) -> bool:
        return self._routable.get(endpoint, False)

    def note_outbound(self, src: Tuple[int, int], dst_ip: int, now: float) -> None:
        """Record outbound traffic, opening/refreshing a punch-hole."""
        if self._routable.get(src) is False:
            holes = self._holes
            holes[(src, dst_ip)] = now + self.hole_ttl
            if len(holes) >= self._sweep_at:
                expired = [key for key, expires in holes.items() if expires < now]
                for key in expired:
                    del holes[key]
                self._sweep_at = max(self.SWEEP_MIN, 2 * len(holes))

    def inbound_allowed(self, dst: Tuple[int, int], src_ip: int, now: float) -> bool:
        """Is delivery from ``src_ip`` to endpoint ``dst`` permitted?"""
        routable = self._routable.get(dst)
        if routable is None:
            return False  # nobody bound there
        if routable:
            return True
        expires = self._holes.get((dst, src_ip))
        if expires is None:
            return False
        if expires < now:
            del self._holes[(dst, src_ip)]
            return False
        return True

    def open_holes(self, dst: Tuple[int, int], now: float) -> Set[int]:
        """IPs currently allowed to reach non-routable endpoint ``dst``."""
        return {
            remote_ip
            for (endpoint, remote_ip), expires in self._holes.items()
            if endpoint == dst and expires >= now
        }


@dataclass
class NatGateway:
    """A NAT device sharing one public IP among several inside hosts.

    Each inside host is assigned a unique mapped port on the public IP,
    so distinct NATed bots present distinct endpoints but an identical
    source *address* -- exactly the aliasing that produces detector
    false positives at low thresholds (paper Table 4, t=1%: "most of
    which are actually sets of NATed bots sharing a single IP").
    """

    public_ip: int
    base_port: int = 40000
    _next_offset: int = 0
    _mapped: List[Tuple[int, int]] = field(default_factory=list)

    def map_host(self) -> Tuple[int, int]:
        """Allocate a public endpoint for one more inside host."""
        port = self.base_port + self._next_offset
        if port > 65535:
            raise RuntimeError(f"NAT {format_ip(self.public_ip)} out of ports")
        self._next_offset += 1
        endpoint = (self.public_ip, port)
        self._mapped.append(endpoint)
        return endpoint

    @property
    def mapped_endpoints(self) -> List[Tuple[int, int]]:
        return list(self._mapped)

    @property
    def occupancy(self) -> int:
        return len(self._mapped)


def build_nat_gateways(
    public_ips: List[int],
    hosts_per_gateway: List[int],
    base_port: int = 40000,
) -> List[NatGateway]:
    """Create gateways with given occupancies (one per public IP)."""
    if len(public_ips) != len(hosts_per_gateway):
        raise ValueError("public_ips and hosts_per_gateway must align")
    gateways = []
    for ip, count in zip(public_ips, hosts_per_gateway):
        gw = NatGateway(public_ip=ip, base_port=base_port)
        for _ in range(count):
            gw.map_host()
        gateways.append(gw)
    return gateways
