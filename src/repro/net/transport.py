"""Message transport with latency, loss, NAT semantics, and taps.

The transport delivers opaque byte payloads between bound endpoints via
the simulation scheduler.  Three properties matter to the paper:

* **Non-spoofable source identity** -- the crawler-detection algorithm
  assumes a TCP-like transport where the source address of a request
  cannot be forged (Section 4.3).  Here, a send is only accepted from a
  currently *bound* endpoint, and the source stamped on the delivered
  message is the transport's own record, never caller-supplied data.
* **NAT semantics** -- deliveries to non-routable endpoints succeed only
  through a punch-hole opened by prior outbound traffic (see
  :mod:`repro.net.nat`).
* **Taps** -- sensors and measurement code observe traffic through tap
  callbacks without perturbing delivery, the moral equivalent of the
  paper's sensor request logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.address import format_ip
from repro.net.nat import RoutabilityTable
from repro.obs import runtime as obs
from repro.sim.scheduler import Scheduler


@dataclass(frozen=True, order=True)
class Endpoint:
    """A transport endpoint: public IP + port."""

    ip: int
    port: int

    def __post_init__(self) -> None:
        if not 0 <= self.ip <= 0xFFFFFFFF:
            raise ValueError(f"bad ip: {self.ip}")
        if not 0 < self.port <= 65535:
            raise ValueError(f"bad port: {self.port}")

    def __str__(self) -> str:
        return f"{format_ip(self.ip)}:{self.port}"

    @property
    def key(self) -> Tuple[int, int]:
        return (self.ip, self.port)


@dataclass(frozen=True)
class Message:
    """A delivered (or dropped) payload with transport metadata.

    ``src`` is stamped by the transport and therefore trustworthy.
    """

    src: Endpoint
    dst: Endpoint
    payload: bytes
    sent_at: float
    delivered_at: float


Handler = Callable[[Message], None]
Tap = Callable[[Message, bool], None]
#: Drop observers receive the message plus a reason string -- one of
#: ``unbound_src``, ``unbound_dst``, ``unroutable``, ``loss``, or a
#: fault-injection reason (``partition``, ``burst_loss``).
DropTap = Callable[[Message, str], None]


@dataclass
class TransportConfig:
    """Latency/loss knobs.

    Defaults model a broadband WAN path: 20-200 ms one-way latency and
    1% loss.  Experiments that need determinism beyond seeding can zero
    the jitter and loss.  ``duplicate_rate`` and ``reorder_rate`` are
    fault knobs (off by default): a duplicated message is delivered
    twice with independent latencies; a reordered message suffers
    ``reorder_extra`` additional latency, enough to arrive after
    messages sent later.
    """

    latency_min: float = 0.020
    latency_max: float = 0.200
    loss_rate: float = 0.01
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_extra: float = 0.5

    def __post_init__(self) -> None:
        if self.latency_min < 0 or self.latency_max < self.latency_min:
            raise ValueError("invalid latency range")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        if not 0.0 <= self.reorder_rate < 1.0:
            raise ValueError("reorder_rate must be in [0, 1)")
        if self.reorder_extra <= 0:
            raise ValueError("reorder_extra must be positive")


@dataclass
class TransportStats:
    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_unroutable: int = 0
    dropped_unbound_dst: int = 0
    rejected_unbound_src: int = 0
    duplicated: int = 0
    reordered: int = 0


class Transport:
    """The shared message fabric of one simulated network."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        config: Optional[TransportConfig] = None,
        routability: Optional[RoutabilityTable] = None,
    ) -> None:
        self.scheduler = scheduler
        self.rng = rng
        self.config = config if config is not None else TransportConfig()
        self.routability = routability if routability is not None else RoutabilityTable()
        self.stats = TransportStats()
        self._handlers: Dict[Tuple[int, int], Handler] = {}
        self._taps: List[Tap] = []
        self._drop_taps: List[DropTap] = []
        # Observability: capture the ambient context at construction.
        # Disabled (the default) leaves falsy/no-op stubs here, so the
        # send/deliver paths pay one branch and no-op calls per event.
        self._trace = obs.tracer()
        registry = obs.metrics()
        self._m_sent = registry.counter("net.sent", "messages accepted for delivery")
        self._m_delivered = registry.counter("net.delivered", "messages handed to a handler")
        self._m_dropped = registry.counter("net.dropped", "drops by reason")
        self._m_duplicated = registry.counter("net.duplicated", "messages duplicated in flight")
        self._m_reordered = registry.counter("net.reordered", "messages delayed past later sends")

    # -- binding -------------------------------------------------------

    def bind(self, endpoint: Endpoint, handler: Handler, routable: bool = True) -> None:
        """Attach ``handler`` to ``endpoint``.

        ``routable=False`` registers a NATed/firewalled endpoint that
        only receives traffic through punch-holes.
        """
        if endpoint.key in self._handlers:
            raise ValueError(f"endpoint already bound: {endpoint}")
        self._handlers[endpoint.key] = handler
        self.routability.register(endpoint.key, routable)

    def unbind(self, endpoint: Endpoint) -> None:
        self._handlers.pop(endpoint.key, None)
        self.routability.unregister(endpoint.key)

    def is_bound(self, endpoint: Endpoint) -> bool:
        return endpoint.key in self._handlers

    def rebind(self, old: Endpoint, new: Endpoint) -> None:
        """Atomically move a handler to a new endpoint (IP churn)."""
        handler = self._handlers.get(old.key)
        if handler is None:
            raise ValueError(f"endpoint not bound: {old}")
        routable = self.routability.is_routable(old.key)
        self.unbind(old)
        self.bind(new, handler, routable=routable)

    # -- taps ----------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Observe every send attempt: ``tap(message, delivered)``."""
        self._taps.append(tap)

    def add_drop_tap(self, tap: DropTap) -> None:
        """Observe every drop with its reason: ``tap(message, reason)``.

        Unlike plain taps, drop taps also see sends rejected at the
        source (reason ``unbound_src``), so chaos experiments can
        account for everything the network ate.
        """
        self._drop_taps.append(tap)

    def _notify_drop(self, message: Message, reason: str) -> None:
        for tap in self._drop_taps:
            tap(message, reason)

    # -- sending -------------------------------------------------------

    def send(self, src: Endpoint, dst: Endpoint, payload: bytes) -> bool:
        """Queue ``payload`` from ``src`` to ``dst``.

        Returns True if the message was accepted for (attempted)
        delivery.  Acceptance does not guarantee delivery: loss and NAT
        filtering happen at delivery time.
        """
        now = self.scheduler.now
        if src.key not in self._handlers:
            # Non-spoofable identity: you can only speak as an endpoint
            # you have bound.
            self.stats.rejected_unbound_src += 1
            self._m_dropped.labels("unbound_src").inc()
            if self._trace:
                self._trace.instant(
                    now, "net", "drop", reason="unbound_src", src=str(src), dst=str(dst)
                )
            if self._drop_taps:
                self._notify_drop(
                    Message(src=src, dst=dst, payload=payload, sent_at=now, delivered_at=now),
                    "unbound_src",
                )
            return False
        self.routability.note_outbound(src.key, dst.ip, now)
        self.stats.sent += 1
        self._m_sent.inc()
        latency = self._latency()
        reordered = False
        if self.config.reorder_rate and self.rng.random() < self.config.reorder_rate:
            # Enough extra latency to arrive behind messages sent later.
            self.stats.reordered += 1
            self._m_reordered.inc()
            reordered = True
            latency += self.config.reorder_extra
        sent_at = now
        self.scheduler.call_later(latency, self._deliver, src, dst, payload, sent_at)
        duplicated = False
        if self.config.duplicate_rate and self.rng.random() < self.config.duplicate_rate:
            self.stats.duplicated += 1
            self._m_duplicated.inc()
            duplicated = True
            self.scheduler.call_later(self._latency(), self._deliver, src, dst, payload, sent_at)
        if self._trace:
            args = {"src": str(src), "dst": str(dst), "bytes": len(payload)}
            if reordered:
                args["reordered"] = True
            if duplicated:
                args["duplicated"] = True
            self._trace.instant(now, "net", "send", **args)
        return True

    def _latency(self) -> float:
        """One-way latency for a single delivery attempt."""
        return self.rng.uniform(self.config.latency_min, self.config.latency_max)

    def _drop_reason(self, message: Message) -> Optional[str]:
        """Decide a delivery attempt's fate; None means deliver.

        Subclasses (fault injection) extend this with additional drop
        causes; each cause increments its own counter here so stats
        stay consistent with the returned reason.
        """
        now = message.delivered_at
        if message.dst.key not in self._handlers:
            self.stats.dropped_unbound_dst += 1
            return "unbound_dst"
        if not self.routability.inbound_allowed(message.dst.key, message.src.ip, now):
            self.stats.dropped_unroutable += 1
            return "unroutable"
        if self.config.loss_rate and self.rng.random() < self.config.loss_rate:
            self.stats.dropped_loss += 1
            return "loss"
        return None

    def _deliver(self, src: Endpoint, dst: Endpoint, payload: bytes, sent_at: float) -> None:
        now = self.scheduler.now
        message = Message(src=src, dst=dst, payload=payload, sent_at=sent_at, delivered_at=now)
        reason = self._drop_reason(message)
        delivered = reason is None
        for tap in self._taps:
            tap(message, delivered)
        if delivered:
            self.stats.delivered += 1
            self._m_delivered.inc()
            if self._trace:
                self._trace.instant(
                    now, "net", "deliver",
                    src=str(src), dst=str(dst), latency=round(now - sent_at, 6),
                )
            self._handlers[dst.key](message)
        else:
            self._m_dropped.labels(reason).inc()
            if self._trace:
                self._trace.instant(
                    now, "net", "drop", reason=reason, src=str(src), dst=str(dst)
                )
            self._notify_drop(message, reason)
