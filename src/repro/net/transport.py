"""Message transport with latency, loss, NAT semantics, and taps.

The transport delivers opaque byte payloads between bound endpoints via
the simulation scheduler.  Three properties matter to the paper:

* **Non-spoofable source identity** -- the crawler-detection algorithm
  assumes a TCP-like transport where the source address of a request
  cannot be forged (Section 4.3).  Here, a send is only accepted from a
  currently *bound* endpoint, and the source stamped on the delivered
  message is the transport's own record, never caller-supplied data.
* **NAT semantics** -- deliveries to non-routable endpoints succeed only
  through a punch-hole opened by prior outbound traffic (see
  :mod:`repro.net.nat`).
* **Taps** -- sensors and measurement code observe traffic through tap
  callbacks without perturbing delivery, the moral equivalent of the
  paper's sensor request logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.address import format_ip
from repro.net.nat import RoutabilityTable
from repro.obs import runtime as obs
from repro.sim.scheduler import Scheduler


@dataclass(frozen=True, order=True)
class Endpoint:
    """A transport endpoint: public IP + port."""

    ip: int
    port: int

    def __post_init__(self) -> None:
        if not 0 <= self.ip <= 0xFFFFFFFF:
            raise ValueError(f"bad ip: {self.ip}")
        if not 0 < self.port <= 65535:
            raise ValueError(f"bad port: {self.port}")
        # ``key`` indexes every handler/routability lookup, several
        # times per message; precompute the tuple once (the instance is
        # frozen, hence object.__setattr__).
        object.__setattr__(self, "key", (self.ip, self.port))

    def __str__(self) -> str:
        # Endpoints are immutable and rendered on every traced event;
        # cache the dotted-quad form on first use.
        rendered = self.__dict__.get("_str")
        if rendered is None:
            rendered = f"{format_ip(self.ip)}:{self.port}"
            object.__setattr__(self, "_str", rendered)
        return rendered


class Message:
    """A delivered (or dropped) payload with transport metadata.

    ``src`` is stamped by the transport and therefore trustworthy.
    Instances may come from the transport's free-list pool (see
    ``recycle_messages``), so handlers must not retain them past the
    handler call; retain ``src``/``dst``/``payload`` instead, which are
    immutable and never recycled.
    """

    __slots__ = ("src", "dst", "payload", "sent_at", "delivered_at")

    def __init__(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: bytes,
        sent_at: float,
        delivered_at: float,
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src}, dst={self.dst}, "
            f"payload={self.payload!r}, sent_at={self.sent_at}, "
            f"delivered_at={self.delivered_at})"
        )


Handler = Callable[[Message], None]
Tap = Callable[[Message, bool], None]
#: Drop observers receive the message plus a reason string -- one of
#: ``unbound_src``, ``unbound_dst``, ``unroutable``, ``loss``, or a
#: fault-injection reason (``partition``, ``burst_loss``).
DropTap = Callable[[Message, str], None]


@dataclass
class TransportConfig:
    """Latency/loss knobs.

    Defaults model a broadband WAN path: 20-200 ms one-way latency and
    1% loss.  Experiments that need determinism beyond seeding can zero
    the jitter and loss.  ``duplicate_rate`` and ``reorder_rate`` are
    fault knobs (off by default): a duplicated message is delivered
    twice with independent latencies; a reordered message suffers
    ``reorder_extra`` additional latency, enough to arrive after
    messages sent later.
    """

    latency_min: float = 0.020
    latency_max: float = 0.200
    loss_rate: float = 0.01
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_extra: float = 0.5

    def __post_init__(self) -> None:
        if self.latency_min < 0 or self.latency_max < self.latency_min:
            raise ValueError("invalid latency range")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        if not 0.0 <= self.reorder_rate < 1.0:
            raise ValueError("reorder_rate must be in [0, 1)")
        if self.reorder_extra <= 0:
            raise ValueError("reorder_extra must be positive")


@dataclass
class TransportStats:
    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_unroutable: int = 0
    dropped_unbound_dst: int = 0
    rejected_unbound_src: int = 0
    duplicated: int = 0
    reordered: int = 0


#: Upper bound on pooled Message instances kept for reuse.
_POOL_MAX = 1024


class Transport:
    """The shared message fabric of one simulated network.

    ``recycle_messages=True`` enables a free-list pool of Message
    envelopes: a delivered message is reclaimed after its handler
    returns instead of being garbage.  Only enable it when every bound
    handler is known not to retain messages (population builders do;
    ad-hoc test harnesses that keep inboxes must leave it off).  Taps
    disable reuse automatically since they may retain what they see.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        config: Optional[TransportConfig] = None,
        routability: Optional[RoutabilityTable] = None,
        recycle_messages: bool = False,
        latency_model: Optional[object] = None,
    ) -> None:
        self.scheduler = scheduler
        self.rng = rng
        self.config = config if config is not None else TransportConfig()
        self.routability = routability if routability is not None else RoutabilityTable()
        # Optional pluggable latency oracle (duck-typed: anything with
        # ``latency(src_ip, dst_ip) -> float``).  None keeps the flat
        # uniform draw on the transport's own stream -- the replay
        # contract every golden exhibit depends on.
        self.latency_model = latency_model
        self.stats = TransportStats()
        self._handlers: Dict[Tuple[int, int], Handler] = {}
        self._taps: List[Tap] = []
        self._drop_taps: List[DropTap] = []
        self._recycle = recycle_messages
        self._pool: List[Message] = []
        # Observability: capture the ambient context at construction.
        # Disabled (the default) leaves falsy/no-op stubs here, so the
        # send/deliver paths pay one branch and no-op calls per event.
        self._trace = obs.tracer()
        # The subsystem profiler (when active) wants to know which
        # delivery tier a message took; the telemetry emitter (when
        # active) reads path-cache stats off registered transports.
        profiler = obs.profiler()
        self._profiler = profiler if profiler else None
        telemetry = obs.telemetry()
        if telemetry is not None:
            telemetry.register_transport(self)
        registry = obs.metrics()
        self._m_sent = registry.counter("net.sent", "messages accepted for delivery")
        self._m_delivered = registry.counter("net.delivered", "messages handed to a handler")
        self._m_dropped = registry.counter("net.dropped", "drops by reason")
        self._m_duplicated = registry.counter("net.duplicated", "messages duplicated in flight")
        self._m_reordered = registry.counter("net.reordered", "messages delayed past later sends")
        self._refresh_path()

    def _refresh_path(self) -> None:
        """Precompute the deliver-path switches.

        ``_slow`` is the single falsy check on the deliver path: it is
        False only when no tap, no drop tap, no tracer, and no
        fault-injection subclass (one that overrides ``_drop_reason``)
        is active, in which case ``_deliver`` takes a hook-free fast
        path.  ``_reuse`` gates the message pool: recycling is safe
        only when no tap can retain a message.
        """
        hooked = bool(
            self._taps
            or self._drop_taps
            or type(self)._drop_reason is not Transport._drop_reason
        )
        self._slow = hooked or bool(self._trace)
        # ``_lean``: tracing is the *only* active hook.  _deliver then
        # runs the fast-path drop checks (no Message for drops, no
        # _drop_reason dispatch, no tap loop) and just emits events.
        self._lean = not hooked and bool(self._trace)
        self._reuse = self._recycle and not self._taps and not self._drop_taps

    # -- binding -------------------------------------------------------

    def bind(self, endpoint: Endpoint, handler: Handler, routable: bool = True) -> None:
        """Attach ``handler`` to ``endpoint``.

        ``routable=False`` registers a NATed/firewalled endpoint that
        only receives traffic through punch-holes.
        """
        if endpoint.key in self._handlers:
            raise ValueError(f"endpoint already bound: {endpoint}")
        self._handlers[endpoint.key] = handler
        self.routability.register(endpoint.key, routable)

    def unbind(self, endpoint: Endpoint) -> None:
        self._handlers.pop(endpoint.key, None)
        self.routability.unregister(endpoint.key)

    def is_bound(self, endpoint: Endpoint) -> bool:
        return endpoint.key in self._handlers

    def rebind(self, old: Endpoint, new: Endpoint) -> None:
        """Atomically move a handler to a new endpoint (IP churn)."""
        handler = self._handlers.get(old.key)
        if handler is None:
            raise ValueError(f"endpoint not bound: {old}")
        routable = self.routability.is_routable(old.key)
        self.unbind(old)
        self.bind(new, handler, routable=routable)

    # -- taps ----------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Observe every send attempt: ``tap(message, delivered)``."""
        self._taps.append(tap)
        self._refresh_path()

    def add_drop_tap(self, tap: DropTap) -> None:
        """Observe every drop with its reason: ``tap(message, reason)``.

        Unlike plain taps, drop taps also see sends rejected at the
        source (reason ``unbound_src``), so chaos experiments can
        account for everything the network ate.
        """
        self._drop_taps.append(tap)
        self._refresh_path()

    def _notify_drop(self, message: Message, reason: str) -> None:
        for tap in self._drop_taps:
            tap(message, reason)

    # -- sending -------------------------------------------------------

    def send(self, src: Endpoint, dst: Endpoint, payload: bytes) -> bool:
        """Queue ``payload`` from ``src`` to ``dst``.

        Returns True if the message was accepted for (attempted)
        delivery.  Acceptance does not guarantee delivery: loss and NAT
        filtering happen at delivery time.
        """
        now = self.scheduler.now
        if src.key not in self._handlers:
            # Non-spoofable identity: you can only speak as an endpoint
            # you have bound.
            self.stats.rejected_unbound_src += 1
            self._m_dropped.labels("unbound_src").inc()
            if self._trace:
                self._trace.instant_args(
                    now, "net", "drop",
                    {"reason": "unbound_src", "src": str(src), "dst": str(dst)},
                )
            if self._drop_taps:
                self._notify_drop(
                    Message(src=src, dst=dst, payload=payload, sent_at=now, delivered_at=now),
                    "unbound_src",
                )
            return False
        self.routability.note_outbound(src.key, dst.ip, now)
        self.stats.sent += 1
        self._m_sent.inc()
        latency = self._latency(src, dst)
        reordered = False
        if self.config.reorder_rate and self.rng.random() < self.config.reorder_rate:
            # Enough extra latency to arrive behind messages sent later.
            self.stats.reordered += 1
            self._m_reordered.inc()
            reordered = True
            latency += self.config.reorder_extra
        sent_at = now
        self.scheduler.call_later(latency, self._deliver, src, dst, payload, sent_at)
        duplicated = False
        if self.config.duplicate_rate and self.rng.random() < self.config.duplicate_rate:
            self.stats.duplicated += 1
            self._m_duplicated.inc()
            duplicated = True
            self.scheduler.call_later(self._latency(src, dst), self._deliver, src, dst, payload, sent_at)
        if self._trace:
            args = {"src": str(src), "dst": str(dst), "bytes": len(payload)}
            if reordered:
                args["reordered"] = True
            if duplicated:
                args["duplicated"] = True
            self._trace.instant_args(now, "net", "send", args)
        return True

    def _latency(self, src: Endpoint, dst: Endpoint) -> float:
        """One-way latency for a single delivery attempt.

        With a latency model configured, the draw happens on the
        *model's* stream (path-derived latency + jitter); otherwise the
        flat uniform draw on the transport stream, whose draw order is
        part of the golden-replay contract.
        """
        model = self.latency_model
        if model is not None:
            return model.latency(src.ip, dst.ip)
        return self.rng.uniform(self.config.latency_min, self.config.latency_max)

    def _drop_reason(self, message: Message) -> Optional[str]:
        """Decide a delivery attempt's fate; None means deliver.

        Subclasses (fault injection) extend this with additional drop
        causes; each cause increments its own counter here so stats
        stay consistent with the returned reason.
        """
        now = message.delivered_at
        if message.dst.key not in self._handlers:
            self.stats.dropped_unbound_dst += 1
            return "unbound_dst"
        if not self.routability.inbound_allowed(message.dst.key, message.src.ip, now):
            self.stats.dropped_unroutable += 1
            return "unroutable"
        if self.config.loss_rate and self.rng.random() < self.config.loss_rate:
            self.stats.dropped_loss += 1
            return "loss"
        return None

    def _deliver(self, src: Endpoint, dst: Endpoint, payload: bytes, sent_at: float) -> None:
        now = self.scheduler.now
        # Tier tagging for the subsystem profiler: _deliver runs as a
        # scheduler callback and the scheduler records it *after* it
        # returns, so a note left here labels this dispatch's kind.
        profile = self._profiler
        if not self._slow:
            # Fast path: no taps, no tracer, no fault subclass.  The
            # drop checks mirror _drop_reason exactly (same order, same
            # RNG draws) without building a Message for drops.
            stats = self.stats
            dst_key = dst.key
            handler = self._handlers.get(dst_key)
            if handler is None:
                stats.dropped_unbound_dst += 1
                self._m_dropped.labels("unbound_dst").inc()
                if profile is not None:
                    profile.note("drop")
                return
            if not self.routability.inbound_allowed(dst_key, src.ip, now):
                stats.dropped_unroutable += 1
                self._m_dropped.labels("unroutable").inc()
                if profile is not None:
                    profile.note("drop")
                return
            loss_rate = self.config.loss_rate
            if loss_rate and self.rng.random() < loss_rate:
                stats.dropped_loss += 1
                self._m_dropped.labels("loss").inc()
                if profile is not None:
                    profile.note("drop")
                return
            stats.delivered += 1
            self._m_delivered.inc()
            if profile is not None:
                profile.note("deliver.fast")
            pool = self._pool
            if pool:
                message = pool.pop()
                message.src = src
                message.dst = dst
                message.payload = payload
                message.sent_at = sent_at
                message.delivered_at = now
            else:
                message = Message(src, dst, payload, sent_at, now)
            handler(message)
            if self._reuse and len(pool) < _POOL_MAX:
                pool.append(message)
            return
        if self._lean:
            # Traced fast path: same checks and RNG draws as above, with
            # trace events emitted in the same order the generic slow
            # path would (drop/deliver event before the handler runs).
            trace = self._trace
            stats = self.stats
            dst_key = dst.key
            handler = self._handlers.get(dst_key)
            if handler is None:
                stats.dropped_unbound_dst += 1
                self._m_dropped.labels("unbound_dst").inc()
                if profile is not None:
                    profile.note("drop")
                trace.instant_args(
                    now, "net", "drop",
                    {"reason": "unbound_dst", "src": str(src), "dst": str(dst)},
                )
                return
            if not self.routability.inbound_allowed(dst_key, src.ip, now):
                stats.dropped_unroutable += 1
                self._m_dropped.labels("unroutable").inc()
                if profile is not None:
                    profile.note("drop")
                trace.instant_args(
                    now, "net", "drop",
                    {"reason": "unroutable", "src": str(src), "dst": str(dst)},
                )
                return
            loss_rate = self.config.loss_rate
            if loss_rate and self.rng.random() < loss_rate:
                stats.dropped_loss += 1
                self._m_dropped.labels("loss").inc()
                if profile is not None:
                    profile.note("drop")
                trace.instant_args(
                    now, "net", "drop",
                    {"reason": "loss", "src": str(src), "dst": str(dst)},
                )
                return
            stats.delivered += 1
            self._m_delivered.inc()
            if profile is not None:
                profile.note("deliver.lean")
            trace.instant_args(
                now, "net", "deliver",
                {"src": str(src), "dst": str(dst), "latency": round(now - sent_at, 6)},
            )
            pool = self._pool
            if pool:
                message = pool.pop()
                message.src = src
                message.dst = dst
                message.payload = payload
                message.sent_at = sent_at
                message.delivered_at = now
            else:
                message = Message(src, dst, payload, sent_at, now)
            handler(message)
            if self._reuse and len(pool) < _POOL_MAX:
                pool.append(message)
            return
        reuse = self._reuse
        pool = self._pool
        if reuse and pool:
            message = pool.pop()
            message.src = src
            message.dst = dst
            message.payload = payload
            message.sent_at = sent_at
            message.delivered_at = now
        else:
            message = Message(src, dst, payload, sent_at, now)
        reason = self._drop_reason(message)
        delivered = reason is None
        if profile is not None:
            profile.note("deliver.slow" if delivered else "drop")
        for tap in self._taps:
            tap(message, delivered)
        if delivered:
            self.stats.delivered += 1
            self._m_delivered.inc()
            if self._trace:
                self._trace.instant(
                    now, "net", "deliver",
                    src=str(src), dst=str(dst), latency=round(now - sent_at, 6),
                )
            self._handlers[dst.key](message)
        else:
            self._m_dropped.labels(reason).inc()
            if self._trace:
                self._trace.instant(
                    now, "net", "drop", reason=reason, src=str(src), dst=str(dst)
                )
            self._notify_drop(message, reason)
        if reuse and len(pool) < _POOL_MAX:
            pool.append(message)
