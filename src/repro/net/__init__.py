"""Network substrate: IPv4 addressing, NAT, transport, and churn.

This package models exactly the network properties the paper's analysis
depends on:

* **Addressing** (:mod:`repro.net.address`) -- IPv4 addresses as plain
  ints, CIDR subnets, and the /20 aggregation the Zeus peer-list filter
  and the subnet-aggregating crawler detector both use.
* **Routability / NAT** (:mod:`repro.net.nat`) -- 60-87% of real bot
  populations sit behind NAT gateways or firewalls; crawlers cannot
  reach them, sensors can (via punch-holes).  This asymmetry drives the
  crawler-vs-sensor tradeoff (paper Fig. 1, Table 6).
* **Transport** (:mod:`repro.net.transport`) -- message delivery with
  latency/loss and a *non-spoofable* source identity, matching the
  detection algorithm's TCP-like transport assumption (Section 4.3).
* **Churn** (:mod:`repro.net.churn`) -- diurnal online cycles, DHCP-style
  IP reassignment (address aliasing), and infection churn, the passive
  disturbances that bound useful crawl windows to ~24 hours.
"""

from repro.net.address import (
    AddressPool,
    Subnet,
    format_ip,
    ip_in_any,
    is_reserved,
    parse_ip,
    prefix_of,
    same_prefix,
    subnet_key,
)
from repro.net.churn import ChurnConfig, ChurnProcess, DiurnalModel, IpChurnProcess
from repro.net.nat import NatGateway, RoutabilityTable
from repro.net.transport import DropTap, Endpoint, Message, Transport, TransportConfig

__all__ = [
    "AddressPool",
    "ChurnConfig",
    "ChurnProcess",
    "DiurnalModel",
    "DropTap",
    "Endpoint",
    "IpChurnProcess",
    "Message",
    "NatGateway",
    "RoutabilityTable",
    "Subnet",
    "Transport",
    "TransportConfig",
    "format_ip",
    "ip_in_any",
    "is_reserved",
    "parse_ip",
    "prefix_of",
    "same_prefix",
    "subnet_key",
]
