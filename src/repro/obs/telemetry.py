"""Wall-clock telemetry: periodic run snapshots and live rendering.

Everything post-hoc in :mod:`repro.obs` (traces, metrics snapshots,
health reports) answers "what happened"; this module answers "what is
happening" while a long run executes.  A :class:`TelemetryEmitter`
hangs off the scheduler's batch loop and, on a *wall-clock* cadence,
captures a :data:`TELEMETRY_SCHEMA` snapshot -- cumulative and delta
event counts, events/sec, scheduler queue depths, current/peak RSS,
ambient counter totals, and topology path-cache hit rates -- appending
each as one JSONL line and/or handing it to a live console view
(:class:`LiveRunView`, the ``repro top`` renderer).

Determinism contract (the same one every obs layer obeys): the emitter
reads ``perf_counter``, ``/proc`` RSS, and passive counters.  It draws
no randomness, schedules nothing, and never mutates simulated state,
so a run with telemetry enabled is byte-identical to one without.
The scheduler calls :meth:`TelemetryEmitter.tick` once per dispatch
*batch* (not per event); between emissions the cost is a decrement and
an integer compare, and only every :data:`~TelemetryEmitter.STRIDE`
batches does a ``perf_counter`` call happen at all.
"""

from __future__ import annotations

import json
import sys
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, TextIO

from repro.obs import runtime
from repro.obs.export import iter_dict_jsonl

TELEMETRY_SCHEMA = "repro-telemetry/1"


def _rss_kb() -> tuple:
    # Lazy import: repro.bench pulls in scenario builders at call time
    # and must stay out of the obs package's import graph.
    from repro.bench import current_rss_kb, peak_rss_kb

    return current_rss_kb(), peak_rss_kb()


class TelemetryEmitter:
    """Streams run snapshots on a wall-clock cadence.

    Wire-up happens ambiently (see :mod:`repro.obs.runtime`): schedulers
    capture the active emitter at construction and tick it per dispatch
    batch; transports register themselves so path-cache stats can be
    read at snapshot time.  A run that builds several schedulers (the
    chaos matrix) keeps one emitter across all of them -- dispatched
    counts accumulate over retired schedulers.
    """

    #: Batches between wall-clock checks.  At ~50k events/sec and
    #: typical batch sizes this lands well under the emission interval
    #: while keeping the steady-state tick at one decrement + compare.
    STRIDE = 256

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval_s: float = 1.0,
        on_snapshot: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.interval_s = max(0.05, float(interval_s))
        self._stream = stream
        self._on_snapshot = on_snapshot
        self._transports: List[Any] = []
        self._countdown = self.STRIDE
        self._started = perf_counter()
        self._last_wall = self._started
        self._last_dispatched = 0
        self._prior_dispatched = 0
        self._sched: Optional[Any] = None
        self._last_counters: Dict[str, float] = {}
        self.count = 0
        self.last_snapshot: Optional[Dict[str, Any]] = None

    def __bool__(self) -> bool:
        return True

    def register_transport(self, transport: Any) -> None:
        """Transports self-register at construction so snapshots can
        read their (purely passive) path-cache stats."""
        self._transports.append(transport)

    # -- the per-batch seam ------------------------------------------------

    def tick(self, scheduler: Any) -> None:
        """Called by the scheduler once per dispatch batch."""
        if scheduler is not self._sched:
            # Adopt immediately (not at emission time) so a short
            # run's finalize snapshot still sees its scheduler, and a
            # retired scheduler's counts are banked before the swap.
            if self._sched is not None:
                self._prior_dispatched += self._sched.stats().dispatched
            self._sched = scheduler
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.STRIDE
        now = perf_counter()
        if now - self._last_wall < self.interval_s:
            return
        self._emit(scheduler, now)

    def finalize(self) -> Optional[Dict[str, Any]]:
        """Emit one last snapshot (so short runs still produce one)
        and return it."""
        self._emit(self._sched, perf_counter())
        return self.last_snapshot

    # -- snapshot assembly -------------------------------------------------

    def _emit(self, scheduler: Optional[Any], now: float) -> None:
        snapshot = self._snapshot(now)
        self.count += 1
        self.last_snapshot = snapshot
        if self._stream is not None:
            self._stream.write(json.dumps(snapshot, sort_keys=True) + "\n")
            self._stream.flush()
        if self._on_snapshot is not None:
            self._on_snapshot(snapshot)

    def _snapshot(self, now: float) -> Dict[str, Any]:
        wall_s = now - self._started
        dt = now - self._last_wall
        sched = self._sched
        if sched is not None:
            stats = sched.stats()
            dispatched = self._prior_dispatched + stats.dispatched
            pending = stats.pending
            heap_size = stats.heap_size
            sim_t = sched.now
        else:
            dispatched = self._prior_dispatched
            pending = heap_size = 0
            sim_t = 0.0
        events_per_s = (
            (dispatched - self._last_dispatched) / dt if dt > 1e-9 else 0.0
        )
        rss_kb, peak_kb = _rss_kb()
        registry = runtime.metrics()
        counters = registry.counter_totals() if registry else {}
        deltas = {
            name: round(value - self._last_counters.get(name, 0.0), 6)
            for name, value in counters.items()
            if value != self._last_counters.get(name, 0.0)
        }
        snapshot: Dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA,
            "seq": self.count,
            "wall_s": round(wall_s, 3),
            "sim_t": round(sim_t, 3),
            "dispatched": dispatched,
            "events_per_s": round(events_per_s, 1),
            "pending": pending,
            "heap_size": heap_size,
            "rss_kb": rss_kb,
            "peak_rss_kb": peak_kb,
            "counters": {name: round(value, 6) for name, value in counters.items()},
            "deltas": deltas,
        }
        cache = self._path_cache()
        if cache is not None:
            snapshot["path_cache"] = cache
        self._last_wall = now
        self._last_dispatched = dispatched
        self._last_counters = counters
        return snapshot

    def _path_cache(self) -> Optional[Dict[str, Any]]:
        hits = misses = 0
        seen = False
        for transport in self._transports:
            resolver = getattr(
                getattr(transport, "latency_model", None), "resolver", None
            )
            stats = getattr(resolver, "cache_stats", None)
            if stats is None:
                continue
            h, m = stats()
            hits += h
            misses += m
            seen = True
        if not seen:
            return None
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }


# -- rendering -------------------------------------------------------------


def _mib(kb: Any) -> str:
    try:
        return f"{float(kb) / 1024.0:.1f}MiB"
    except (TypeError, ValueError):
        return "?"


def render_snapshot(snapshot: Mapping[str, Any]) -> str:
    """One snapshot as the one-line ``repro top`` row."""
    parts = [
        f"t+{snapshot.get('sim_t', 0.0):.0f}s sim",
        f"{snapshot.get('wall_s', 0.0):.1f}s wall",
        f"{snapshot.get('events_per_s', 0.0):,.0f} ev/s",
        f"{snapshot.get('dispatched', 0):,} total",
        f"pending {snapshot.get('pending', 0):,}",
        f"rss {_mib(snapshot.get('rss_kb', 0))}",
    ]
    cache = snapshot.get("path_cache")
    if cache:
        parts.append(f"path-cache {cache.get('hit_rate', 0.0) * 100:.0f}%")
    return " | ".join(parts)


class LiveRunView:
    """Renders snapshots as a refreshing status line.

    On a TTY the line rewrites in place (``\\r``); otherwise each
    snapshot prints as its own line, which is what CI logs want.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._width = 0

    def __call__(self, snapshot: Mapping[str, Any]) -> None:
        line = render_snapshot(snapshot)
        if self._tty:
            pad = " " * max(0, self._width - len(line))
            self._stream.write("\r" + line + pad)
            self._width = len(line)
        else:
            self._stream.write(line + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._tty and self._width:
            self._stream.write("\n")
            self._stream.flush()


def render_fleet(fleet: Mapping[str, Any]) -> str:
    """A dispatched sweep's per-host telemetry as console lines
    (``repro sweep --live`` and the final ``--health`` fleet section)."""
    hosts = fleet.get("hosts", {})
    lines = [
        f"fleet: {len(hosts)} hosts, "
        f"{fleet.get('acked', 0)} acked / {fleet.get('leased', 0)} leased, "
        f"{fleet.get('lost', 0)} lost"
    ]
    for host_id in sorted(hosts, key=lambda h: int(h)):
        entry = hosts[host_id]
        telemetry = entry.get("telemetry") or {}
        bits = [
            f"  host {host_id}: {entry.get('acked', 0)} acked",
            f"{entry.get('errors', 0)} errors",
        ]
        if entry.get("lost"):
            bits.append("LOST")
        if telemetry:
            if "points_done" in telemetry:
                bits.append(f"{telemetry['points_done']} pts")
            if "rss_kb" in telemetry:
                bits.append(f"rss {_mib(telemetry['rss_kb'])}")
            if "wall_s" in telemetry:
                bits.append(f"{telemetry['wall_s']:.1f}s")
        lines.append(", ".join(bits))
    return "\n".join(lines)


# -- reading streams back --------------------------------------------------


def iter_telemetry(path: str) -> Iterator[Dict[str, Any]]:
    """Stream a telemetry JSONL file back as snapshot dicts
    (transparently gzipped for ``.gz`` paths)."""
    return iter_dict_jsonl(path)


def read_telemetry(path: str) -> List[Dict[str, Any]]:
    return list(iter_telemetry(path))
