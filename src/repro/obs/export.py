"""Trace and metrics export: JSONL recordings, Chrome trace, summaries.

The native recording format is JSON Lines -- one
:class:`~repro.obs.events.TraceEvent` dict per line -- because it
streams, greps, and diffs.  :func:`chrome_trace` converts a recording
into the Chrome trace-event format (the ``traceEvents`` JSON array)
that https://ui.perfetto.dev and ``chrome://tracing`` load directly:
simulated seconds become microsecond timestamps, and each event
category gets its own named track.
"""

from __future__ import annotations

import gzip
import json
from collections import Counter as TallyCounter
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, TextIO, Union

from repro.obs.events import COMPLETE, COUNTER, TraceEvent
from repro.sim.clock import format_time

PathOrFile = Union[str, TextIO]


# -- JSONL recordings ------------------------------------------------------


def _open_recording(path: str, mode: str) -> TextIO:
    """Open a recording path as text, transparently gzipped for
    ``.gz`` suffixes -- long chaos-run recordings compress ~20x."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write a recording; returns the number of events written.

    A ``.gz`` suffix on ``path`` writes a gzip-compressed recording;
    :func:`iter_jsonl`/:func:`read_jsonl` read it back transparently.
    """
    count = 0
    with _open_recording(path, "w") as stream:
        for event in events:
            stream.write(json.dumps(event.to_dict(), sort_keys=True))
            stream.write("\n")
            count += 1
    return count


def iter_jsonl(path: str) -> Iterator[TraceEvent]:
    """Stream a recording back as events (blank lines skipped).

    Handles plain and ``.gz`` recordings by suffix.
    """
    with _open_recording(path, "r") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield TraceEvent.from_dict(json.loads(line))


def read_jsonl(path: str) -> List[TraceEvent]:
    return list(iter_jsonl(path))


def write_dict_jsonl(records: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write plain-dict records (telemetry snapshots, fleet state) as
    JSONL; same ``.gz`` handling as trace recordings."""
    count = 0
    with _open_recording(path, "w") as stream:
        for record in records:
            stream.write(json.dumps(record, sort_keys=True))
            stream.write("\n")
            count += 1
    return count


def iter_dict_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Stream a dict-JSONL file back (blank lines skipped)."""
    with _open_recording(path, "r") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)


# -- Chrome trace / Perfetto ----------------------------------------------


def chrome_trace(
    events: Iterable[TraceEvent], time_scale: float = 1_000_000.0
) -> Dict[str, Any]:
    """A recording as a Chrome trace-event JSON object.

    ``time_scale`` converts event time units to microseconds (the
    format's ``ts`` unit); the default treats event times as seconds.
    Each category becomes its own named thread track, so the layers
    (net, sched, crawler, detect, fault, ...) stack separately in the
    Perfetto timeline.
    """
    trace_events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for event in events:
        tid = tids.get(event.cat)
        if tid is None:
            tid = len(tids) + 1
            tids[event.cat] = tid
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": event.cat},
                }
            )
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.time * time_scale,
            "pid": 1,
            "tid": tid,
        }
        if event.ph == COMPLETE:
            entry["dur"] = event.dur * time_scale
        elif event.ph == COUNTER:
            entry["args"] = dict(event.args or {})
        else:
            entry["s"] = "t"  # instant scope: thread
        if event.ph != COUNTER and event.args:
            entry["args"] = dict(event.args)
        trace_events.append(entry)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "clock": "simulated"},
    }


def write_chrome_trace(
    events: Iterable[TraceEvent], path: str, time_scale: float = 1_000_000.0
) -> int:
    """Write a Perfetto-loadable trace file; returns the event count
    (excluding synthetic thread-name metadata)."""
    trace = chrome_trace(events, time_scale=time_scale)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(trace, stream)
    return sum(1 for e in trace["traceEvents"] if e["ph"] != "M")


# -- human-facing views ----------------------------------------------------


def render_summary(events: Iterable[TraceEvent]) -> str:
    """A recording's shape at a glance: span, volume, top event names.

    Accepts any iterable (including the :func:`iter_jsonl` stream) and
    degrades gracefully: an empty recording gets a friendly "no
    events" line, a single event a zero-length span -- never a
    traceback.
    """
    events = list(events)
    if not events:
        return "no events (empty recording)"
    start = min(e.time for e in events)
    end = max(e.time + (e.dur if e.ph == COMPLETE else 0.0) for e in events)
    by_cat = TallyCounter(e.cat for e in events)
    by_name = TallyCounter(f"{e.cat}/{e.name}" for e in events)
    noun = "event" if len(events) == 1 else "events"
    lines = [
        f"{len(events)} {noun} over simulated "
        f"[{format_time(start)} .. {format_time(end)}] "
        f"({end - start:.1f}s)",
        "",
        "by category:",
    ]
    for cat, count in by_cat.most_common():
        lines.append(f"  {cat:<12} {count}")
    lines.append("")
    lines.append("top events:")
    for name, count in by_name.most_common(12):
        lines.append(f"  {name:<32} {count}")
    return "\n".join(lines)


def render_events(events: List[TraceEvent]) -> str:
    """One line per event (``repro trace --tail``)."""
    lines = []
    for event in events:
        args = (
            " ".join(f"{k}={v}" for k, v in sorted((event.args or {}).items()))
        )
        dur = f" dur={event.dur:.3f}s" if event.ph == COMPLETE else ""
        lines.append(
            f"{format_time(event.time)} {event.cat:<8} {event.name:<24}{dur} {args}".rstrip()
        )
    return "\n".join(lines)


# -- metrics snapshots -----------------------------------------------------


def metrics_json(snapshot: Mapping[str, Any]) -> str:
    """A snapshot as stable, reviewable JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True)


def write_metrics(snapshot: Mapping[str, Any], path_or_stream: PathOrFile) -> None:
    text = metrics_json(snapshot) + "\n"
    if isinstance(path_or_stream, str):
        with open(path_or_stream, "w", encoding="utf-8") as stream:
            stream.write(text)
    else:
        path_or_stream.write(text)
