"""Profile exports: collapsed stacks, speedscope JSON, text rendering.

All exporters consume the JSON-able site tree produced by
:meth:`repro.obs.profile.SubsystemProfiler.tree`, so a profile can be
re-rendered from a saved document without the live profiler.

* :func:`collapsed_stacks` -- the ``flamegraph.pl`` line format
  (``subsystem;site;kind <microseconds>``), which speedscope, inferno,
  and the original flamegraph scripts all ingest;
* :func:`speedscope_document` -- a self-contained speedscope file
  (https://www.speedscope.app): one *sampled* profile whose samples
  are the three-frame subsystem/site/kind stacks weighted by
  microseconds;
* :func:`render_profile` -- the terminal breakdown ``repro profile``
  prints;
* :func:`profile_breakdown` -- the compact per-subsystem summary
  embedded in ``repro-bench/3`` documents.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _leaves(tree: Mapping[str, Any]) -> List[Tuple[str, str, str, int, float]]:
    """Flatten the site tree to (subsystem, site, kind, calls, wall_s)
    leaves in deterministic order."""
    out: List[Tuple[str, str, str, int, float]] = []
    for subsystem, sub in sorted(tree.get("subsystems", {}).items()):
        for site, entry in sorted(sub.get("sites", {}).items()):
            for kind, cell in sorted(entry.get("kinds", {}).items()):
                out.append(
                    (subsystem, site, kind, int(cell["calls"]), float(cell["wall_s"]))
                )
    return out


def collapsed_stacks(tree: Mapping[str, Any]) -> str:
    """The profile in collapsed-stack format, weighted by microseconds."""
    lines = []
    for subsystem, site, kind, _calls, wall_s in _leaves(tree):
        weight = int(round(wall_s * 1e6))
        if weight > 0:
            lines.append(f"{subsystem};{site};{kind} {weight}")
    return "\n".join(lines)


def speedscope_document(tree: Mapping[str, Any], name: str = "repro profile") -> Dict[str, Any]:
    """The profile as a speedscope-loadable JSON document."""
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame(label: str) -> int:
        index = frame_index.get(label)
        if index is None:
            index = frame_index[label] = len(frames)
            frames.append({"name": label})
        return index

    samples: List[List[int]] = []
    weights: List[int] = []
    for subsystem, site, kind, _calls, wall_s in _leaves(tree):
        weight = int(round(wall_s * 1e6))
        if weight <= 0:
            continue
        samples.append([frame(subsystem), frame(f"{subsystem}: {site}"), frame(kind)])
        weights.append(weight)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def write_speedscope(tree: Mapping[str, Any], path: str, name: str = "repro profile") -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(speedscope_document(tree, name=name), stream, indent=2, sort_keys=True)
        stream.write("\n")


def write_collapsed(tree: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        text = collapsed_stacks(tree)
        if text:
            stream.write(text + "\n")


def profile_breakdown(tree: Mapping[str, Any]) -> Dict[str, Any]:
    """The compact per-subsystem summary carried by ``repro-bench/3``
    workload entries: enough to name which subsystem regressed without
    shipping the whole site tree."""
    return {
        "window_s": tree["window_s"],
        "attributed_s": tree["attributed_s"],
        "attributed_share": tree["attributed_share"],
        "subsystems": {
            name: {
                "wall_s": sub["wall_s"],
                "share": sub["share"],
                "calls": sub["calls"],
            }
            for name, sub in tree.get("subsystems", {}).items()
        },
    }


def render_profile(tree: Mapping[str, Any], title: str = "profile", top_sites: int = 8) -> str:
    """Terminal-friendly breakdown: per-subsystem table plus the most
    expensive sites with their per-event cost."""
    lines = [
        f"{title}: window {tree['window_s']:.3f}s, "
        f"attributed {tree['attributed_share'] * 100:.1f}%"
    ]
    subsystems = tree.get("subsystems", {})
    if not subsystems:
        lines.append("  (no callbacks recorded)")
        return "\n".join(lines)
    width = max(len(name) for name in subsystems)
    ranked = sorted(subsystems.items(), key=lambda kv: -kv[1]["wall_s"])
    for name, sub in ranked:
        lines.append(
            f"  {name:<{width}}  {sub['wall_s']:8.3f}s  {sub['share'] * 100:5.1f}%  "
            f"{sub['calls']:>10} calls"
        )
    leaves = sorted(_leaves(tree), key=lambda leaf: -leaf[4])
    shown = [leaf for leaf in leaves if leaf[3] > 0][:top_sites]
    if shown:
        lines.append("  hottest sites:")
        for subsystem, site, kind, calls, wall_s in shown:
            per_event = wall_s * 1e6 / calls
            lines.append(
                f"    {subsystem}/{site} [{kind}]  {wall_s:.3f}s  "
                f"{calls} calls  {per_event:.1f}us/event"
            )
    return "\n".join(lines)
