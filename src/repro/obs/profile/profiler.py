"""The subsystem wall-time profiler.

:class:`SubsystemProfiler` implements the scheduler's profiling seam
(``record(callback, seconds)``) and aggregates cost into a site tree:

* **subsystem** -- derived from the callback's defining module by
  longest-prefix match against :data:`SUBSYSTEMS` (``repro.net.*`` is
  ``net``, ``repro.core.crawler`` is ``crawler``, ...);
* **site** -- the callback's qualified name (``Transport._deliver``);
* **event kind** -- ``call`` by default; instrumented call sites can
  label the in-flight dispatch with :meth:`note` (the transport tags
  each delivery with its tier: ``deliver.fast``/``lean``/``slow``).

Coverage accounting: :meth:`start`/:meth:`stop` bracket the measured
window, and :meth:`section` attributes coarse out-of-scheduler phases
(scenario build, offline analysis) by *self time* -- elapsed wall time
minus whatever callback time was recorded inside the section -- so
nothing is double-counted and the rendered breakdown sums to the whole
window.  Whatever remains is reported under the ``(unattributed)``
subsystem rather than silently dropped.

Determinism contract: the profiler reads ``perf_counter`` and nothing
else.  Two identical seeded runs dispatch the identical callback
sequence, so their :meth:`structure` views (counts, no timings) are
identical -- a property test asserts exactly that.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Module-prefix -> subsystem attribution map, longest prefix first.
#: Extend when a new top-level package grows a hot path.
SUBSYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("repro.net.churn", "churn"),
    ("repro.net", "net"),
    ("repro.core.crawler", "crawler"),
    ("repro.core.sensor", "sensor"),
    ("repro.core.detection", "detect"),
    ("repro.core", "core"),
    ("repro.botnets", "botnet"),
    ("repro.faults", "faults"),
    ("repro.topo", "topo"),
    ("repro.sim", "sim"),
    ("repro.runner", "runner"),
    ("repro.workloads", "workload"),
    ("repro.analysis", "analysis"),
    ("repro.bench", "bench"),
)

#: Site-tree labels for time the profiler measured but no callback or
#: section claimed (the scheduler loop itself, GC, un-sectioned glue).
UNATTRIBUTED = "(unattributed)"
UNATTRIBUTED_SITE = "(outside instrumented callbacks)"

#: Default event kind for a plain scheduler dispatch.
KIND_CALL = "call"
#: Event kind recorded by :meth:`SubsystemProfiler.section`.
KIND_SECTION = "section"


def classify_module(module: Optional[str]) -> str:
    """Map a module path to its subsystem by longest-prefix match."""
    if module:
        for prefix, subsystem in SUBSYSTEMS:
            if module == prefix or module.startswith(prefix + "."):
                return subsystem
    return "other"


class _Site:
    """Accumulator for one (subsystem, site): kind -> [calls, seconds]."""

    __slots__ = ("subsystem", "site", "kinds")

    def __init__(self, subsystem: str, site: str) -> None:
        self.subsystem = subsystem
        self.site = site
        self.kinds: Dict[str, List[float]] = {}

    def add(self, kind: str, seconds: float, calls: int = 1) -> None:
        cell = self.kinds.get(kind)
        if cell is None:
            self.kinds[kind] = [calls, seconds]
        else:
            cell[0] += calls
            cell[1] += seconds


class NullProfiler:
    """The disabled profiler: falsy, every hook a no-op."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def record(self, callback: Callable[..., Any], seconds: float) -> None:
        pass

    def note(self, kind: str) -> None:
        pass

    @contextmanager
    def section(self, subsystem: str, site: str) -> Iterator[None]:
        yield


NULL_PROFILER = NullProfiler()


class SubsystemProfiler:
    """Aggregate callback wall time into the subsystem site tree.

    Steady-state cost per dispatch (beyond the scheduler's own two
    ``perf_counter`` calls): one identity dict lookup plus two list
    adds.  Classification work (module/qualname string handling) runs
    once per distinct callback function and is cached.
    """

    def __init__(self) -> None:
        # Keyed by the underlying function object: bound methods are
        # re-created on every attribute access, so ``self._deliver``
        # must hash to its stable ``__func__``, not the ephemeral
        # bound-method wrapper.
        self._by_func: Dict[Any, _Site] = {}
        self._sites: Dict[Tuple[str, str], _Site] = {}
        self._pending_kind: Optional[str] = None
        self._attributed = 0.0
        self._window = 0.0
        self._window_start: Optional[float] = None

    def __bool__(self) -> bool:
        return True

    # -- measurement window ------------------------------------------------

    def start(self) -> None:
        """Open the measured window (idempotent while open)."""
        if self._window_start is None:
            self._window_start = perf_counter()

    def stop(self) -> None:
        """Close the measured window, accumulating into ``window_s``."""
        if self._window_start is not None:
            self._window += perf_counter() - self._window_start
            self._window_start = None

    # -- the hot seam ------------------------------------------------------

    def record(self, callback: Callable[..., Any], seconds: float) -> None:
        """The scheduler's per-dispatch hook (see ``set_profile``)."""
        func = getattr(callback, "__func__", callback)
        site = self._by_func.get(func)
        if site is None:
            site = self._intern(func)
        kind = self._pending_kind
        if kind is None:
            kind = KIND_CALL
        else:
            self._pending_kind = None
        cell = site.kinds.get(kind)
        if cell is None:
            site.kinds[kind] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds
        self._attributed += seconds

    def note(self, kind: str) -> None:
        """Label the in-flight dispatch's event kind; consumed by the
        next :meth:`record` call (the scheduler records *after* the
        callback returns, so instrumented code notes from inside)."""
        self._pending_kind = kind

    @contextmanager
    def section(self, subsystem: str, site: str) -> Iterator[None]:
        """Attribute a coarse out-of-scheduler phase by self time.

        Self time is elapsed wall time minus callback time recorded
        inside the section, so a section that wraps a scheduler run
        (a scenario build with an announce phase) never double-counts
        the callbacks dispatched within it.
        """
        started = perf_counter()
        attributed_before = self._attributed
        try:
            yield
        finally:
            elapsed = perf_counter() - started
            inner = self._attributed - attributed_before
            self_time = max(0.0, elapsed - inner)
            self._site(subsystem, site).add(KIND_SECTION, self_time)
            self._attributed += self_time

    # -- site interning ----------------------------------------------------

    def _intern(self, func: Any) -> _Site:
        module = getattr(func, "__module__", None)
        name = getattr(func, "__qualname__", None) or repr(func)
        site = self._site(classify_module(module), name)
        self._by_func[func] = site
        return site

    def _site(self, subsystem: str, name: str) -> _Site:
        key = (subsystem, name)
        site = self._sites.get(key)
        if site is None:
            site = self._sites[key] = _Site(subsystem, name)
        return site

    # -- views -------------------------------------------------------------

    @property
    def window_s(self) -> float:
        """The measured window so far (live windows read hot)."""
        window = self._window
        if self._window_start is not None:
            window += perf_counter() - self._window_start
        return window

    @property
    def attributed_s(self) -> float:
        return self._attributed

    def tree(self) -> Dict[str, Any]:
        """The full site tree as a JSON-able mapping.

        ``subsystems`` maps subsystem -> sites -> kinds with calls,
        wall seconds, and microseconds per event at every level; when a
        measurement window is known, the remainder the tree could not
        attribute appears under :data:`UNATTRIBUTED` so shares always
        sum to 1.0 over the window.
        """
        subsystems: Dict[str, Dict[str, Any]] = {}
        for (subsystem, name), site in self._sites.items():
            sub = subsystems.setdefault(
                subsystem, {"wall_s": 0.0, "calls": 0, "sites": {}}
            )
            site_calls = 0
            site_wall = 0.0
            kinds: Dict[str, Any] = {}
            for kind, (calls, seconds) in sorted(site.kinds.items()):
                calls = int(calls)
                site_calls += calls
                site_wall += seconds
                kinds[kind] = {
                    "calls": calls,
                    "wall_s": round(seconds, 6),
                    "us_per_event": round(seconds * 1e6 / calls, 3) if calls else 0.0,
                }
            sub["sites"][name] = {
                "calls": site_calls,
                "wall_s": round(site_wall, 6),
                "kinds": kinds,
            }
            sub["calls"] += site_calls
            sub["wall_s"] += site_wall
        window = self.window_s
        attributed = self._attributed
        if window > attributed:
            leftover = window - attributed
            subsystems[UNATTRIBUTED] = {
                "wall_s": leftover,
                "calls": 0,
                "sites": {
                    UNATTRIBUTED_SITE: {
                        "calls": 0,
                        "wall_s": round(leftover, 6),
                        "kinds": {
                            "other": {
                                "calls": 0,
                                "wall_s": round(leftover, 6),
                                "us_per_event": 0.0,
                            }
                        },
                    }
                },
            }
        total = window if window > 0 else attributed
        for sub in subsystems.values():
            sub["share"] = round(sub["wall_s"] / total, 4) if total > 0 else 0.0
            sub["wall_s"] = round(sub["wall_s"], 6)
        return {
            "window_s": round(window, 6),
            "attributed_s": round(attributed, 6),
            "attributed_share": round(attributed / window, 4) if window > 0 else 1.0,
            "subsystems": {name: subsystems[name] for name in sorted(subsystems)},
        }

    def structure(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """The timing-free site tree: subsystem -> site -> kind ->
        call count.  A pure function of the dispatch sequence, so two
        identical seeded runs produce identical structures even though
        their wall times differ."""
        out: Dict[str, Dict[str, Dict[str, int]]] = {}
        for (subsystem, name), site in sorted(self._sites.items()):
            kinds = {
                kind: int(calls)
                for kind, (calls, _seconds) in sorted(site.kinds.items())
                if calls
            }
            if kinds:
                out.setdefault(subsystem, {})[name] = kinds
        return out
