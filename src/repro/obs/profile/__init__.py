"""Subsystem-attributed wall-time profiling.

The scheduler already exposes a profiling seam (``set_profile``: any
object with ``record(callback, seconds)``) and the transport's
delivery tiers know which path a message took.  This package hangs a
structured profiler off both: callback cost is aggregated into a site
tree -- subsystem -> callback site -> event kind, with per-event-kind
microseconds per event -- and exported as collapsed stacks or
speedscope JSON for flamegraph viewing (``repro profile``).

Like every other observability layer (see :mod:`repro.obs`), the
profiler reads only the host's wall clock: it draws no randomness,
schedules nothing, and never touches simulated state, so a profiled
run produces byte-identical exhibits to an unprofiled one.
"""

from repro.obs.profile.profiler import (
    NULL_PROFILER,
    SUBSYSTEMS,
    NullProfiler,
    SubsystemProfiler,
    classify_module,
)
from repro.obs.profile.export import (
    collapsed_stacks,
    profile_breakdown,
    render_profile,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "SUBSYSTEMS",
    "SubsystemProfiler",
    "classify_module",
    "collapsed_stacks",
    "profile_breakdown",
    "render_profile",
    "speedscope_document",
    "write_collapsed",
    "write_speedscope",
]
