"""Attachable instrumentation: scheduler profiling, session plumbing.

Most layers instrument themselves by capturing the ambient context at
construction (see :mod:`repro.obs.runtime`).  This module holds the
pieces that attach *onto* existing objects instead:

* :class:`CallbackProfile` -- wall-time profiling of scheduler
  callbacks, installed with ``scheduler.set_profile(...)``;
* :func:`instrument_scheduler` -- publishes scheduler stats as gauges
  (via a snapshot-time collector, zero per-event cost) and installs
  the profile;
* :class:`TraceProgress` -- a sweep progress hook that renders the
  execution timeline (one track per worker) as trace events;
* :class:`ObsSession` -- the CLI-facing bundle: build tracer/registry
  from requested output paths, activate them around a run, write the
  files on exit (including after a failure -- that is the flight
  recorder's post-mortem job).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs import runtime
from repro.obs.events import COMPLETE, FlightRecorder, TraceEvent
from repro.obs.export import _open_recording, write_chrome_trace, write_jsonl, write_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SubsystemProfiler, write_collapsed, write_speedscope
from repro.obs.telemetry import LiveRunView, TelemetryEmitter
from repro.obs.tracer import Tracer


class CallbackProfile:
    """Aggregates wall-clock time per scheduler callback.

    Samples land in a histogram labeled by the callback's qualified
    name; the label child is cached per name, so steady state is one
    dict lookup plus one observe per dispatch -- and the whole profile
    only exists when explicitly installed.
    """

    def __init__(self, registry: MetricsRegistry, name: str = "sched.callback_wall_seconds") -> None:
        self._histogram = registry.histogram(
            name, "wall-clock seconds spent inside scheduler callbacks, by callback"
        )
        self._children: Dict[str, Any] = {}

    def record(self, callback: Callable[..., Any], seconds: float) -> None:
        name = getattr(callback, "__qualname__", None) or repr(callback)
        child = self._children.get(name)
        if child is None:
            child = self._histogram.labels(name)
            self._children[name] = child
        child.observe(seconds)


def instrument_scheduler(
    scheduler, registry: MetricsRegistry, profile: bool = True, prefix: str = "sched"
) -> None:
    """Publish ``scheduler.stats()`` as gauges and (optionally) install
    callback wall-time profiling.

    The gauges are filled by a snapshot-time collector, so the
    scheduler's hot loop is untouched; only the profile adds per-
    dispatch work (two ``perf_counter`` calls), and only when
    installed.
    """

    def collect(reg: MetricsRegistry) -> None:
        stats = scheduler.stats()
        reg.gauge(f"{prefix}.dispatched", "callbacks dispatched").set(stats.dispatched)
        reg.gauge(f"{prefix}.cancelled", "timers cancelled").set(stats.cancelled)
        reg.gauge(f"{prefix}.compactions", "heap compactions").set(stats.compactions)
        reg.gauge(f"{prefix}.peak_heap", "peak heap size").set(stats.peak_heap)
        reg.gauge(f"{prefix}.pending", "live timers at snapshot").set(stats.pending)

    registry.register_collector(collect)
    # Do not displace a profiler the scheduler already captured
    # ambiently (the subsystem profiler wins over the flat histogram).
    if profile and getattr(scheduler, "_profile", None) is None:
        scheduler.set_profile(CallbackProfile(registry))


class TraceProgress:
    """Sweep progress hook that records the execution timeline.

    Produces one ``X`` (complete) event per finished point on a track
    named after its worker, plus instants for retries, pool restarts,
    and completion -- all keyed to *wall-clock seconds since sweep
    start* (``ProgressEvent.elapsed``), since a sweep has no simulated
    clock.  Convert with ``time_scale=1e6`` like any other recording;
    the resulting Perfetto view is the pool-utilization picture.

    Wraps an inner hook (e.g. ``ConsoleProgress``) so tracing a sweep
    does not cost the console output.
    """

    def __init__(self, inner: Optional[Callable[[Any], Any]] = None) -> None:
        self.inner = inner
        self._events: List[TraceEvent] = []

    def __call__(self, event: Any) -> None:
        if self.inner is not None:
            self.inner(event)
        if event.kind == "point-done" and event.record is not None:
            record = event.record
            start = max(0.0, event.elapsed - record.wall_time)
            self._events.append(
                TraceEvent(
                    start,
                    record.worker or "serial",
                    f"{record.point}[{record.index}]",
                    COMPLETE,
                    record.wall_time,
                    {"attempts": record.attempts, "seed": record.seed},
                )
            )
        elif event.kind == "point-retry" and event.point is not None:
            self._events.append(
                TraceEvent(
                    event.elapsed,
                    "runner",
                    "retry",
                    args={"point": event.point.index, "error": event.detail},
                )
            )
        elif event.kind == "pool-restart":
            self._events.append(
                TraceEvent(event.elapsed, "runner", "pool-restart", args={"error": event.detail})
            )
        elif event.kind in ("host-fault", "host-lost"):
            # Dispatcher lifecycle (see repro.runner.dispatch): plan
            # faults firing and hosts declared lost land on a shared
            # dispatch track; the dispatcher's own step-keyed timeline
            # carries the per-host lease spans.
            self._events.append(
                TraceEvent(
                    event.elapsed, "dispatch", event.kind, args={"detail": event.detail}
                )
            )
        elif event.kind == "sweep-done":
            self._events.append(
                TraceEvent(event.elapsed, "runner", "sweep-done", args={"summary": event.detail})
            )

    def events(self) -> List[TraceEvent]:
        return sorted(self._events, key=lambda e: (e.time, e.cat, e.name))


class ObsSession:
    """One observed CLI run: flags in, trace/metrics files out.

    ``trace_path``/``metrics_path`` of ``None`` leave that half
    disabled (the null implementations stay ambient, so the run pays
    nothing for it).  ``flight_capacity`` bounds the recording to the
    last N events instead of keeping everything.

    ``profile_path`` enables the subsystem profiler and writes its
    flamegraph on exit (speedscope JSON, or collapsed stacks for a
    ``.collapsed``/``.folded`` suffix).  ``telemetry_path``/``live``
    enable the wall-clock telemetry emitter, streaming snapshots as
    JSONL and/or rendering a live status line.  All of it obeys the
    package invariant: observation never perturbs the run.
    """

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        flight_capacity: Optional[int] = None,
        profile_path: Optional[str] = None,
        telemetry_path: Optional[str] = None,
        live: bool = False,
        telemetry_interval: float = 1.0,
    ) -> None:
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.profile_path = profile_path
        self.telemetry_path = telemetry_path
        self.tracer: Optional[Tracer] = None
        self.registry: Optional[MetricsRegistry] = None
        self.profiler: Optional[SubsystemProfiler] = None
        self.emitter: Optional[TelemetryEmitter] = None
        self.profile_tree = None
        self._telemetry_stream = None
        self._live_view: Optional[LiveRunView] = None
        if trace_path is not None:
            buffer = FlightRecorder(flight_capacity) if flight_capacity else None
            self.tracer = Tracer(buffer=buffer)
        if metrics_path is not None:
            self.registry = MetricsRegistry()
        if profile_path is not None:
            self.profiler = SubsystemProfiler()
        if telemetry_path is not None or live:
            if telemetry_path is not None:
                self._telemetry_stream = _open_recording(telemetry_path, "w")
            if live:
                self._live_view = LiveRunView()
            self.emitter = TelemetryEmitter(
                stream=self._telemetry_stream,
                interval_s=telemetry_interval,
                on_snapshot=self._live_view,
            )
        self.written: List[str] = []

    @property
    def active(self) -> bool:
        return (
            self.tracer is not None
            or self.registry is not None
            or self.profiler is not None
            or self.emitter is not None
        )

    def attach_scheduler(self, scheduler) -> None:
        """Wire a scenario's scheduler into the session's registry."""
        if self.registry is not None:
            instrument_scheduler(scheduler, self.registry)

    def __enter__(self) -> "ObsSession":
        runtime.activate(
            tracer=self.tracer,
            metrics=self.registry,
            profiler=self.profiler,
            telemetry=self.emitter,
        )
        if self.profiler is not None:
            self.profiler.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Outputs are written even when the run failed: a partial
        # trace is exactly what a post-mortem needs.
        runtime.deactivate()
        if self.profiler is not None:
            self.profiler.stop()
        if self.emitter is not None:
            self.emitter.finalize()
            if self._live_view is not None:
                self._live_view.close()
            if self._telemetry_stream is not None:
                self._telemetry_stream.close()
                self.written.append(
                    f"telemetry: {self.emitter.count} snapshots -> {self.telemetry_path}"
                )
        if self.tracer is not None and self.trace_path is not None:
            count = write_jsonl(self.tracer.events(), self.trace_path)
            self.written.append(f"trace: {count} events -> {self.trace_path}")
        if self.registry is not None and self.metrics_path is not None:
            if self.metrics_path == "-":
                import sys

                write_metrics(self.registry.snapshot(), sys.stdout)
            else:
                write_metrics(self.registry.snapshot(), self.metrics_path)
                self.written.append(f"metrics -> {self.metrics_path}")
        if self.profiler is not None:
            self.profile_tree = self.profiler.tree()
            if self.profile_path is not None:
                if self.profile_path.endswith((".collapsed", ".folded")):
                    write_collapsed(self.profile_tree, self.profile_path)
                else:
                    write_speedscope(self.profile_tree, self.profile_path)
                self.written.append(f"profile -> {self.profile_path}")
