"""Telemetry analysis: health reports, run diffing, HTML export.

The read-only layer above :mod:`repro.obs`: it consumes recordings
(JSONL traces, metric snapshots) that a run already wrote and derives
the indicators the paper reasons about -- coverage convergence,
detection latency and vote margins, drop/fault breakdowns, latency
percentiles, stealth-budget burn.  Nothing here draws randomness or
touches a live simulation, so analysis can never perturb an exhibit.

Entry points::

    from repro.obs.analyze import analyze_file, render_health
    report = analyze_file("run.trace.jsonl")        # .gz works too
    print(render_health(report))

or from the CLI: ``repro trace analyze``, ``repro trace diff`` and
``repro report``.
"""

from repro.obs.analyze.diff import (
    TraceDiff,
    diff_files,
    diff_recordings,
    render_diff,
)
from repro.obs.analyze.health import (
    HEALTH_SCHEMA,
    HealthAnalyzer,
    HealthReport,
    analyze_events,
    analyze_file,
    histogram_quantile,
    latency_summary,
    percentile,
    render_health,
    snapshot_indicators,
    telemetry_summary,
)
from repro.obs.analyze.htmlreport import (
    extract_embedded_json,
    render_html,
    write_html_report,
)

__all__ = [
    "HEALTH_SCHEMA",
    "HealthAnalyzer",
    "HealthReport",
    "TraceDiff",
    "analyze_events",
    "analyze_file",
    "diff_files",
    "diff_recordings",
    "extract_embedded_json",
    "histogram_quantile",
    "latency_summary",
    "percentile",
    "render_diff",
    "render_health",
    "render_html",
    "snapshot_indicators",
    "telemetry_summary",
    "write_html_report",
]
