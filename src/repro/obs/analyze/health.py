"""Per-run health reports derived from trace recordings.

A :class:`HealthAnalyzer` consumes a stream of
:class:`~repro.obs.events.TraceEvent` (one pass, O(1) state per
indicator plus bounded curves) and folds it into a
:class:`HealthReport` -- the derived-indicator view the paper reasons
about instead of raw event logs:

* **coverage convergence** per crawler (distinct IPs over simulated
  time, with time-to-X% milestones) from ``crawler/ip.discovered``;
* **detection timeline**: one entry per ``detect/round`` span with the
  leader-vote margin, confidence, and quorum-degradation flags, plus
  the detection latency (first round that classified anything);
* **drop/fault breakdowns** by reason/kind from ``net/drop`` and
  ``faults/*``;
* **request latency percentiles** from per-reply RTTs
  (``crawler/request.replied``) and delivery latencies
  (``net/deliver``);
* **stealth-budget burn**: cumulative requests issued per crawler over
  time -- the detectability budget a ratio-limited crawler spends.

Analysis is read-only and draws no randomness: feeding the same
recording always yields the same report, and analyzing a run can never
perturb it (the events were written before analysis begins).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.events import COMPLETE, TraceEvent
from repro.sim.clock import format_time

#: Bump when the report layout changes shape (consumers check this).
HEALTH_SCHEMA = "repro-health/1"

#: Coverage milestones reported as time-to-X% of the run's final count.
MILESTONES = (0.25, 0.50, 0.75, 0.90, 0.95, 0.99)

#: Curves are decimated to at most this many points before export.
MAX_CURVE_POINTS = 256


# -- small numeric helpers -------------------------------------------------


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if q <= 0.0:
        return sorted_values[0]
    if q >= 1.0:
        return sorted_values[-1]
    rank = max(0, min(len(sorted_values) - 1, int(round(q * len(sorted_values) + 0.5)) - 1))
    return sorted_values[rank]


def latency_summary(values: List[float]) -> Optional[Dict[str, float]]:
    """count/mean/p50/p90/p99/max for a list of latencies (or None)."""
    if not values:
        return None
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "mean": round(sum(ordered) / len(ordered), 6),
        "p50": round(percentile(ordered, 0.50), 6),
        "p90": round(percentile(ordered, 0.90), 6),
        "p99": round(percentile(ordered, 0.99), 6),
        "max": round(ordered[-1], 6),
    }


def histogram_quantile(buckets: Mapping[str, float], q: float) -> Optional[float]:
    """Estimate a quantile from a snapshot histogram's bucket counts.

    ``buckets`` is the ``{upper_bound: count}`` mapping a
    :class:`~repro.obs.metrics.Histogram` snapshot carries (the last
    key is ``"+Inf"``).  Linear interpolation inside the winning
    bucket, prometheus-style; returns None for an empty histogram.
    """
    bounds: List[Tuple[float, float]] = []
    inf_count = 0.0
    for key, count in buckets.items():
        if key == "+Inf":
            inf_count = count
        else:
            bounds.append((float(key), count))
    bounds.sort()
    total = sum(count for _, count in bounds) + inf_count
    if total <= 0:
        return None
    target = q * total
    seen = 0.0
    lower = 0.0
    for bound, count in bounds:
        if seen + count >= target and count > 0:
            fraction = (target - seen) / count
            return round(lower + (bound - lower) * fraction, 6)
        seen += count
        lower = bound
    # Landed in the +Inf bucket: the last finite bound is the best bet.
    return round(bounds[-1][0], 6) if bounds else None


def snapshot_indicators(snapshot: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a metrics snapshot into scalar health indicators.

    Counters/gauges contribute their per-label values
    (``name`` or ``name.label``); histograms contribute count, p50 and
    p99 estimates.  The result is a flat, JSON-able, diff-friendly
    mapping used by sweep aggregation and run diffing.
    """
    out: Dict[str, float] = {}
    for name, entry in snapshot.items():
        kind = entry.get("kind")
        for label, value in entry.get("values", {}).items():
            key = f"{name}.{label}" if label else name
            if kind in ("counter", "gauge"):
                out[key] = value
            elif kind == "histogram":
                out[f"{key}.count"] = value["count"]
                for q, qname in ((0.5, "p50"), (0.99, "p99")):
                    estimate = histogram_quantile(value["buckets"], q)
                    if estimate is not None:
                        out[f"{key}.{qname}"] = estimate
    return out


def telemetry_summary(snapshots: Iterable[Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    """Summarize a telemetry stream (see :mod:`repro.obs.telemetry`)
    into run-level scalars: wall span, total events, mean and peak
    throughput, peak RSS.  Returns None for an empty stream."""
    count = 0
    wall_s = 0.0
    dispatched = 0
    peak_rate = 0.0
    peak_rss = 0
    for snapshot in snapshots:
        count += 1
        wall_s = max(wall_s, float(snapshot.get("wall_s", 0.0)))
        dispatched = max(dispatched, int(snapshot.get("dispatched", 0)))
        peak_rate = max(peak_rate, float(snapshot.get("events_per_s", 0.0)))
        peak_rss = max(peak_rss, int(snapshot.get("peak_rss_kb") or 0))
    if not count:
        return None
    return {
        "snapshots": count,
        "wall_s": round(wall_s, 3),
        "dispatched": dispatched,
        "events_per_s_mean": round(dispatched / wall_s, 1) if wall_s > 0 else None,
        "events_per_s_peak": round(peak_rate, 1),
        "peak_rss_kb": peak_rss,
    }


def topology_section(snapshot: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The per-AS delivery breakdown from a run's metrics snapshot.

    Reads the ``topo.*`` metrics the topology latency model and the
    AS-partition fault surface emit (``topo.sent`` / ``topo.dropped``
    counters labelled by destination AS, ``topo.path_cache.*`` gauges).
    Returns None when the run had no topology layer, so flat runs'
    health reports carry no topology key at all.
    """
    sent = snapshot.get("topo.sent", {}).get("values", {})
    dropped = snapshot.get("topo.dropped", {}).get("values", {})
    hits = snapshot.get("topo.path_cache.hits", {}).get("values", {}).get("", None)
    misses = snapshot.get("topo.path_cache.misses", {}).get("values", {}).get("", None)
    if not sent and not dropped and hits is None:
        return None
    per_as: Dict[str, Dict[str, float]] = {}
    for label, count in sent.items():
        per_as.setdefault(label, {"sent": 0, "dropped": 0})["sent"] = count
    for label, count in dropped.items():
        per_as.setdefault(label, {"sent": 0, "dropped": 0})["dropped"] = count
    section: Dict[str, Any] = {
        "per_as": {label: per_as[label] for label in sorted(per_as)},
        "sent_total": sum(sent.values()),
        "dropped_total": sum(dropped.values()),
    }
    if hits is not None:
        section["path_cache"] = {
            "hits": hits,
            "misses": misses if misses is not None else 0,
        }
    return section


def _decimate(curve: List[List[float]], limit: int = MAX_CURVE_POINTS) -> List[List[float]]:
    """Thin a curve to at most ``limit`` points, keeping first and
    last; deterministic (uniform stride, no sampling)."""
    if len(curve) <= limit:
        return curve
    stride = (len(curve) - 1) / (limit - 1)
    indexes = sorted({int(round(i * stride)) for i in range(limit)} | {0, len(curve) - 1})
    return [curve[i] for i in indexes]


# -- streaming per-crawler / detection state -------------------------------


class _CrawlerState:
    __slots__ = (
        "coverage_curve", "burn_curve", "issued", "replied", "expired",
        "retries", "gave_up", "rtts", "first_request", "last_request",
    )

    def __init__(self) -> None:
        self.coverage_curve: List[List[float]] = []
        self.burn_curve: List[List[float]] = []
        self.issued = 0
        self.replied = 0
        self.expired = 0
        self.retries = 0
        self.gave_up = 0
        self.rtts: List[float] = []
        self.first_request: Optional[float] = None
        self.last_request: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        distinct = int(self.coverage_curve[-1][1]) if self.coverage_curve else 0
        window = 0.0
        if self.first_request is not None and self.last_request is not None:
            window = self.last_request - self.first_request
        per_hour = round(self.issued / (window / 3600.0), 3) if window > 0 else None
        return {
            "distinct_ips": distinct,
            "requests_issued": self.issued,
            "requests_replied": self.replied,
            "requests_expired": self.expired,
            "retries_scheduled": self.retries,
            "targets_gave_up": self.gave_up,
            "reply_rate": round(self.replied / self.issued, 4) if self.issued else None,
            "requests_per_hour": per_hour,
            "rtt": latency_summary(self.rtts),
            "coverage_curve": _decimate(self.coverage_curve),
            "milestones": self._milestones(),
            "budget_burn": _decimate(self.burn_curve),
        }

    def _milestones(self) -> Dict[str, Optional[float]]:
        """Simulated time at which coverage first reached X% of the
        run's final distinct-IP count."""
        out: Dict[str, Optional[float]] = {}
        if not self.coverage_curve:
            return {f"{int(m * 100)}%": None for m in MILESTONES}
        final = self.coverage_curve[-1][1]
        for m in MILESTONES:
            target = m * final
            out[f"{int(m * 100)}%"] = next(
                (round(t, 6) for t, n in self.coverage_curve if n >= target), None
            )
        return out


class _DetectionState:
    __slots__ = (
        "rounds", "pending_votes", "pending_lost", "gossip_messages",
        "gossip_hops", "quorum_degraded",
    )

    def __init__(self) -> None:
        self.rounds: List[Dict[str, Any]] = []
        self.pending_votes: Dict[str, int] = {}
        self.pending_lost = 0
        self.gossip_messages = 0
        self.gossip_hops = 0
        self.quorum_degraded = 0

    def feed_vote(self, behavior: str) -> None:
        self.pending_votes[behavior] = self.pending_votes.get(behavior, 0) + 1

    def feed_round(self, event: TraceEvent) -> None:
        args = event.args or {}
        tallies = sorted(self.pending_votes.values(), reverse=True)
        total = sum(tallies)
        margin = None
        if total:
            top = tallies[0]
            runner_up = tallies[1] if len(tallies) > 1 else 0
            margin = round((top - runner_up) / total, 4)
        self.rounds.append(
            {
                "start": round(event.time, 6),
                "end": round(event.time + event.dur, 6),
                "groups": args.get("groups"),
                "groups_lost": self.pending_lost,
                "votes": args.get("votes"),
                "vote_margin": margin,
                "behaviors": dict(sorted(self.pending_votes.items())),
                "classified": args.get("classified"),
                "confidence": args.get("confidence"),
                "quorum_met": args.get("quorum_met"),
            }
        )
        self.pending_votes = {}
        self.pending_lost = 0

    def to_dict(self) -> Optional[Dict[str, Any]]:
        if not self.rounds and not self.gossip_messages:
            return None
        confidences = [r["confidence"] for r in self.rounds if r["confidence"] is not None]
        first_detection = next(
            (r["end"] for r in self.rounds if (r["classified"] or 0) > 0), None
        )
        return {
            "rounds": self.rounds,
            "round_count": len(self.rounds),
            "quorum_degraded_rounds": self.quorum_degraded,
            "detection_latency": first_detection,
            "mean_confidence": (
                round(sum(confidences) / len(confidences), 4) if confidences else None
            ),
            "min_confidence": round(min(confidences), 4) if confidences else None,
            "gossip": {"messages": self.gossip_messages, "hops": self.gossip_hops},
        }


# -- the analyzer ----------------------------------------------------------


class HealthAnalyzer:
    """Single-pass, constant-randomness fold of a recording into a
    :class:`HealthReport`; feed events in recording order."""

    def __init__(self) -> None:
        self._count = 0
        self._by_cat: Dict[str, int] = {}
        self._start: Optional[float] = None
        self._end: Optional[float] = None
        self._crawlers: Dict[str, _CrawlerState] = {}
        self._detection = _DetectionState()
        self._drops: Dict[str, int] = {}
        self._faults: Dict[str, int] = {}
        self._net = {"send": 0, "deliver": 0, "dup": 0, "reorder": 0}
        self._deliver_latencies: List[float] = []

    def _crawler(self, name: str) -> _CrawlerState:
        state = self._crawlers.get(name)
        if state is None:
            state = _CrawlerState()
            self._crawlers[name] = state
        return state

    def feed(self, event: TraceEvent) -> None:
        self._count += 1
        self._by_cat[event.cat] = self._by_cat.get(event.cat, 0) + 1
        end = event.time + (event.dur if event.ph == COMPLETE else 0.0)
        if self._start is None or event.time < self._start:
            self._start = event.time
        if self._end is None or end > self._end:
            self._end = end
        args = event.args or {}
        cat, name = event.cat, event.name
        if cat == "net":
            if name == "drop":
                reason = str(args.get("reason", "unknown"))
                self._drops[reason] = self._drops.get(reason, 0) + 1
            elif name in self._net:
                self._net[name] += 1
                if name == "deliver" and "latency" in args:
                    self._deliver_latencies.append(float(args["latency"]))
        elif cat == "crawler":
            state = self._crawler(str(args.get("crawler", "")))
            if name == "ip.discovered":
                state.coverage_curve.append([round(event.time, 6), float(args.get("total", 0))])
            elif name == "request.issued":
                state.issued += 1
                state.burn_curve.append([round(event.time, 6), float(state.issued)])
                if state.first_request is None:
                    state.first_request = event.time
                state.last_request = event.time
            elif name == "request.replied":
                state.replied += 1
                if "rtt" in args:
                    state.rtts.append(float(args["rtt"]))
            elif name == "request.expired":
                state.expired += 1
            elif name == "request.retry_scheduled":
                state.retries += 1
            elif name == "target.gave_up":
                state.gave_up += 1
        elif cat == "detect":
            if name == "leader.vote":
                self._detection.feed_vote(str(args.get("behavior", "")))
            elif name == "group.lost":
                self._detection.pending_lost += 1
            elif name == "round":
                self._detection.feed_round(event)
            elif name == "round.quorum_degraded":
                self._detection.quorum_degraded += 1
            elif name == "gossip.done":
                self._detection.gossip_messages += int(args.get("messages", 0))
                self._detection.gossip_hops += int(args.get("hops", 0))
        elif cat == "faults":
            self._faults[name] = self._faults.get(name, 0) + 1

    def feed_all(self, events: Iterable[TraceEvent]) -> "HealthAnalyzer":
        for event in events:
            self.feed(event)
        return self

    def report(self, metrics_snapshot: Optional[Mapping[str, Any]] = None) -> "HealthReport":
        duration = 0.0
        if self._start is not None and self._end is not None:
            duration = self._end - self._start
        data: Dict[str, Any] = {
            "schema": HEALTH_SCHEMA,
            "span": {
                "start": round(self._start, 6) if self._start is not None else None,
                "end": round(self._end, 6) if self._end is not None else None,
                "duration": round(duration, 6),
            },
            "events": {"total": self._count, "by_cat": dict(sorted(self._by_cat.items()))},
            "crawlers": {
                name: state.to_dict() for name, state in sorted(self._crawlers.items())
            },
            "detection": self._detection.to_dict(),
            "net": {
                **self._net,
                "drops": dict(sorted(self._drops.items())),
                "drop_total": sum(self._drops.values()),
                "deliver_latency": latency_summary(self._deliver_latencies),
            },
            "faults": {
                "by_kind": dict(sorted(self._faults.items())),
                "total": sum(self._faults.values()),
            },
        }
        if metrics_snapshot is not None:
            data["metrics_indicators"] = {
                key: value
                for key, value in sorted(snapshot_indicators(metrics_snapshot).items())
            }
            topology = topology_section(metrics_snapshot)
            if topology is not None:
                data["topology"] = topology
        return HealthReport(data)


class HealthReport:
    """A finished health report: plain JSON-able data plus renderers."""

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        return self.data

    def to_json(self) -> str:
        """The canonical JSON form.  ``repro report`` embeds exactly
        this text, so the HTML export and ``repro trace analyze
        --json`` agree byte-for-byte."""
        return json.dumps(self.data, indent=2, sort_keys=True)

    def flatten(self, prefix: str = "") -> Dict[str, float]:
        """Scalar indicators only (numbers/bools), dotted keys; curves
        and per-round lists are skipped.  This is the diffing view."""
        flat: Dict[str, float] = {}
        _flatten_scalars(self.data, prefix, flat)
        return flat


def _flatten_scalars(node: Any, prefix: str, out: Dict[str, float]) -> None:
    if isinstance(node, Mapping):
        for key, value in node.items():
            _flatten_scalars(value, f"{prefix}{key}." if prefix or key else key, out)
        return
    if isinstance(node, bool):
        out[prefix.rstrip(".")] = float(node)
    elif isinstance(node, (int, float)):
        out[prefix.rstrip(".")] = float(node)
    # strings, lists (curves, round tables) are not scalar indicators


def analyze_events(
    events: Iterable[TraceEvent],
    metrics_snapshot: Optional[Mapping[str, Any]] = None,
) -> HealthReport:
    """Fold a recording (any event iterable) into a health report."""
    return HealthAnalyzer().feed_all(events).report(metrics_snapshot)


def analyze_file(
    path: str, metrics_path: Optional[str] = None
) -> HealthReport:
    """Analyze a JSONL recording on disk (``.gz`` handled), optionally
    joining a metrics-snapshot JSON file."""
    from repro.obs.export import iter_jsonl

    snapshot = None
    if metrics_path is not None:
        with open(metrics_path, "r", encoding="utf-8") as stream:
            snapshot = json.load(stream)
    return analyze_events(iter_jsonl(path), snapshot)


# -- rendering -------------------------------------------------------------


def render_health(report: HealthReport) -> str:
    """The health report as a terminal-friendly text block."""
    data = report.data
    span = data["span"]
    lines: List[str] = []
    if span["start"] is None:
        return "no events (empty recording)"
    lines.append(
        f"{data['events']['total']} events over simulated "
        f"[{format_time(span['start'])} .. {format_time(span['end'])}] "
        f"({span['duration']:.1f}s)"
    )
    for name, crawler in data["crawlers"].items():
        label = name or "(unnamed)"
        lines.append("")
        lines.append(f"crawler {label}:")
        lines.append(
            f"  coverage:    {crawler['distinct_ips']} distinct IPs; "
            + "  ".join(
                f"{pct}@{format_time(t)}" if t is not None else f"{pct}@-"
                for pct, t in crawler["milestones"].items()
            )
        )
        reply = crawler["reply_rate"]
        lines.append(
            f"  budget burn: {crawler['requests_issued']} requests"
            + (
                f" ({crawler['requests_per_hour']:.0f}/h)"
                if crawler["requests_per_hour"]
                else ""
            )
            + (f", reply rate {reply * 100:.0f}%" if reply is not None else "")
        )
        lines.append(
            f"  resilience:  {crawler['requests_expired']} expired, "
            f"{crawler['retries_scheduled']} retries, "
            f"{crawler['targets_gave_up']} targets given up"
        )
        if crawler["rtt"]:
            rtt = crawler["rtt"]
            lines.append(
                f"  rtt:         p50={rtt['p50'] * 1000:.1f}ms "
                f"p90={rtt['p90'] * 1000:.1f}ms p99={rtt['p99'] * 1000:.1f}ms "
                f"max={rtt['max'] * 1000:.1f}ms"
            )
    detection = data["detection"]
    if detection:
        lines.append("")
        lines.append(
            f"detection:     {detection['round_count']} rounds, "
            f"{detection['quorum_degraded_rounds']} quorum-degraded, "
            f"mean confidence "
            + (
                f"{detection['mean_confidence']:.2f}"
                if detection["mean_confidence"] is not None
                else "-"
            )
        )
        if detection["detection_latency"] is not None:
            lines.append(
                f"  first verdict at {format_time(detection['detection_latency'])}"
            )
        for entry in detection["rounds"]:
            margin = entry["vote_margin"]
            flags = "" if entry["quorum_met"] in (None, True) else "  QUORUM-DEGRADED"
            lines.append(
                f"  round @{format_time(entry['end'])}: "
                f"groups={entry['groups']} votes={entry['votes']} "
                f"classified={entry['classified']} "
                f"margin={margin if margin is not None else '-'} "
                f"confidence={entry['confidence']}{flags}"
            )
    net = data["net"]
    lines.append("")
    lines.append(
        f"network:       {net['send']} sends, {net['deliver']} delivers, "
        f"{net['drop_total']} drops"
    )
    for reason, count in net["drops"].items():
        lines.append(f"  drop[{reason}]: {count}")
    if net["deliver_latency"]:
        lat = net["deliver_latency"]
        lines.append(
            f"  delivery latency: p50={lat['p50'] * 1000:.1f}ms "
            f"p99={lat['p99'] * 1000:.1f}ms"
        )
    faults = data["faults"]
    if faults["total"]:
        lines.append("")
        lines.append(f"faults:        {faults['total']} injected")
        for kind, count in faults["by_kind"].items():
            lines.append(f"  {kind}: {count}")
    topology = data.get("topology")
    if topology:
        lines.append("")
        lines.append(
            f"topology:      {topology['sent_total']:.0f} routed sends, "
            f"{topology['dropped_total']:.0f} AS-cut drops"
        )
        cache = topology.get("path_cache")
        if cache:
            total = cache["hits"] + cache["misses"]
            rate = cache["hits"] / total if total else 0.0
            lines.append(
                f"  path cache:  {cache['hits']:.0f} hits / "
                f"{cache['misses']:.0f} misses ({rate:.1%} hit rate)"
            )
        for label, entry in topology["per_as"].items():
            drop = entry["dropped"]
            lines.append(
                f"  {label}: sent={entry['sent']:.0f}"
                + (f" dropped={drop:.0f}" if drop else "")
            )
    return "\n".join(lines)
