"""Run diffing: align two recordings and explain how they diverge.

``repro trace diff A B`` is the debugging primitive for "why did this
chaos run degrade": two recordings of the same scenario are walked in
lockstep (both are ordered by simulated time by construction), the
**first divergence** is pinpointed down to the event and field that
differ, and the per-run health indicators (coverage, drops, latency
percentiles, detection confidence...) are compared so the *consequence*
of the divergence is visible next to its first cause.

Like the rest of the analysis layer this is read-only and
deterministic: diffing two identical recordings always reports
``identical``, regardless of size.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.analyze.health import HealthAnalyzer, HealthReport
from repro.obs.events import TraceEvent
from repro.sim.clock import format_time

#: Indicator deltas larger than nothing are reported; rendering shows
#: at most this many, largest relative change first.
MAX_RENDERED_DELTAS = 20


class TraceDiff:
    """The outcome of diffing two recordings."""

    def __init__(
        self,
        count_a: int,
        count_b: int,
        first_divergence: Optional[Dict[str, Any]],
        indicator_deltas: Dict[str, Dict[str, float]],
        report_a: HealthReport,
        report_b: HealthReport,
    ) -> None:
        self.count_a = count_a
        self.count_b = count_b
        self.first_divergence = first_divergence
        self.indicator_deltas = indicator_deltas
        self.report_a = report_a
        self.report_b = report_b

    @property
    def identical(self) -> bool:
        return self.first_divergence is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-trace-diff/1",
            "identical": self.identical,
            "events": {"a": self.count_a, "b": self.count_b},
            "first_divergence": self.first_divergence,
            "indicator_deltas": {
                key: self.indicator_deltas[key]
                for key in sorted(self.indicator_deltas)
            },
        }


def _event_key(event: TraceEvent) -> Tuple[Any, ...]:
    args = event.args or {}
    return (
        round(event.time, 9),
        event.cat,
        event.name,
        event.ph,
        round(event.dur, 9),
        tuple(sorted((str(k), str(v)) for k, v in args.items())),
    )


def _differing_field(a: TraceEvent, b: TraceEvent) -> str:
    if round(a.time, 9) != round(b.time, 9):
        return "time"
    if a.cat != b.cat:
        return "cat"
    if a.name != b.name:
        return "name"
    if a.ph != b.ph:
        return "ph"
    if round(a.dur, 9) != round(b.dur, 9):
        return "dur"
    args_a, args_b = a.args or {}, b.args or {}
    for key in sorted(set(args_a) | set(args_b)):
        if str(args_a.get(key)) != str(args_b.get(key)):
            return f"args.{key}"
    return "args"


def diff_recordings(
    events_a: Iterable[TraceEvent], events_b: Iterable[TraceEvent]
) -> TraceDiff:
    """Stream both recordings once, in lockstep.

    Recordings are aligned positionally -- both are written in
    simulated-time dispatch order, so for deterministic replays of the
    same scenario the Nth events correspond.  The first position where
    they differ (or where one recording ends) is the first divergence.
    """
    analyzer_a, analyzer_b = HealthAnalyzer(), HealthAnalyzer()
    iter_a, iter_b = iter(events_a), iter(events_b)
    index = 0
    count_a = count_b = 0
    first: Optional[Dict[str, Any]] = None
    while True:
        event_a = next(iter_a, None)
        event_b = next(iter_b, None)
        if event_a is None and event_b is None:
            break
        if event_a is not None:
            count_a += 1
            analyzer_a.feed(event_a)
        if event_b is not None:
            count_b += 1
            analyzer_b.feed(event_b)
        if first is None:
            if event_a is None or event_b is None:
                which = "A" if event_a is None else "B"
                survivor = event_b if event_a is None else event_a
                first = {
                    "index": index,
                    "field": "length",
                    "detail": f"recording {which} ends at event {index}",
                    "event_a": event_a.to_dict() if event_a else None,
                    "event_b": event_b.to_dict() if event_b else None,
                    "time": round(survivor.time, 6) if survivor else None,
                }
            elif _event_key(event_a) != _event_key(event_b):
                first = {
                    "index": index,
                    "field": _differing_field(event_a, event_b),
                    "detail": None,
                    "event_a": event_a.to_dict(),
                    "event_b": event_b.to_dict(),
                    "time": round(min(event_a.time, event_b.time), 6),
                }
        index += 1
    report_a = analyzer_a.report()
    report_b = analyzer_b.report()
    deltas: Dict[str, Dict[str, float]] = {}
    flat_a, flat_b = report_a.flatten(), report_b.flatten()
    for key in set(flat_a) | set(flat_b):
        value_a, value_b = flat_a.get(key), flat_b.get(key)
        if value_a != value_b:
            deltas[key] = {
                "a": value_a,
                "b": value_b,
                "delta": (
                    round(value_b - value_a, 6)
                    if value_a is not None and value_b is not None
                    else None
                ),
            }
    return TraceDiff(count_a, count_b, first, deltas, report_a, report_b)


def diff_files(path_a: str, path_b: str) -> TraceDiff:
    """Diff two on-disk recordings (``.gz`` handled) streamingly."""
    from repro.obs.export import iter_jsonl

    return diff_recordings(iter_jsonl(path_a), iter_jsonl(path_b))


def _relative_change(entry: Dict[str, float]) -> float:
    a, b = entry.get("a"), entry.get("b")
    if a is None or b is None:
        return float("inf")
    base = max(abs(a), abs(b), 1e-12)
    return abs(b - a) / base


def render_diff(diff: TraceDiff, label_a: str = "A", label_b: str = "B") -> str:
    """Terminal-friendly diff: first divergence, then indicator deltas
    ordered by relative change."""
    lines: List[str] = [
        f"{label_a}: {diff.count_a} events    {label_b}: {diff.count_b} events"
    ]
    if diff.identical:
        lines.append("recordings are identical")
        return "\n".join(lines)
    first = diff.first_divergence
    lines.append("")
    when = format_time(first["time"]) if first.get("time") is not None else "-"
    lines.append(
        f"first divergence at event {first['index']} "
        f"(~{when} simulated, field: {first['field']})"
    )
    if first.get("detail"):
        lines.append(f"  {first['detail']}")
    for side, key in ((label_a, "event_a"), (label_b, "event_b")):
        event = first.get(key)
        if event is None:
            lines.append(f"  {side}: <recording ended>")
        else:
            args = " ".join(
                f"{k}={v}" for k, v in sorted((event.get("args") or {}).items())
            )
            lines.append(
                f"  {side}: t={event['time']:.3f} {event['cat']}/{event['name']} {args}".rstrip()
            )
    ordered = sorted(
        diff.indicator_deltas.items(),
        key=lambda item: (-_relative_change(item[1]), item[0]),
    )
    if ordered:
        lines.append("")
        lines.append(
            f"indicator deltas ({len(ordered)} changed, "
            f"top {min(len(ordered), MAX_RENDERED_DELTAS)}):"
        )
        for key, entry in ordered[:MAX_RENDERED_DELTAS]:
            a = "-" if entry["a"] is None else f"{entry['a']:g}"
            b = "-" if entry["b"] is None else f"{entry['b']:g}"
            lines.append(f"  {key:<48} {a:>12} -> {b:<12}")
    return "\n".join(lines)
