"""Self-contained static HTML export of a health report.

``repro report run.jsonl -o report.html`` produces one file with zero
external dependencies: the :class:`~repro.obs.analyze.health.HealthReport`
JSON is embedded verbatim inside a ``<script type="application/json">``
block (between :data:`JSON_BEGIN`/:data:`JSON_END` markers, so tooling
can extract it and compare byte-for-byte against ``repro trace analyze
--json``), and a small inline vanilla-JS renderer draws the summary
tiles, tables, and SVG curves client-side.  The file opens from disk,
from a CI artifact, or from an ``mailto:`` attachment -- no server, no
CDN, no build step.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.analyze.health import HealthReport

#: Markers bracketing the embedded JSON (exclusive of the newlines).
JSON_BEGIN = "/*HEALTH-JSON-BEGIN*/"
JSON_END = "/*HEALTH-JSON-END*/"

_CSS = """
:root { --fg:#1a1c1f; --muted:#667085; --line:#e4e7ec; --accent:#3056d3; --bg:#fff; }
* { box-sizing:border-box; }
body { font:14px/1.5 system-ui,-apple-system,"Segoe UI",sans-serif; color:var(--fg);
       background:var(--bg); margin:0 auto; max-width:1080px; padding:24px; }
h1 { font-size:20px; margin:0 0 4px; }
h2 { font-size:15px; margin:28px 0 8px; border-bottom:1px solid var(--line); padding-bottom:4px; }
.sub { color:var(--muted); margin-bottom:16px; }
.tiles { display:flex; flex-wrap:wrap; gap:12px; margin:16px 0; }
.tile { border:1px solid var(--line); border-radius:8px; padding:10px 16px; min-width:130px; }
.tile b { display:block; font-size:20px; }
.tile span { color:var(--muted); font-size:12px; }
table { border-collapse:collapse; width:100%; margin:8px 0; }
th, td { text-align:right; padding:4px 10px; border-bottom:1px solid var(--line);
         font-variant-numeric:tabular-nums; }
th:first-child, td:first-child { text-align:left; }
th { color:var(--muted); font-weight:600; font-size:12px; }
.flag { color:#b42318; font-weight:600; }
svg { border:1px solid var(--line); border-radius:8px; margin:8px 12px 8px 0; }
.chart-title { font-size:12px; color:var(--muted); }
"""

_JS = """
function el(tag, attrs, parent) {
  var node = document.createElement(tag);
  for (var k in (attrs || {})) {
    if (k === 'text') node.textContent = attrs[k]; else node.setAttribute(k, attrs[k]);
  }
  if (parent) parent.appendChild(node);
  return node;
}
function fmtTime(s) {
  if (s === null || s === undefined) return '-';
  var t = Math.floor(s), h = Math.floor(t / 3600), m = Math.floor((t % 3600) / 60);
  var pad = function (n) { return String(n).padStart(2, '0'); };
  return pad(h) + ':' + pad(m) + ':' + pad(t % 60);
}
function tile(parent, value, label) {
  var box = el('div', {class: 'tile'}, parent);
  el('b', {text: value}, box);
  el('span', {text: label}, box);
}
function table(parent, headers, rows) {
  var t = el('table', {}, parent), tr = el('tr', {}, el('thead', {}, t));
  headers.forEach(function (h) { el('th', {text: h}, tr); });
  var body = el('tbody', {}, t);
  rows.forEach(function (row) {
    var r = el('tr', {}, body);
    row.forEach(function (cell) {
      var td = el('td', {}, r);
      if (cell && cell.flag) { td.textContent = cell.text; td.className = 'flag'; }
      else td.textContent = (cell === null || cell === undefined) ? '-' : cell;
    });
  });
}
function curveChart(parent, title, curves, w, h) {
  w = w || 420; h = h || 160;
  var wrap = el('div', {style: 'display:inline-block'}, parent);
  el('div', {class: 'chart-title', text: title}, wrap);
  var svg = el('svg', {width: w, height: h, viewBox: '0 0 ' + w + ' ' + h}, wrap);
  var pad = 8, xmax = 0, ymax = 0;
  curves.forEach(function (c) { c.points.forEach(function (p) {
    if (p[0] > xmax) xmax = p[0]; if (p[1] > ymax) ymax = p[1]; }); });
  if (!xmax) xmax = 1; if (!ymax) ymax = 1;
  var colors = ['#3056d3', '#d98014', '#12805c', '#b42318', '#6941c6', '#0e7090'];
  curves.forEach(function (c, i) {
    var d = c.points.map(function (p, j) {
      var x = pad + (p[0] / xmax) * (w - 2 * pad);
      var y = h - pad - (p[1] / ymax) * (h - 2 * pad);
      return (j ? 'L' : 'M') + x.toFixed(1) + ',' + y.toFixed(1);
    }).join(' ');
    el('path', {d: d, fill: 'none', stroke: colors[i % colors.length],
                'stroke-width': 1.5}, svg);
  });
  var legend = el('div', {class: 'chart-title'}, wrap);
  legend.textContent = curves.map(function (c) { return c.label; }).join('  ·  ') +
    '   (x: 0..' + fmtTime(xmax) + ', y: 0..' + ymax + ')';
}
function render(data) {
  var root = document.getElementById('report');
  document.getElementById('subtitle').textContent =
    data.events.total + ' events over simulated [' + fmtTime(data.span.start) +
    ' .. ' + fmtTime(data.span.end) + ']  ·  schema ' + data.schema;
  var tiles = el('div', {class: 'tiles'}, root);
  tile(tiles, data.events.total, 'trace events');
  tile(tiles, fmtTime(data.span.duration), 'simulated span');
  tile(tiles, Object.keys(data.crawlers).length, 'crawlers');
  tile(tiles, data.net.drop_total, 'drops');
  if (data.detection) {
    tile(tiles, data.detection.round_count, 'detection rounds');
    tile(tiles, data.detection.detection_latency !== null ?
         fmtTime(data.detection.detection_latency) : '-', 'first verdict');
  }
  if (data.faults.total) tile(tiles, data.faults.total, 'faults injected');

  var names = Object.keys(data.crawlers);
  if (names.length) {
    el('h2', {text: 'Crawlers'}, root);
    table(root, ['crawler', 'distinct IPs', 'requests', 'req/h', 'reply %',
                 'expired', 'retries', 'gave up', 'rtt p50 (ms)', 'rtt p99 (ms)'],
      names.map(function (n) {
        var c = data.crawlers[n];
        return [n || '(unnamed)', c.distinct_ips, c.requests_issued,
                c.requests_per_hour !== null ? c.requests_per_hour.toFixed(0) : null,
                c.reply_rate !== null ? (c.reply_rate * 100).toFixed(1) : null,
                c.requests_expired, c.retries_scheduled, c.targets_gave_up,
                c.rtt ? (c.rtt.p50 * 1000).toFixed(1) : null,
                c.rtt ? (c.rtt.p99 * 1000).toFixed(1) : null];
      }));
    el('h2', {text: 'Coverage convergence'}, root);
    curveChart(root, 'distinct IPs over simulated time', names.map(function (n) {
      return {label: n || '(unnamed)', points: data.crawlers[n].coverage_curve};
    }));
    curveChart(root, 'stealth-budget burn (cumulative requests)', names.map(function (n) {
      return {label: n || '(unnamed)', points: data.crawlers[n].budget_burn};
    }));
    el('h2', {text: 'Coverage milestones'}, root);
    table(root, ['crawler', '25%', '50%', '75%', '90%', '95%', '99%'],
      names.map(function (n) {
        var m = data.crawlers[n].milestones;
        return [n || '(unnamed)'].concat(['25%', '50%', '75%', '90%', '95%', '99%']
          .map(function (k) { return m[k] !== null ? fmtTime(m[k]) : null; }));
      }));
  }
  if (data.detection && data.detection.rounds.length) {
    el('h2', {text: 'Detection rounds'}, root);
    table(root, ['end', 'groups', 'lost', 'votes', 'margin', 'classified',
                 'confidence', 'quorum'],
      data.detection.rounds.map(function (r) {
        return [fmtTime(r.end), r.groups, r.groups_lost, r.votes,
                r.vote_margin, r.classified, r.confidence,
                r.quorum_met === false ? {flag: true, text: 'DEGRADED'} : 'ok'];
      }));
    curveChart(root, 'round confidence over simulated time',
      [{label: 'confidence', points: data.detection.rounds.map(function (r) {
        return [r.end, r.confidence === null ? 0 : r.confidence]; })}], 420, 120);
  }
  el('h2', {text: 'Network'}, root);
  var dropRows = Object.keys(data.net.drops).map(function (r) {
    return ['drop[' + r + ']', data.net.drops[r]];
  });
  table(root, ['indicator', 'count'],
    [['send', data.net.send], ['deliver', data.net.deliver],
     ['dup', data.net.dup], ['reorder', data.net.reorder]].concat(dropRows));
  if (data.faults.total) {
    el('h2', {text: 'Faults'}, root);
    table(root, ['kind', 'count'], Object.keys(data.faults.by_kind).map(function (k) {
      return [k, data.faults.by_kind[k]];
    }));
  }
}
render(JSON.parse(document.getElementById('health-report-data').textContent
  .split('/*HEALTH-JSON-BEGIN*/')[1].split('/*HEALTH-JSON-END*/')[0]));
"""


def render_html(report: HealthReport, title: str = "repro run health") -> str:
    """The report as one self-contained HTML document.

    The embedded JSON between the markers is exactly
    :meth:`HealthReport.to_json` -- the acceptance contract with
    ``repro trace analyze --json``.
    """
    json_text = report.to_json()
    return (
        "<!doctype html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{_escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        f"<h1>{_escape(title)}</h1>\n"
        '<div class="sub" id="subtitle"></div>\n'
        '<div id="report"></div>\n'
        '<script type="application/json" id="health-report-data">'
        f"{JSON_BEGIN}\n{json_text}\n{JSON_END}"
        "</script>\n"
        f"<script>{_JS}</script>\n"
        "</body>\n</html>\n"
    )


def extract_embedded_json(html: str) -> Optional[str]:
    """The embedded report JSON, byte-for-byte (None if absent).
    The inverse of :func:`render_html`; tests and CI use it to check
    the HTML against ``repro trace analyze --json``."""
    start = html.find(JSON_BEGIN)
    end = html.find(JSON_END)
    if start < 0 or end < 0:
        return None
    return html[start + len(JSON_BEGIN) : end].strip("\n")


def write_html_report(report: HealthReport, path: str, title: str = "repro run health") -> None:
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(render_html(report, title=title))


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
