"""Structured trace events and the post-mortem flight recorder.

A :class:`TraceEvent` is one observation keyed to *simulated* time:
what happened (``name``), in which layer (``cat``), instantaneous or
spanning (``ph``/``dur``), with free-form ``args``.  The phase letters
follow the Chrome trace-event format so export is a straight mapping:

* ``"i"`` -- instant event (a send, a drop, a fault firing);
* ``"X"`` -- complete event with a duration (a detection round, a
  sweep point);
* ``"C"`` -- counter sample (heap depth over time).

The :class:`FlightRecorder` is a bounded ring buffer holding the last
N events; it costs O(capacity) memory regardless of run length, so it
can stay on during long simulations and be dumped after a failure --
the "what were the last 10k things the system did" post-mortem view.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, Iterator, List, Mapping, Optional

INSTANT = "i"
COMPLETE = "X"
COUNTER = "C"


class TraceEvent:
    """One trace record; plain data, cheap to create, JSON-able."""

    __slots__ = ("time", "cat", "name", "ph", "dur", "args")

    def __init__(
        self,
        time: float,
        cat: str,
        name: str,
        ph: str = INSTANT,
        dur: float = 0.0,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.time = time
        self.cat = cat
        self.name = name
        self.ph = ph
        self.dur = dur
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "time": self.time, "cat": self.cat, "name": self.name, "ph": self.ph
        }
        if self.ph == COMPLETE:
            out["dur"] = self.dur
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            time=float(data["time"]),
            cat=str(data["cat"]),
            name=str(data["name"]),
            ph=str(data.get("ph", INSTANT)),
            dur=float(data.get("dur", 0.0)),
            args=data.get("args"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(t={self.time:.3f}, {self.cat}/{self.name}, "
            f"ph={self.ph}, args={self.args})"
        )


class FlightRecorder:
    """Bounded ring buffer of the most recent trace events.

    Appending past capacity silently evicts the oldest event, so the
    recorder never grows: ``len(recorder) <= capacity`` is an invariant
    the test suite asserts.  Use as a :class:`~repro.obs.tracer.Tracer`
    buffer when a full recording would be too large to keep.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)

    def append(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.dropped = 0
