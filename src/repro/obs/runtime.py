"""Ambient observability context.

Simulation components are built deep inside scenario builders that
long predate observability, so instead of threading a tracer through
every constructor, components capture the *ambient* tracer/registry at
construction time::

    from repro.obs import runtime
    ...
    self._trace = runtime.tracer()      # NullTracer unless activated
    self._metrics = runtime.metrics()   # NullRegistry unless activated

Callers that want a run observed activate the context *before*
building the scenario::

    with runtime.activated(tracer=Tracer(), metrics=MetricsRegistry()):
        scenario = build_zeus_scenario(...)
        scenario.run_for(...)

Outside an activation everything is the null implementation, so the
default cost of the whole subsystem is one truthy-check per
instrumented event.  The context is process-global (the simulator is
single-threaded by design); sweep workers activate a fresh registry
per point, which is what makes per-point metric snapshots shard-safe.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

_tracer = NULL_TRACER
_metrics = NULL_METRICS


def tracer():
    """The ambient tracer (:data:`NULL_TRACER` unless activated)."""
    return _tracer


def metrics():
    """The ambient metrics registry (:data:`NULL_METRICS` unless
    activated)."""
    return _metrics


def activate(tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None) -> None:
    """Install ``tracer``/``metrics`` as the ambient context.

    ``None`` leaves the corresponding slot unchanged.  Prefer
    :func:`activated` unless the activation must outlive a scope (the
    CLI uses this form around its whole command body).
    """
    global _tracer, _metrics
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics


def deactivate() -> None:
    """Reset both slots to the null implementations."""
    global _tracer, _metrics
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS


@contextmanager
def activated(
    tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None
) -> Iterator[None]:
    """Scoped activation; restores the previous context on exit (so
    nested activations -- a per-point registry inside a traced sweep --
    compose)."""
    global _tracer, _metrics
    previous = (_tracer, _metrics)
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics
    try:
        yield
    finally:
        _tracer, _metrics = previous
