"""Ambient observability context.

Simulation components are built deep inside scenario builders that
long predate observability, so instead of threading a tracer through
every constructor, components capture the *ambient* tracer/registry at
construction time::

    from repro.obs import runtime
    ...
    self._trace = runtime.tracer()      # NullTracer unless activated
    self._metrics = runtime.metrics()   # NullRegistry unless activated

Callers that want a run observed activate the context *before*
building the scenario::

    with runtime.activated(tracer=Tracer(), metrics=MetricsRegistry()):
        scenario = build_zeus_scenario(...)
        scenario.run_for(...)

Outside an activation everything is the null implementation, so the
default cost of the whole subsystem is one truthy-check per
instrumented event.  The context is process-global (the simulator is
single-threaded by design); sweep workers activate a fresh registry
per point, which is what makes per-point metric snapshots shard-safe.

Two further slots follow the same pattern: the subsystem
:func:`profiler` (schedulers install it on their ``set_profile`` seam
at construction; transports tag delivery tiers through it) and the
:func:`telemetry` emitter (schedulers tick it once per dispatch batch;
transports register for path-cache stats).  Both default to falsy
nulls, so simulation code never branches on "is observability on".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullRegistry
from repro.obs.profile.profiler import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

_tracer = NULL_TRACER
_metrics = NULL_METRICS
_profiler: Any = NULL_PROFILER
_telemetry: Optional[Any] = None


def tracer():
    """The ambient tracer (:data:`NULL_TRACER` unless activated)."""
    return _tracer


def metrics():
    """The ambient metrics registry (:data:`NULL_METRICS` unless
    activated)."""
    return _metrics


def profiler():
    """The ambient subsystem profiler (falsy ``NULL_PROFILER`` unless
    activated)."""
    return _profiler


def telemetry():
    """The ambient telemetry emitter, or None when not activated."""
    return _telemetry


def activate(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Any] = None,
    telemetry: Optional[Any] = None,
) -> None:
    """Install the given objects as the ambient context.

    ``None`` leaves the corresponding slot unchanged.  Prefer
    :func:`activated` unless the activation must outlive a scope (the
    CLI uses this form around its whole command body).
    """
    global _tracer, _metrics, _profiler, _telemetry
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics
    if profiler is not None:
        _profiler = profiler
    if telemetry is not None:
        _telemetry = telemetry


def deactivate() -> None:
    """Reset every slot to the null implementations."""
    global _tracer, _metrics, _profiler, _telemetry
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS
    _profiler = NULL_PROFILER
    _telemetry = None


@contextmanager
def activated(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Any] = None,
    telemetry: Optional[Any] = None,
) -> Iterator[None]:
    """Scoped activation; restores the previous context on exit (so
    nested activations -- a per-point registry inside a traced sweep --
    compose)."""
    global _tracer, _metrics, _profiler, _telemetry
    previous = (_tracer, _metrics, _profiler, _telemetry)
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics
    if profiler is not None:
        _profiler = profiler
    if telemetry is not None:
        _telemetry = telemetry
    try:
        yield
    finally:
        _tracer, _metrics, _profiler, _telemetry = previous
