"""The tracer: how instrumented code emits structured events.

Two implementations share one interface:

* :class:`Tracer` appends :class:`~repro.obs.events.TraceEvent`
  objects to a buffer (an unbounded list, or a bounded
  :class:`~repro.obs.events.FlightRecorder`);
* :class:`NullTracer` -- the default everywhere -- does nothing and is
  *falsy*, so the idiom at every instrumented call site is::

      self._trace = runtime.tracer()        # at construction
      ...
      if self._trace:                        # one truthiness check
          self._trace.instant(now, "net", "send", src=..., dst=...)

  With tracing off, the hot path pays a single branch: no kwargs dict
  is built, no strings are formatted, nothing is appended.

Events are keyed to **simulated** time supplied by the caller -- the
tracer never reads a clock itself, never draws randomness, and never
schedules anything, which is what makes a traced run byte-identical
to an untraced one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Union

from repro.obs.events import COMPLETE, COUNTER, INSTANT, FlightRecorder, TraceEvent

Buffer = Union[List[TraceEvent], FlightRecorder]


class Tracer:
    """Collects structured trace events keyed to simulated time."""

    enabled = True

    def __init__(self, buffer: Optional[Buffer] = None) -> None:
        self.buffer: Buffer = buffer if buffer is not None else []

    def __bool__(self) -> bool:
        return True

    # -- emission --------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        self.buffer.append(event)

    def instant(self, time: float, cat: str, name: str, **args: Any) -> None:
        """An instantaneous event at simulated ``time``."""
        self.buffer.append(TraceEvent(time, cat, name, INSTANT, 0.0, args or None))

    def instant_args(self, time: float, cat: str, name: str, args=None) -> None:
        """:meth:`instant` taking a prebuilt args dict (or None).

        Hot emitters (the transport fires two events per message) build
        their args dict once and pass it through, skipping the kwargs
        repack ``**args`` would cost.  Event content is identical.
        """
        self.buffer.append(TraceEvent(time, cat, name, INSTANT, 0.0, args))

    def complete(
        self, start: float, end: float, cat: str, name: str, **args: Any
    ) -> None:
        """A span covering ``[start, end]`` in simulated time."""
        self.buffer.append(
            TraceEvent(start, cat, name, COMPLETE, end - start, args or None)
        )

    def counter(self, time: float, cat: str, name: str, **values: float) -> None:
        """A counter sample (renders as a stacked track in Perfetto)."""
        self.buffer.append(TraceEvent(time, cat, name, COUNTER, 0.0, values))

    @contextmanager
    def span(self, cat: str, name: str, clock, **args: Any) -> Iterator[None]:
        """A simulated-time span around a block: reads ``clock.now`` at
        entry and exit (``clock`` is anything with a ``now`` attribute,
        typically the scheduler)."""
        start = clock.now
        try:
            yield
        finally:
            self.complete(start, clock.now, cat, name, **args)

    # -- access ----------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        if isinstance(self.buffer, FlightRecorder):
            return self.buffer.events()
        return list(self.buffer)

    def __len__(self) -> int:
        return len(self.buffer)


class _NullSpan:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: falsy, every method a no-op.

    Instrumented call sites should still guard event emission with
    ``if self._trace:`` -- the guard, not the no-op methods, is what
    keeps kwargs/string construction out of disabled hot paths.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def emit(self, event: TraceEvent) -> None:
        pass

    def instant(self, time: float, cat: str, name: str, **args: Any) -> None:
        pass

    def instant_args(self, time: float, cat: str, name: str, args=None) -> None:
        pass

    def complete(self, start: float, end: float, cat: str, name: str, **args: Any) -> None:
        pass

    def counter(self, time: float, cat: str, name: str, **values: float) -> None:
        pass

    def span(self, cat: str, name: str, clock, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
