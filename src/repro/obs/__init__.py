"""Observability: deterministic tracing, metrics, and flight recording.

Every simulation layer emits structured trace events (keyed to
*simulated* time) and labeled metrics through this package, under one
hard invariant: **observation never perturbs the run**.  Instrumented
code draws no randomness, schedules nothing, and reorders nothing, so
a run with tracing and metrics enabled produces byte-identical
exhibits to one without -- asserted by ``tests/obs`` against the
golden fig2/fig3 snapshots.

With observability off (the default), every hook is a falsy null stub
and instrumented hot paths pay a single truthiness check per event --
no dict or string work.  Enable it ambiently::

    from repro.obs import MetricsRegistry, Tracer, runtime

    with runtime.activated(tracer=Tracer(), metrics=MetricsRegistry()):
        ...build and run a scenario...

or from the CLI with ``--trace``/``--metrics`` on ``repro
crawl|detect|chaos|sweep``, then inspect/convert recordings with
``repro trace``.
"""

from repro.obs import analyze, profile, runtime
from repro.obs.events import COMPLETE, COUNTER, INSTANT, FlightRecorder, TraceEvent
from repro.obs.export import (
    chrome_trace,
    iter_dict_jsonl,
    iter_jsonl,
    metrics_json,
    read_jsonl,
    render_events,
    render_summary,
    write_chrome_trace,
    write_dict_jsonl,
    write_jsonl,
    write_metrics,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    SubsystemProfiler,
    collapsed_stacks,
    profile_breakdown,
    render_profile,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    LiveRunView,
    TelemetryEmitter,
    iter_telemetry,
    read_telemetry,
    render_fleet,
    render_snapshot,
)
from repro.obs.instrument import (
    CallbackProfile,
    ObsSession,
    TraceProgress,
    instrument_scheduler,
)
from repro.obs.metrics import (
    NULL_METRIC,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
    merge_snapshots,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "analyze",
    "CallbackProfile",
    "chrome_trace",
    "collapsed_stacks",
    "COMPLETE",
    "Counter",
    "COUNTER",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "INSTANT",
    "instrument_scheduler",
    "iter_dict_jsonl",
    "iter_jsonl",
    "iter_telemetry",
    "LiveRunView",
    "merge_snapshots",
    "metrics_json",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_METRICS",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullMetric",
    "NullProfiler",
    "NullRegistry",
    "NullTracer",
    "ObsSession",
    "profile",
    "profile_breakdown",
    "read_jsonl",
    "read_telemetry",
    "render_events",
    "render_fleet",
    "render_profile",
    "render_snapshot",
    "render_summary",
    "runtime",
    "speedscope_document",
    "SubsystemProfiler",
    "TELEMETRY_SCHEMA",
    "TelemetryEmitter",
    "TraceEvent",
    "TraceProgress",
    "Tracer",
    "write_chrome_trace",
    "write_collapsed",
    "write_dict_jsonl",
    "write_jsonl",
    "write_metrics",
    "write_speedscope",
]
