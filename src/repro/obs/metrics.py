"""Labeled Counter/Gauge/Histogram registry with free no-op stubs.

The registry follows the prometheus-client shape -- a metric is
created once (``registry.counter("transport.sent")``), optionally
narrowed to a labeled child (``drops.labels("loss")``), and the child
is the thing hot paths hold on to.  Two properties keep instrumented
code honest:

* **Disabled means free.**  The :data:`NULL_METRICS` registry hands
  out one shared :class:`NullMetric` whose every method is a no-op, so
  instrumented call sites pay one attribute call per event and do no
  dict or string work.  Components capture their metric objects at
  construction time (see :mod:`repro.obs.runtime`), never per event.
* **Observation only.**  Metrics never touch simulation RNG or the
  scheduler, so a run with metrics on is event-for-event identical to
  one with them off.

Snapshots are plain JSON-able dicts; :func:`merge_snapshots` combines
per-shard snapshots (e.g. one per sweep point) into a whole-run view.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets: log-ish spread from sub-millisecond
#: callback times to multi-second latencies (upper bounds, seconds).
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)

#: Joined-label key used for a metric's unlabeled (default) child.
UNLABELED = ""


class _CounterChild:
    """One labeled time series of a counter; ``inc`` is the hot path."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """Bucketed distribution; tracks count/sum/min/max alongside."""

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class _Metric:
    """Shared parent: child management and label plumbing."""

    kind = ""
    child_type: type = _CounterChild

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._children: Dict[str, Any] = {}

    def _new_child(self) -> Any:
        return self.child_type()

    def labels(self, *values: str) -> Any:
        """The child for one label tuple, created on first use.

        Labels are positional strings joined with ``|``; call once and
        keep the child if the call site is hot.
        """
        key = "|".join(values)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    @property
    def _default(self) -> Any:
        return self.labels()

    def snapshot_values(self) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"
    child_type = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return self._default.value

    def snapshot_values(self) -> Dict[str, Any]:
        return {key: child.value for key, child in sorted(self._children.items())}


class Gauge(_Metric):
    """A value that can go up and down (heap depth, confidence)."""

    kind = "gauge"
    child_type = _GaugeChild

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value

    def snapshot_values(self) -> Dict[str, Any]:
        return {key: child.value for key, child in sorted(self._children.items())}


class Histogram(_Metric):
    """A bucketed distribution (callback wall-times, latencies)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(buckets)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def snapshot_values(self) -> Dict[str, Any]:
        out = {}
        for key, child in sorted(self._children.items()):
            out[key] = {
                "count": child.count,
                "sum": child.sum,
                "min": child.min if child.count else None,
                "max": child.max if child.count else None,
                "buckets": dict(zip([str(b) for b in child.buckets] + ["+Inf"], child.counts)),
            }
        return out


class NullMetric:
    """The do-nothing stand-in for every disabled metric.

    One shared instance serves every metric name and label set: all
    mutators are no-ops and ``labels`` returns ``self``, so call sites
    need no enabled/disabled branches.
    """

    __slots__ = ()

    kind = "null"
    name = ""
    help = ""
    value = 0.0

    def labels(self, *values: str) -> "NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot_values(self) -> Dict[str, Any]:
        return {}


NULL_METRIC = NullMetric()


class MetricsRegistry:
    """Creates, caches, and snapshots named metrics.

    ``counter``/``gauge``/``histogram`` are idempotent by name, so any
    component can ask for "its" metric without coordination.
    Collectors registered with :meth:`register_collector` run right
    before each snapshot -- the hook that lets passive state (scheduler
    stats, transport totals) surface as gauges with zero per-event
    cost.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Any] = []

    def __bool__(self) -> bool:
        return True

    def _get(self, name: str, factory, kind: str) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, help, buckets), "histogram")

    def register_collector(self, collector) -> None:
        """``collector(registry)`` runs before every snapshot."""
        self._collectors.append(collector)

    def counter_totals(self) -> Dict[str, float]:
        """Every counter's value summed over its labels.

        Unlike :meth:`snapshot` this runs no collectors and builds no
        nested structure -- it is the cheap read the telemetry emitter
        takes once per emission interval.
        """
        return {
            name: sum(metric.snapshot_values().values())
            for name, metric in sorted(self._metrics.items())
            if metric.kind == "counter"
        }

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as a plain JSON-able mapping."""
        for collector in self._collectors:
            collector(self)
        return {
            name: {
                "kind": metric.kind,
                "help": metric.help,
                "values": metric.snapshot_values(),
            }
            for name, metric in sorted(self._metrics.items())
        }


class NullRegistry:
    """The disabled registry: every metric is :data:`NULL_METRIC`."""

    enabled = False

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str, help: str = "") -> NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> NullMetric:
        return NULL_METRIC

    def register_collector(self, collector) -> None:
        pass

    def counter_totals(self) -> Dict[str, float]:
        return {}

    def snapshot(self) -> Dict[str, Any]:
        return {}


NULL_METRICS = NullRegistry()


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Combine per-shard snapshots into one.

    Counters and histogram counts/sums add; gauges keep their maximum
    (shards are peers, so "largest seen" is the only order-free
    choice); histogram min/max widen.  Used by the sweep runner to
    fold per-point snapshots into a whole-sweep view.
    """
    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            target = merged.get(name)
            if target is None:
                merged[name] = _copy_entry(entry)
                continue
            if target["kind"] != entry["kind"]:
                raise ValueError(f"metric {name!r} kind mismatch across snapshots")
            _merge_entry(target, entry)
    return {name: merged[name] for name in sorted(merged)}


def _copy_entry(entry: Mapping[str, Any]) -> Dict[str, Any]:
    values = entry["values"]
    copied = {
        key: dict(value) if isinstance(value, Mapping) else value
        for key, value in values.items()
    }
    for value in copied.values():
        if isinstance(value, dict) and "buckets" in value:
            value["buckets"] = dict(value["buckets"])
    return {"kind": entry["kind"], "help": entry.get("help", ""), "values": copied}


def _merge_entry(target: Dict[str, Any], entry: Mapping[str, Any]) -> None:
    kind = entry["kind"]
    for key, value in entry["values"].items():
        current = target["values"].get(key)
        if current is None:
            target["values"][key] = (
                dict(value) if isinstance(value, Mapping) else value
            )
            if isinstance(value, Mapping) and "buckets" in value:
                target["values"][key]["buckets"] = dict(value["buckets"])
            continue
        if kind == "counter":
            target["values"][key] = current + value
        elif kind == "gauge":
            target["values"][key] = max(current, value)
        else:  # histogram
            current["count"] += value["count"]
            current["sum"] += value["sum"]
            for bound in (value["min"], ):
                if bound is not None and (current["min"] is None or bound < current["min"]):
                    current["min"] = bound
            for bound in (value["max"], ):
                if bound is not None and (current["max"] is None or bound > current["max"]):
                    current["max"] = bound
            for bucket, count in value["buckets"].items():
                current["buckets"][bucket] = current["buckets"].get(bucket, 0) + count
