"""Virtual clock and time-unit helpers.

Simulated time is a float number of seconds since the start of the
simulation.  The clock only moves when the scheduler dispatches events,
so a 24-hour experiment (the paper's standard measurement window)
completes in wall-clock seconds.
"""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR


class Clock:
    """Monotonic virtual clock.

    Only the owning :class:`~repro.sim.scheduler.Scheduler` should call
    :meth:`advance`; everything else reads :attr:`now`.
    """

    #: ``now`` is a plain attribute, not a property: it is read on
    #: every send, deliver, and cycle, and the descriptor hop showed up
    #: in profiles.  Treat it as read-only outside :meth:`advance`.
    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self.now = float(start)

    def advance(self, to: float) -> None:
        """Move the clock forward to ``to``.

        Raises :class:`ValueError` on any attempt to move backwards;
        a time-travelling clock would invalidate every log timestamp.
        """
        if to < self.now:
            raise ValueError(
                f"clock cannot move backwards ({to:.6f} < {self.now:.6f})"
            )
        self.now = to


def format_time(seconds: float) -> str:
    """Render a simulated timestamp as ``HH:MM:SS`` (wraps past 24h).

    >>> format_time(3661)
    '01:01:01'
    """
    total = int(seconds)
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"
