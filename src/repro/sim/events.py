"""Structured event records and an append-only event log.

Components that want replayable telemetry (sensors logging incoming
requests, transports logging deliveries) append :class:`Event` records
to an :class:`EventLog`.  The crawler-detection evaluation in Section 6
of the paper runs *offline* over logged sensor traffic; the log defined
here is the substrate for that replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence.

    ``kind`` is a short dotted tag (e.g. ``"zeus.peer_list_request"``),
    ``source``/``target`` identify endpoints when applicable, and
    ``data`` carries kind-specific payload fields.
    """

    time: float
    kind: str
    source: Optional[str] = None
    target: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only, time-ordered event log with simple query helpers."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def append(self, event: Event) -> None:
        if self._events and event.time < self._events[-1].time:
            raise ValueError(
                "events must be appended in non-decreasing time order "
                f"({event.time} < {self._events[-1].time})"
            )
        self._events.append(event)

    def record(
        self,
        time: float,
        kind: str,
        source: Optional[str] = None,
        target: Optional[str] = None,
        **data: Any,
    ) -> Event:
        """Build an :class:`Event` and append it in one call."""
        event = Event(time=time, kind=kind, source=source, target=target, data=data)
        self.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        target: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> List[Event]:
        """Return events matching every given criterion.

        ``since`` is inclusive, ``until`` exclusive, mirroring the
        half-open history intervals used by the detection algorithm.
        """
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if source is not None and event.source != source:
                continue
            if target is not None and event.target != target:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time >= until:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def kinds(self) -> Dict[str, int]:
        """Histogram of event kinds, handy in tests and debugging."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
