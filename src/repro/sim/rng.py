"""Named deterministic random streams.

Every stochastic component (churn, protocol field randomization, crawler
scheduling, ...) draws from its own named stream derived from one master
seed.  This gives two properties the experiments rely on:

* **Reproducibility** -- the same master seed regenerates the same
  tables and figures bit-for-bit.
* **Isolation** -- adding draws to one component does not perturb any
  other component's stream, so ablations compare like with like.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a label.

    Uses SHA-256 over the pair, so child streams are statistically
    independent for all practical purposes.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* object, so
        state advances across call sites sharing a stream.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry rooted at a derived seed.

        Used to give each bot its own registry without coupling bots'
        streams to one another.
        """
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
