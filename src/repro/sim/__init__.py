"""Discrete-event simulation kernel.

The kernel provides three building blocks used by every other subsystem:

* :mod:`repro.sim.clock` -- a virtual clock plus time-unit constants.
* :mod:`repro.sim.scheduler` -- a binary-heap event scheduler with
  cancellable timers, the main loop of every simulation in this repo.
* :mod:`repro.sim.rng` -- named, deterministic random streams derived
  from one master seed, so that whole experiments are reproducible.

All simulated time is expressed in float seconds.  The paper's
experiments cover 24-hour windows (a full diurnal cycle); constants for
minutes/hours/days live in :mod:`repro.sim.clock`.
"""

from repro.sim.clock import DAY, HOUR, MINUTE, SECOND, Clock, format_time
from repro.sim.events import Event, EventLog
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.scheduler import Scheduler, Timer

__all__ = [
    "Clock",
    "DAY",
    "Event",
    "EventLog",
    "HOUR",
    "MINUTE",
    "RngRegistry",
    "SECOND",
    "Scheduler",
    "Timer",
    "derive_seed",
    "format_time",
]
