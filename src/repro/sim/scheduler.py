"""Binary-heap discrete-event scheduler.

This is the main loop of every simulation in the repository.  Callbacks
are scheduled at absolute or relative simulated times; ties are broken
by insertion order so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.clock import Clock


@dataclass(frozen=True)
class SchedulerStats:
    """A scheduler's lifetime counters (observability; see ``stats()``).

    ``cancelled`` is cumulative over the scheduler's life, unlike the
    internal dead-entry count that compaction resets.
    """

    dispatched: int
    cancelled: int
    compactions: int
    peak_heap: int
    pending: int
    heap_size: int


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped
    at dispatch time, which keeps ``cancel()`` O(1).  The owning
    scheduler counts cancellations and compacts its heap once dead
    entries pile up, so heavy cancel churn cannot grow the heap
    without bound.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        scheduler: Optional["Scheduler"] = None,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancelled()
            self._scheduler = None


class Scheduler:
    """Discrete-event scheduler over a :class:`~repro.sim.clock.Clock`.

    Typical use::

        sched = Scheduler()
        sched.call_later(30.0, bot.wake)
        sched.run_until(DAY)
    """

    #: Never compact below this many dead entries: tiny heaps are not
    #: worth the heapify, and the threshold keeps compaction amortized
    #: O(1) per cancellation.
    COMPACTION_MIN = 64

    def __init__(
        self, clock: Optional[Clock] = None, compaction_min: Optional[int] = None
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[Tuple[float, int, Timer]] = []
        self._sequence = 0
        self._dispatched = 0
        self._cancelled = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._peak_heap = 0
        self._compaction_min = (
            self.COMPACTION_MIN if compaction_min is None else compaction_min
        )
        # Optional observability hook: anything with record(callback,
        # seconds).  None (the default) keeps step() branch-cheap.
        self._profile: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self) -> int:
        """Physical heap length, dead entries included (for tests)."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """Times the heap has been compacted since construction."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """A live heap entry was cancelled; compact once the dead
        outnumber the living (and exceed the minimum threshold)."""
        self._cancelled += 1
        self._cancelled_total += 1
        if (
            self._cancelled >= self._compaction_min
            and self._cancelled * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant.

        Entries keep their (time, sequence) keys, so dispatch order --
        including insertion-order tie-breaking -- is unchanged.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1

    @property
    def dispatched(self) -> int:
        """Total callbacks dispatched since construction."""
        return self._dispatched

    def stats(self) -> SchedulerStats:
        """Lifetime counters as one immutable snapshot."""
        return SchedulerStats(
            dispatched=self._dispatched,
            cancelled=self._cancelled_total,
            compactions=self._compactions,
            peak_heap=self._peak_heap,
            pending=self.pending,
            heap_size=len(self._heap),
        )

    def set_profile(self, profile: Optional[Any]) -> None:
        """Install (or clear, with None) a callback wall-time profiler:
        any object with ``record(callback, seconds)``.  Profiling reads
        the host clock around each dispatch but never the simulated
        one, so it cannot perturb event order."""
        self._profile = profile

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past ({time:.6f} < {self.clock.now:.6f})"
            )
        timer = Timer(time, callback, args, scheduler=self)
        heapq.heappush(self._heap, (time, self._sequence, timer))
        self._sequence += 1
        if len(self._heap) > self._peak_heap:
            self._peak_heap = len(self._heap)
        return timer

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.clock.now + delay, callback, *args)

    def _pop_next(self) -> Optional[Timer]:
        while self._heap:
            _, _, timer = heapq.heappop(self._heap)
            if not timer.cancelled:
                # Dispatching detaches the handle: a late cancel() is a
                # no-op and must not skew the dead-entry count.
                timer._scheduler = None
                return timer
            self._cancelled -= 1
        return None

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False when idle."""
        timer = self._pop_next()
        if timer is None:
            return False
        self.clock.advance(timer.time)
        self._dispatched += 1
        if self._profile is None:
            timer.callback(*timer.args)
        else:
            started = perf_counter()
            timer.callback(*timer.args)
            self._profile.record(timer.callback, perf_counter() - started)
        return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events up to and including simulated ``time``.

        The clock lands exactly on ``time`` afterwards even if the last
        event fired earlier, so back-to-back ``run_until`` calls tile a
        timeline cleanly.  Returns the number of events dispatched.
        ``max_events`` is a safety valve against runaway self-scheduling
        loops; exceeding it raises :class:`RuntimeError`.
        """
        dispatched = 0
        while self._heap:
            next_time = self._next_live_time()
            if next_time is None or next_time > time:
                break
            self.step()
            dispatched += 1
            if max_events is not None and dispatched > max_events:
                raise RuntimeError(
                    f"run_until({time}) exceeded max_events={max_events}; "
                    "likely a self-rescheduling loop with zero delay"
                )
        if time > self.clock.now:
            self.clock.advance(time)
        return dispatched

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event heap is empty."""
        dispatched = 0
        while self.step():
            dispatched += 1
            if dispatched > max_events:
                raise RuntimeError(f"run() exceeded max_events={max_events}")
        return dispatched

    def _next_live_time(self) -> Optional[float]:
        while self._heap:
            time, _, timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            return time
        return None
