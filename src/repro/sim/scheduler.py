"""Discrete-event scheduler: timer wheel + binary heaps.

This is the main loop of every simulation in the repository.  Callbacks
are scheduled at absolute or relative simulated times; ties are broken
by insertion order so runs are fully deterministic.

Timers live in one of three stores, merged at dispatch time by true
``(time, sequence)`` key comparison:

``_due``
    A binary heap of near-term entries (and anything displaced out of
    the wheel).  This is where entries wait immediately before firing.
``_wheel``
    A coarse timer wheel -- ``WHEEL_SLOTS`` buckets of
    ``WHEEL_GRANULARITY`` simulated seconds each -- giving O(1) insert
    for the dominant short-horizon timers (message deliveries, retry
    backoffs).  Each slot caches its minimum entry so the dispatch loop
    can compare against the heaps without scanning; a slot is drained
    into ``_due`` only once its minimum becomes the global minimum.
    Bucketing is therefore purely a performance hint: even a
    float-rounding misplacement cannot reorder events.
``_heap``
    An overflow heap for far-future entries beyond the wheel's window
    (periodic bot cycles, day-scale experiment milestones).  Far
    entries are never migrated; the three-way merge handles them.

Dispatch is batched: ``run_until``/``run`` claim all entries sharing
the earliest timestamp in one pass, advancing the clock and checking
the window boundary once per batch instead of once per event, with no
separate peek step.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import runtime as obs
from repro.sim.clock import Clock

#: A scheduled entry as stored: (time, sequence, timer).  Sequence
#: numbers are unique, so entry comparison is total and never falls
#: through to comparing Timer objects.
_Entry = Tuple[float, int, "Timer"]


@dataclass(frozen=True)
class SchedulerStats:
    """A scheduler's lifetime counters (observability; see ``stats()``).

    ``cancelled`` is cumulative over the scheduler's life, unlike the
    internal dead-entry count that compaction resets.  ``peak_heap``
    and ``heap_size`` count physical entries across all three stores.
    """

    dispatched: int
    cancelled: int
    compactions: int
    peak_heap: int
    pending: int
    heap_size: int


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the stored entry stays in place and is
    skipped at dispatch time, which keeps ``cancel()`` O(1) -- but the
    callback and its arguments are released immediately so closures and
    bound methods do not linger until compaction.  The owning scheduler
    counts cancellations and compacts its stores once dead entries pile
    up, so heavy cancel churn cannot grow them without bound.

    A ``repeat`` timer (see :meth:`Scheduler.call_every`) is re-armed
    after each dispatch from its callback's return value; one handle
    covers every occurrence.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "repeat", "_scheduler")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        scheduler: Optional["Scheduler"] = None,
        repeat: bool = False,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.repeat = repeat
        self._scheduler = scheduler

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # Release the closure right away; the dead entry itself is
        # reaped lazily.
        self.callback = None
        self.args = ()
        if self._scheduler is not None:
            self._scheduler._note_cancelled()
            self._scheduler = None


class Scheduler:
    """Discrete-event scheduler over a :class:`~repro.sim.clock.Clock`.

    Typical use::

        sched = Scheduler()
        sched.call_later(30.0, bot.wake)
        sched.call_every(60.0, bot.cycle)   # cycle() returns next delay
        sched.run_until(DAY)
    """

    #: Never compact below this many dead entries: tiny stores are not
    #: worth the heapify, and the threshold keeps compaction amortized
    #: O(1) per cancellation.
    COMPACTION_MIN = 64

    #: Timer-wheel geometry: WHEEL_SLOTS buckets of WHEEL_GRANULARITY
    #: simulated seconds give a 128 s window, sized to the short-horizon
    #: timers (deliveries, retries, reorder penalties) that dominate
    #: insert traffic.  Anything beyond the window overflows to a heap.
    WHEEL_SLOTS = 256
    WHEEL_GRANULARITY = 0.5

    def __init__(
        self, clock: Optional[Clock] = None, compaction_min: Optional[int] = None
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self._due: List[_Entry] = []
        self._heap: List[_Entry] = []
        self._wheel: List[List[_Entry]] = [[] for _ in range(self.WHEEL_SLOTS)]
        self._wheel_min: List[Optional[_Entry]] = [None] * self.WHEEL_SLOTS
        self._wheel_count = 0
        self._wheel_base = 0.0
        self._wheel_next = 0  # first undrained slot; lower slots are empty
        self._wheel_inv = 1.0 / self.WHEEL_GRANULARITY
        self._wheel_span = self.WHEEL_SLOTS * self.WHEEL_GRANULARITY
        self._sequence = 0
        self._dispatched = 0
        self._cancelled = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._peak_heap = 0
        self._compaction_min = (
            self.COMPACTION_MIN if compaction_min is None else compaction_min
        )
        # Optional observability hooks: anything with record(callback,
        # seconds).  None (the default) keeps dispatch branch-cheap.
        # Both are captured ambiently (see repro.obs.runtime): an
        # active subsystem profiler installs itself on the profile
        # seam; an active telemetry emitter is ticked per batch.
        profiler = obs.profiler()
        self._profile: Optional[Any] = profiler if profiler else None
        self._telemetry: Optional[Any] = obs.telemetry()

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._due) + len(self._heap) + self._wheel_count - self._cancelled

    @property
    def heap_size(self) -> int:
        """Physical entries across all stores, dead included (for tests)."""
        return len(self._due) + len(self._heap) + self._wheel_count

    @property
    def compactions(self) -> int:
        """Times the stores have been compacted since construction."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """A live entry was cancelled; compact once the dead outnumber
        the living (and exceed the minimum threshold)."""
        self._cancelled += 1
        self._cancelled_total += 1
        if (
            self._cancelled >= self._compaction_min
            and self._cancelled * 2 >= self.heap_size
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the store invariants.

        Entries keep their (time, sequence) keys, so dispatch order --
        including insertion-order tie-breaking -- is unchanged.
        """
        self._due = [entry for entry in self._due if not entry[2].cancelled]
        heapify(self._due)
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapify(self._heap)
        if self._wheel_count:
            wheel = self._wheel
            count = 0
            for slot_index in range(self._wheel_next, self.WHEEL_SLOTS):
                slot = wheel[slot_index]
                if not slot:
                    continue
                live = [entry for entry in slot if not entry[2].cancelled]
                if len(live) != len(slot):
                    wheel[slot_index] = live
                    self._wheel_min[slot_index] = min(live) if live else None
                count += len(live)
            self._wheel_count = count
        self._cancelled = 0
        self._compactions += 1

    @property
    def dispatched(self) -> int:
        """Total callbacks dispatched since construction."""
        return self._dispatched

    def stats(self) -> SchedulerStats:
        """Lifetime counters as one immutable snapshot."""
        return SchedulerStats(
            dispatched=self._dispatched,
            cancelled=self._cancelled_total,
            compactions=self._compactions,
            peak_heap=self._peak_heap,
            pending=self.pending,
            heap_size=self.heap_size,
        )

    def set_profile(self, profile: Optional[Any]) -> None:
        """Install (or clear, with None) a callback wall-time profiler:
        any object with ``record(callback, seconds)``.  Profiling reads
        the host clock around each dispatch but never the simulated
        one, so it cannot perturb event order."""
        self._profile = profile

    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Install (or clear) a telemetry emitter: anything with
        ``tick(scheduler)``, called once per dispatch batch in
        ``run_until``.  Like profiling, telemetry reads only wall-clock
        state and cannot perturb event order."""
        self._telemetry = telemetry

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past ({time:.6f} < {self.clock.now:.6f})"
            )
        timer = Timer(time, callback, args, scheduler=self)
        self._push(time, timer)
        return timer

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.clock.now + delay, callback, *args)

    def call_every(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule a repeating callback without per-cycle Timer churn.

        ``callback(*args)`` first runs ``delay`` seconds from now; its
        return value is the delay until the next occurrence, or None to
        stop.  The single returned handle covers every occurrence and
        ``cancel()`` stops the cycle.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        timer = Timer(self.clock.now + delay, callback, args, scheduler=self, repeat=True)
        self._push(timer.time, timer)
        return timer

    def _push(self, time: float, timer: Timer) -> None:
        sequence = self._sequence
        self._sequence = sequence + 1
        self._place((time, sequence, timer))
        total = len(self._due) + len(self._heap) + self._wheel_count
        if total > self._peak_heap:
            self._peak_heap = total

    def _place(self, entry: _Entry) -> None:
        """File an entry in the store matching its horizon."""
        time = entry[0]
        base = self._wheel_base
        if self._wheel_count == 0 and (
            time < base or time - base >= self._wheel_span
        ):
            # The wheel is idle and its window has drifted away from
            # the clock: re-anchor it at the present.
            base = self._wheel_base = self.clock.now
            self._wheel_next = 0
        offset = time - base
        if offset < 0:
            heappush(self._due, entry)
            return
        slot_index = int(offset * self._wheel_inv)
        if slot_index < self._wheel_next:
            heappush(self._due, entry)
        elif slot_index < self.WHEEL_SLOTS:
            self._wheel[slot_index].append(entry)
            self._wheel_count += 1
            slot_min = self._wheel_min[slot_index]
            if slot_min is None or entry < slot_min:
                self._wheel_min[slot_index] = entry
        else:
            heappush(self._heap, entry)

    def _pop_entry(self, limit: Optional[float]) -> Optional[_Entry]:
        """Pop the globally next live entry, or None if idle / beyond
        ``limit``.  Entries at or past ``limit`` stay in place."""
        due = self._due
        heap = self._heap
        while True:
            while due and due[0][2].cancelled:
                heappop(due)
                self._cancelled -= 1
            while heap and heap[0][2].cancelled:
                heappop(heap)
                self._cancelled -= 1
            if due:
                source = heap if (heap and heap[0] < due[0]) else due
            elif heap:
                source = heap
            else:
                source = None
            if self._wheel_count:
                wheel = self._wheel
                slot_index = self._wheel_next
                while not wheel[slot_index]:
                    slot_index += 1
                self._wheel_next = slot_index
                slot_min = self._wheel_min[slot_index]
                if source is None or slot_min < source[0]:
                    # The wheel holds the global minimum: drain its
                    # first occupied slot into the near-term heap.
                    slot = wheel[slot_index]
                    wheel[slot_index] = []
                    self._wheel_min[slot_index] = None
                    self._wheel_count -= len(slot)
                    self._wheel_next = slot_index + 1
                    if self._wheel_next == self.WHEEL_SLOTS and self._wheel_count == 0:
                        self._wheel_base += self._wheel_span
                        self._wheel_next = 0
                    due.extend(slot)
                    heapify(due)
                    continue
            if source is None:
                return None
            entry = source[0]
            if limit is not None and entry[0] > limit:
                return None
            heappop(source)
            return entry

    def _dispatch(self, timer: Timer) -> None:
        """Run one claimed timer, re-arming repeat timers."""
        self._dispatched += 1
        callback = timer.callback
        if self._profile is None:
            if timer.repeat:
                next_delay = callback(*timer.args)
                if next_delay is not None and not timer.cancelled:
                    self._rearm(timer, next_delay)
            else:
                callback(*timer.args)
        else:
            started = perf_counter()
            if timer.repeat:
                next_delay = callback(*timer.args)
                elapsed = perf_counter() - started
                if next_delay is not None and not timer.cancelled:
                    self._rearm(timer, next_delay)
            else:
                callback(*timer.args)
                elapsed = perf_counter() - started
            self._profile.record(callback, elapsed)

    def _rearm(self, timer: Timer, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative repeat delay: {delay}")
        timer.time = self.clock.now + delay
        timer._scheduler = self
        self._push(timer.time, timer)

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False when idle."""
        entry = self._pop_entry(None)
        if entry is None:
            return False
        timer = entry[2]
        # Dispatching detaches the handle: a late cancel() is a no-op
        # and must not skew the dead-entry count.
        timer._scheduler = None
        self.clock.advance(entry[0])
        self._dispatch(timer)
        return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events up to and including simulated ``time``.

        The clock lands exactly on ``time`` afterwards even if the last
        event fired earlier, so back-to-back ``run_until`` calls tile a
        timeline cleanly.  Returns the number of events dispatched.
        ``max_events`` is a safety valve against runaway self-scheduling
        loops; exceeding it raises :class:`RuntimeError`.

        Same-timestamp entries are claimed as one batch: the clock
        advances and the window boundary is checked once per distinct
        timestamp.
        """
        dispatched = 0
        pop_entry = self._pop_entry
        dispatch = self._dispatch
        advance = self.clock.advance
        telemetry = self._telemetry
        while True:
            entry = pop_entry(time)
            if entry is None:
                break
            batch_time = entry[0]
            advance(batch_time)
            while True:
                timer = entry[2]
                timer._scheduler = None
                dispatch(timer)
                dispatched += 1
                if max_events is not None and dispatched > max_events:
                    raise RuntimeError(
                        f"run_until({time}) exceeded max_events={max_events}; "
                        "likely a self-rescheduling loop with zero delay"
                    )
                entry = pop_entry(batch_time)
                if entry is None:
                    break
            if telemetry is not None:
                # Once per batch, not per event: the emitter itself
                # rate-limits to a wall-clock cadence.
                telemetry.tick(self)
        if time > self.clock.now:
            advance(time)
        return dispatched

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until no live timers remain."""
        dispatched = 0
        while True:
            entry = self._pop_entry(None)
            if entry is None:
                return dispatched
            timer = entry[2]
            timer._scheduler = None
            self.clock.advance(entry[0])
            self._dispatch(timer)
            dispatched += 1
            if dispatched > max_events:
                raise RuntimeError(f"run() exceeded max_events={max_events}")
