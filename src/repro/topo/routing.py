"""Valley-free path resolution with a memoized per-pair cache.

Interdomain routes follow the Gao-Rexford export rules: an AS announces
customer routes to everyone but peer/provider routes only to customers.
The resulting paths are *valley-free* -- a sequence of zero or more
customer-to-provider ("up") hops, at most one peer hop, then zero or
more provider-to-customer ("down") hops -- and ASes prefer routes
learned from customers over peers over providers, then shorter paths.

:class:`PathResolver` implements that preference with a deterministic
Dijkstra over ``(AS, phase)`` states and memoizes full paths per
``(src-AS, dst-AS)`` pair; the latency model queries it on every send,
so cache hits dominate after warm-up (tracked by ``hits``/``misses``
and surfaced as the ``topo.path_cache`` gauges).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.topo.asgraph import ASGraph

#: Phases of the valley-free automaton.
_UP, _PEER, _DOWN = 0, 1, 2

#: Route classes in Gao-Rexford preference order (lower prefers).
_VIA_CUSTOMER, _VIA_PEER, _VIA_PROVIDER = 0, 1, 2


class PathResolver:
    """Resolves and caches valley-free AS paths."""

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._paths: Dict[Tuple[int, int], Optional[Tuple[int, ...]]] = {}
        self._resolved_srcs: set = set()
        self.hits = 0
        self.misses = 0

    def path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """The preferred valley-free AS path, or None if unreachable.

        The path includes both endpoints; ``path(a, a) == (a,)``.
        """
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is not None or key in self._paths:
            self.hits += 1
            return cached
        self.misses += 1
        if src not in self.graph or dst not in self.graph:
            self._paths[key] = None
            return None
        if src not in self._resolved_srcs:
            self._resolve_from(src)
            self._resolved_srcs.add(src)
        return self._paths.setdefault(key, None)

    def hops(self, src: int, dst: int) -> Optional[int]:
        """AS-level hop count (edges) of the preferred path."""
        found = self.path(src, dst)
        return None if found is None else len(found) - 1

    def reachable(self, src: int, dst: int) -> bool:
        return self.path(src, dst) is not None

    def cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the per-pair path cache."""
        return self.hits, self.misses

    # -- resolution ----------------------------------------------------

    def _resolve_from(self, src: int) -> None:
        """One deterministic Dijkstra fills every (src, *) cache entry.

        State is ``(AS, phase)``; cost is ``(route_class, hops)`` so
        customer routes beat shorter peer/provider routes, matching BGP
        preference.  Ties break on an insertion counter fed neighbors in
        sorted-ASN order, so resolution is independent of set iteration
        order.
        """
        graph = self.graph
        best: Dict[Tuple[int, int], Tuple[int, int]] = {}
        paths: Dict[int, Tuple[int, Tuple[int, int], Tuple[int, ...]]] = {}
        counter = 0
        heap: List[Tuple[Tuple[int, int], int, int, int, Tuple[int, ...]]] = [
            ((_VIA_CUSTOMER, 0), counter, src, _UP, (src,))
        ]
        best[(src, _UP)] = (_VIA_CUSTOMER, 0)
        while heap:
            cost, _, asn, phase, path = heapq.heappop(heap)
            if best.get((asn, phase), (99, 1 << 30)) < cost:
                continue
            known = paths.get(asn)
            if known is None or cost < known[1]:
                paths[asn] = (len(path), cost, path)
            route_class, hop_count = cost
            # Expand in preference order; neighbor sets walked sorted
            # for determinism.
            if phase == _UP:
                for customer in sorted(graph.customers[asn]):
                    counter += 1
                    _push(heap, best, (
                        (route_class if hop_count else _VIA_CUSTOMER, hop_count + 1),
                        counter, customer, _DOWN, path + (customer,),
                    ))
                for peer in sorted(graph.peers[asn]):
                    counter += 1
                    _push(heap, best, (
                        (max(route_class, _VIA_PEER) if hop_count else _VIA_PEER, hop_count + 1),
                        counter, peer, _PEER, path + (peer,),
                    ))
                for provider in sorted(graph.providers[asn]):
                    counter += 1
                    _push(heap, best, (
                        (_VIA_PROVIDER, hop_count + 1),
                        counter, provider, _UP, path + (provider,),
                    ))
            else:  # _PEER and _DOWN may only descend to customers
                for customer in sorted(graph.customers[asn]):
                    counter += 1
                    _push(heap, best, (
                        (route_class, hop_count + 1),
                        counter, customer, _DOWN, path + (customer,),
                    ))
        for asn, (_, _, path) in paths.items():
            self._paths[(src, asn)] = path


def _push(heap: list, best: dict, item: tuple) -> None:
    cost, _, asn, phase, _ = item
    state = (asn, phase)
    incumbent = best.get(state)
    if incumbent is not None and incumbent <= cost:
        return
    best[state] = cost
    heapq.heappush(heap, item)


def is_valley_free(graph: ASGraph, path: Tuple[int, ...]) -> bool:
    """Check a concrete AS path against the valley-free rules.

    Used by property tests: every resolver output must satisfy this.
    """
    phase = _UP
    for a, b in zip(path, path[1:]):
        if b in graph.providers.get(a, ()):  # up edge
            if phase != _UP:
                return False
        elif b in graph.peers.get(a, ()):  # peer edge
            if phase != _UP:
                return False
            phase = _PEER
        elif b in graph.customers.get(a, ()):  # down edge
            phase = _DOWN
        else:
            return False  # not an edge at all
    return True
