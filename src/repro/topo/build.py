"""Topology specs, parsing, and the assembled ``Topology`` bundle.

A topology is named by a compact spec string so it can travel through
CLI flags, sweep params, and dispatch wire payloads unchanged:

* ``flat`` (or empty/None)      -- no topology; the default flat model.
* ``synth:<seed>``              -- synthetic AS graph, default size.
* ``synth:<seed>:<n_ases>``     -- synthetic AS graph, explicit size.
* ``asrel:<path>``              -- CAIDA ``.as-rel2`` file.
* ``asrel:<path>:<seed>``       -- same, with a prefix-allocation seed.

Building is pure and deterministic: the same config plus the same
address blocks always yields the same graph, allocation, and resolver,
so independently built topologies (e.g. the chaos planner's and the
population builder's) agree on every label.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.net.address import Subnet
from repro.topo.asgraph import ASGraph, load_as_rel2, synth_topology
from repro.topo.latency import TopologyLatencyModel
from repro.topo.prefixes import PrefixAllocator
from repro.topo.routing import PathResolver

#: Default synthetic topology size: big enough for distinct core /
#: transit / stub bands, small enough that CI resolves paths instantly.
DEFAULT_N_ASES = 32


@dataclass(frozen=True)
class TopologyConfig:
    """Everything needed to rebuild one topology deterministically."""

    source: str = "synth"          # "synth" or "asrel"
    seed: int = 0                  # graph seed (synth) / allocation seed
    n_ases: int = DEFAULT_N_ASES   # synth only
    path: Optional[str] = None     # asrel only
    chunk_prefix: int = 16         # prefix-allocation granularity
    base_latency: float = 0.010
    per_hop_latency: float = 0.012
    jitter: float = 0.020

    def __post_init__(self) -> None:
        if self.source not in ("synth", "asrel"):
            raise ValueError(f"unknown topology source: {self.source!r}")
        if self.source == "asrel" and not self.path:
            raise ValueError("asrel topology needs a file path")
        if self.n_ases < 1:
            raise ValueError("n_ases must be >= 1")

    @property
    def spec(self) -> str:
        """The canonical spec string (round-trips via parse_topology)."""
        if self.source == "asrel":
            return f"asrel:{self.path}:{self.seed}"
        return f"synth:{self.seed}:{self.n_ases}"


def parse_topology(
    spec: Union[str, TopologyConfig, None]
) -> Optional[TopologyConfig]:
    """Parse a topology spec string; None/"flat"/"" mean no topology."""
    if spec is None or isinstance(spec, TopologyConfig):
        return spec
    text = spec.strip()
    if not text or text == "flat":
        return None
    kind, _, rest = text.partition(":")
    if kind == "synth":
        parts = rest.split(":") if rest else []
        if not parts or not parts[0]:
            raise ValueError(f"synth topology needs a seed: {spec!r}")
        try:
            seed = int(parts[0])
            n_ases = int(parts[1]) if len(parts) > 1 else DEFAULT_N_ASES
        except ValueError:
            raise ValueError(f"bad synth topology spec: {spec!r}") from None
        return TopologyConfig(source="synth", seed=seed, n_ases=n_ases)
    if kind == "asrel":
        if not rest:
            raise ValueError(f"asrel topology needs a path: {spec!r}")
        path, _, seed_text = rest.rpartition(":")
        if path and seed_text.lstrip("-").isdigit():
            return TopologyConfig(source="asrel", path=path, seed=int(seed_text))
        return TopologyConfig(source="asrel", path=rest, seed=0)
    raise ValueError(f"unknown topology spec: {spec!r} (want flat|synth:...|asrel:...)")


class Topology:
    """The assembled bundle: graph + prefix allocation + path resolver."""

    def __init__(
        self,
        config: TopologyConfig,
        graph: ASGraph,
        allocator: PrefixAllocator,
        resolver: PathResolver,
    ) -> None:
        self.config = config
        self.graph = graph
        self.allocator = allocator
        self.resolver = resolver

    @classmethod
    def build(
        cls, config: TopologyConfig, blocks: Sequence[Subnet]
    ) -> "Topology":
        """Assemble a topology over the scenario's address blocks."""
        if config.source == "synth":
            graph = synth_topology(config.n_ases, config.seed)
        else:
            graph = load_as_rel2(config.path)
        allocator = PrefixAllocator(
            graph, blocks, seed=config.seed, chunk_prefix=config.chunk_prefix
        )
        return cls(config, graph, allocator, PathResolver(graph))

    def latency_model(self, rng: random.Random) -> TopologyLatencyModel:
        """A latency model drawing jitter from ``rng`` (callers pass the
        dedicated ``topo-jitter`` stream, never the transport stream)."""
        return TopologyLatencyModel(
            self.resolver,
            self.allocator,
            rng,
            base=self.config.base_latency,
            per_hop=self.config.per_hop_latency,
            jitter=self.config.jitter,
        )

    def as_of(self, ip: int) -> Optional[int]:
        return self.allocator.as_of(ip)

    def describe(self) -> str:
        lines = [
            f"topology {self.config.spec}",
            f"  graph: {self.graph.describe()}",
            f"  prefixes: {self.allocator.chunk_total} x /{self.allocator.chunk_prefix} "
            f"chunks over {len(self.allocator.blocks)} blocks",
            f"  latency: base {self.config.base_latency * 1000:.0f}ms "
            f"+ {self.config.per_hop_latency * 1000:.0f}ms/hop "
            f"+ U(0, {self.config.jitter * 1000:.0f}ms) jitter",
        ]
        return "\n".join(lines)


def default_blocks(
    routable_blocks: Sequence[str],
    nat_blocks: Sequence[str],
    extra_blocks: Sequence[str] = (),
) -> List[Subnet]:
    """The block list a population topology covers: bot space plus any
    recon-infrastructure space the scenario layer contributes."""
    out: List[Subnet] = []
    for text in (*routable_blocks, *nat_blocks, *extra_blocks):
        out.append(Subnet.parse(text))
    return out
