"""AS-relationship graphs: CAIDA loader and seeded synthetic topologies.

The internet's routing structure is a graph of autonomous systems (ASes)
joined by *provider-customer* (transit) and *peer-peer* (settlement-free)
links.  CAIDA publishes inferred relationship snapshots in the
``.as-rel2`` format::

    # comment lines start with '#'
    <provider-asn>|<customer-asn>|-1[|source]
    <peer-asn>|<peer-asn>|0[|source]

:func:`load_as_rel2` parses that format.  CI and tests never depend on
an external dataset: :func:`synth_topology` generates a deterministic
tiered topology (core clique of tier-1s, transit ASes multihomed below
them, stub ASes at the edge) from a seed alone, with the same
qualitative shape real snapshots have.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Set, Tuple, Union

from repro.sim.rng import derive_seed

#: Relationship codes, matching the ``.as-rel2`` on-disk values.
P2C = -1  # first ASN is a provider of the second
P2P = 0   # settlement-free peers


class ASGraph:
    """An undirected AS graph with typed edges.

    Adjacency is kept as three sorted-on-demand role maps so the
    valley-free resolver can walk "my providers", "my peers", and "my
    customers" without filtering a generic edge list.
    """

    def __init__(self) -> None:
        self._ases: Set[int] = set()
        self.providers: Dict[int, Set[int]] = {}
        self.customers: Dict[int, Set[int]] = {}
        self.peers: Dict[int, Set[int]] = {}

    # -- construction --------------------------------------------------

    def add_as(self, asn: int) -> None:
        if asn < 0:
            raise ValueError(f"bad ASN: {asn}")
        if asn not in self._ases:
            self._ases.add(asn)
            self.providers[asn] = set()
            self.customers[asn] = set()
            self.peers[asn] = set()

    def add_link(self, a: int, b: int, rel: int) -> None:
        """Add one relationship edge; ``rel`` is :data:`P2C` (``a``
        provides transit to ``b``) or :data:`P2P`."""
        if a == b:
            raise ValueError(f"self-link on AS{a}")
        self.add_as(a)
        self.add_as(b)
        if rel == P2C:
            self.customers[a].add(b)
            self.providers[b].add(a)
        elif rel == P2P:
            self.peers[a].add(b)
            self.peers[b].add(a)
        else:
            raise ValueError(f"unknown relationship code: {rel}")

    def remove_link(self, a: int, b: int) -> bool:
        """Remove any relationship between ``a`` and ``b``.

        Returns True if an edge existed.  Used to derive cut topologies
        for :class:`repro.faults.plan.ASPartition`.
        """
        removed = False
        for x, y in ((a, b), (b, a)):
            if y in self.customers.get(x, ()):
                self.customers[x].discard(y)
                self.providers[y].discard(x)
                removed = True
        if b in self.peers.get(a, ()):
            self.peers[a].discard(b)
            self.peers[b].discard(a)
            removed = True
        return removed

    def without_links(self, links: Iterable[Tuple[int, int]]) -> "ASGraph":
        """A copy of this graph with the given links removed."""
        clone = ASGraph()
        for asn in self._ases:
            clone.add_as(asn)
        for asn, custs in self.customers.items():
            for c in custs:
                clone.customers[asn].add(c)
                clone.providers[c].add(asn)
        for asn, prs in self.peers.items():
            clone.peers[asn] = set(prs)
        for a, b in links:
            clone.remove_link(a, b)
        return clone

    # -- views ---------------------------------------------------------

    @property
    def ases(self) -> List[int]:
        """All ASNs, sorted (deterministic iteration order)."""
        return sorted(self._ases)

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def degree(self, asn: int) -> int:
        return (
            len(self.providers.get(asn, ()))
            + len(self.customers.get(asn, ()))
            + len(self.peers.get(asn, ()))
        )

    def link_counts(self) -> Tuple[int, int]:
        """(provider-customer, peer-peer) edge counts."""
        p2c = sum(len(c) for c in self.customers.values())
        p2p = sum(len(p) for p in self.peers.values()) // 2
        return p2c, p2p

    def customer_cone(self, asn: int) -> Set[int]:
        """``asn`` plus every AS reachable by walking customer links
        down -- the set detached by an :class:`ASPartition` subtree cut.

        An AS inside the cone that has a provider *outside* the cone is
        still included (real multi-homing softens detachment; the fault
        model cuts the whole subtree deliberately, modeling the
        depeering of a regional transit provider).
        """
        if asn not in self._ases:
            raise KeyError(f"unknown AS{asn}")
        cone = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for customer in self.customers.get(current, ()):
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return cone

    def tier_ones(self) -> List[int]:
        """ASes with no providers (the core clique), sorted."""
        return sorted(a for a in self._ases if not self.providers[a])

    def edges(self) -> List[Tuple[int, int, int]]:
        """All edges as sorted ``(a, b, rel)`` triples (canonical form
        for equality checks in determinism tests)."""
        out: List[Tuple[int, int, int]] = []
        for asn in sorted(self.customers):
            for customer in sorted(self.customers[asn]):
                out.append((asn, customer, P2C))
        for asn in sorted(self.peers):
            for peer in sorted(self.peers[asn]):
                if asn < peer:
                    out.append((asn, peer, P2P))
        return out

    def is_connected(self) -> bool:
        """Weak connectivity over all link types."""
        if not self._ases:
            return False
        start = next(iter(self._ases))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            neighbors = (
                self.providers[current] | self.customers[current] | self.peers[current]
            )
            for n in neighbors:
                if n not in seen:
                    seen.add(n)
                    frontier.append(n)
        return len(seen) == len(self._ases)

    def describe(self) -> str:
        p2c, p2p = self.link_counts()
        tiers = self.tier_ones()
        return (
            f"{len(self._ases)} ASes, {p2c} provider-customer links, "
            f"{p2p} peer links, {len(tiers)} tier-1 ({', '.join(f'AS{t}' for t in tiers)})"
        )


def load_as_rel2(source: Union[str, Iterable[str]]) -> ASGraph:
    """Parse a CAIDA ``.as-rel2`` relationship file into an
    :class:`ASGraph`.

    ``source`` is a path or an iterable of lines (so tests can feed
    literal strings).  Unknown relationship codes raise; comment and
    blank lines are skipped.  The optional fourth ``source`` field of
    the as-rel2 format is ignored.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_as_rel2(handle.read().splitlines())
    graph = ASGraph()
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise ValueError(f"as-rel2 line {lineno}: expected a|b|rel, got {raw!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ValueError(f"as-rel2 line {lineno}: {exc}") from None
        graph.add_link(a, b, rel)
    return graph


def synth_topology(n_ases: int, seed: int) -> ASGraph:
    """A deterministic tiered synthetic topology.

    Structure (mirroring inferred internet topology qualitatively):

    * a small **core** of tier-1 ASes, fully meshed with peer links;
    * a **transit** band, each multihomed to 1-2 core providers, with
      sparse peering among themselves;
    * **stub** ASes at the edge, each buying transit from 1-2 transit
      (or core) providers.

    Connectivity holds by construction: every non-core AS has at least
    one provider, and the core is a clique.  The same ``(n_ases, seed)``
    pair always yields an identical graph (asserted by the hypothesis
    determinism suite).
    """
    if n_ases < 1:
        raise ValueError("n_ases must be >= 1")
    rng = random.Random(derive_seed(seed, "topo-synth"))
    graph = ASGraph()
    n_core = max(1, min(6, n_ases // 8 + 1))
    n_core = min(n_core, n_ases)
    n_transit = min(max(0, n_ases - n_core), max(1, n_ases // 4))
    core = list(range(1, n_core + 1))
    transit = list(range(n_core + 1, n_core + n_transit + 1))
    stubs = list(range(n_core + n_transit + 1, n_ases + 1))
    for asn in core:
        graph.add_as(asn)
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_link(a, b, P2P)
    for asn in transit:
        homes = rng.sample(core, k=min(len(core), 1 + (rng.random() < 0.5)))
        for provider in homes:
            graph.add_link(provider, asn, P2C)
    # Sparse lateral peering inside the transit band.
    for i, a in enumerate(transit):
        for b in transit[i + 1:]:
            if rng.random() < 0.15:
                graph.add_link(a, b, P2P)
    providers_pool = transit if transit else core
    for asn in stubs:
        homes = rng.sample(
            providers_pool, k=min(len(providers_pool), 1 + (rng.random() < 0.3))
        )
        for provider in homes:
            graph.add_link(provider, asn, P2C)
    return graph
