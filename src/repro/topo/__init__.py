"""Topology-aware internet layer.

Models the AS-level structure underneath the flat address space: an
AS-relationship graph (CAIDA ``.as-rel2`` snapshots or seeded synthetic
topologies), realistic prefix-to-AS allocation, Gao-Rexford valley-free
path resolution with a memoized path cache, and a path-derived latency
model that plugs into :class:`repro.net.transport.Transport` behind the
``latency_model`` seam.

The default everywhere stays *flat*: with no topology configured, no
module here is even imported by the hot path, and every golden exhibit
replays byte-identically.  With a topology configured, runs are
deterministic per seed (jitter comes from the dedicated ``topo-jitter``
stream).  AS-aware fault surfaces (:class:`repro.faults.plan.
ASPartition`, :class:`repro.faults.plan.RoutedSinkhole`) consume the
same graph for link cuts, subtree detachment, and prefix hijacks.
"""

from repro.topo.asgraph import P2C, P2P, ASGraph, load_as_rel2, synth_topology
from repro.topo.build import (
    DEFAULT_N_ASES,
    Topology,
    TopologyConfig,
    default_blocks,
    parse_topology,
)
from repro.topo.latency import TopologyLatencyModel
from repro.topo.prefixes import PrefixAllocator
from repro.topo.routing import PathResolver, is_valley_free

__all__ = [
    "ASGraph",
    "DEFAULT_N_ASES",
    "P2C",
    "P2P",
    "PathResolver",
    "PrefixAllocator",
    "Topology",
    "TopologyConfig",
    "TopologyLatencyModel",
    "default_blocks",
    "is_valley_free",
    "load_as_rel2",
    "parse_topology",
    "synth_topology",
]
