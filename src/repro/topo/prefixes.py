"""Prefix allocation: mapping the scenario's address space onto ASes.

The :class:`PrefixAllocator` carves the scenario's CIDR blocks (bot
routable/NAT space, sensor and crawler infrastructure) into fixed-size
chunks and deals them to ASes weighted by topological size, so a large
transit AS originates more address space than a stub -- the "plausible
allocations" the Zeus /20 filter and subnet-aggregation exhibits assume.

Crucially the allocator only *labels* existing blocks; it never changes
how :class:`repro.net.address.AddressPool` hands out addresses.  A
population built with a topology therefore has byte-identical endpoints
to one built flat -- only the latency model (and AS-aware faults) see
the labels.  ``as_of`` is a single dict lookup at chunk granularity, so
the transport hot path pays O(1) per send.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.net.address import Subnet, subnet_key
from repro.sim.rng import derive_seed
from repro.topo.asgraph import ASGraph


class PrefixAllocator:
    """Deterministic weighted assignment of CIDR chunks to ASes."""

    def __init__(
        self,
        graph: ASGraph,
        blocks: Sequence[Subnet],
        seed: int,
        chunk_prefix: int = 16,
    ) -> None:
        if not blocks:
            raise ValueError("allocator needs at least one block")
        if not len(graph):
            raise ValueError("allocator needs a non-empty AS graph")
        self.graph = graph
        self.chunk_prefix = max(chunk_prefix, max(b.prefix for b in blocks))
        self.blocks = tuple(blocks)
        self._table: Dict[int, int] = {}
        self._chunks_by_as: Dict[int, List[Subnet]] = {asn: [] for asn in graph.ases}
        rng = random.Random(derive_seed(seed, "topo-prefixes"))
        ases = graph.ases
        # Weight by topological size: transit ASes with big customer
        # cones originate far more space than stubs.
        weights = [1.0 + 2.0 * len(graph.customers[a]) + len(graph.peers[a]) for a in ases]
        for block in self.blocks:
            for chunk in block.blocks(self.chunk_prefix):
                asn = rng.choices(ases, weights=weights)[0]
                self._table[chunk.network] = asn
                self._chunks_by_as[asn].append(chunk)

    def as_of(self, ip: int) -> Optional[int]:
        """The AS originating ``ip``'s prefix, or None for addresses
        outside every allocated block (junk/disinformation space)."""
        return self._table.get(subnet_key(ip, self.chunk_prefix))

    def chunks_of(self, asn: int) -> List[Subnet]:
        """The chunks allocated to ``asn`` (possibly empty)."""
        return list(self._chunks_by_as.get(asn, ()))

    def chunk_count(self, asn: int) -> int:
        return len(self._chunks_by_as.get(asn, ()))

    @property
    def chunk_total(self) -> int:
        return len(self._table)

    def largest_as(self, exclude: Sequence[int] = ()) -> int:
        """The AS holding the most chunks, ties broken by lowest ASN.

        Chaos planning uses this to pick a deterministic, impactful
        detach target without any run-time randomness.
        """
        excluded = set(exclude)
        candidates = [a for a in self.graph.ases if a not in excluded]
        if not candidates:
            raise ValueError("no candidate AS left after exclusions")
        return max(candidates, key=lambda a: (len(self._chunks_by_as[a]), -a))

    def summary(self) -> List[str]:
        """Per-AS allocation lines for ``repro topo info``."""
        lines = []
        for asn in self.graph.ases:
            chunks = self._chunks_by_as[asn]
            if not chunks:
                lines.append(f"AS{asn}: (no prefixes)")
                continue
            shown = ", ".join(str(c) for c in chunks[:4])
            more = f", +{len(chunks) - 4} more" if len(chunks) > 4 else ""
            lines.append(
                f"AS{asn}: {len(chunks)} x /{self.chunk_prefix} ({shown}{more})"
            )
        return lines
