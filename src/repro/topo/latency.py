"""Path-derived latency: base + per-hop cost + seeded jitter.

Replaces the flat uniform latency draw when a topology is configured.
Latency for a send is::

    base + per_hop * as_hops(src, dst) + jitter_draw

with the jitter drawn from a *dedicated* RNG stream (``topo-jitter``),
never the transport's own stream -- the transport stream's draw order
is part of the flat-run replay contract and must not depend on the
model.  Addresses outside every allocated prefix (disinformation junk,
shadow space) and unreachable AS pairs fall back to the flat uniform
range, again on the model's stream.

The model is also the natural place for per-AS delivery accounting: it
sees every send with both endpoints resolved to ASes, so it feeds the
``topo.sent`` counter (labeled by destination AS) and the path-cache
hit/miss gauges without adding work to the flat path.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.obs import runtime as obs
from repro.topo.prefixes import PrefixAllocator
from repro.topo.routing import PathResolver


class TopologyLatencyModel:
    """Latency oracle plugged into ``Transport`` via ``latency_model``."""

    def __init__(
        self,
        resolver: PathResolver,
        allocator: PrefixAllocator,
        rng: random.Random,
        base: float = 0.010,
        per_hop: float = 0.012,
        jitter: float = 0.020,
        fallback: Tuple[float, float] = (0.020, 0.200),
    ) -> None:
        if base < 0 or per_hop < 0 or jitter < 0:
            raise ValueError("latency components must be >= 0")
        self.resolver = resolver
        self.allocator = allocator
        self.rng = rng
        self.base = base
        self.per_hop = per_hop
        self.jitter = jitter
        self.fallback = fallback
        self.sends = 0
        self.fallback_sends = 0
        registry = obs.metrics()
        self._m_sent = registry.counter(
            "topo.sent", "sends resolved through the topology, by dst AS"
        )
        self._m_cache_hits = registry.gauge(
            "topo.path_cache.hits", "path-cache hits since model creation"
        )
        self._m_cache_misses = registry.gauge(
            "topo.path_cache.misses", "path-cache misses since model creation"
        )

    def as_hops(self, src_ip: int, dst_ip: int) -> Optional[int]:
        """AS hop count between two addresses, None when either side is
        unmapped or no valley-free route exists."""
        src_as = self.allocator.as_of(src_ip)
        dst_as = self.allocator.as_of(dst_ip)
        if src_as is None or dst_as is None:
            return None
        return self.resolver.hops(src_as, dst_as)

    def latency(self, src_ip: int, dst_ip: int) -> float:
        """One-way latency for a single delivery attempt."""
        self.sends += 1
        src_as = self.allocator.as_of(src_ip)
        dst_as = self.allocator.as_of(dst_ip)
        hops = None
        if src_as is not None and dst_as is not None:
            hops = self.resolver.hops(src_as, dst_as)
            hits, misses = self.resolver.cache_stats()
            self._m_cache_hits.set(hits)
            self._m_cache_misses.set(misses)
        if hops is None:
            self.fallback_sends += 1
            self._m_sent.labels("unmapped").inc()
            return self.rng.uniform(*self.fallback)
        self._m_sent.labels(f"AS{dst_as}").inc()
        value = self.base + self.per_hop * hops
        if self.jitter:
            value += self.rng.uniform(0.0, self.jitter)
        return value
