"""Fault injection and resilience machinery.

The paper's premise is recon under *adversarial* conditions, so the
simulation must be able to get hostile: correlated burst loss
(Gilbert-Elliott), duplication, reordering, latency spikes, scheduled
subnet partitions, and node-level crash/outage/mute faults -- all
replayable from one seed (:mod:`repro.faults.plan`,
:mod:`repro.faults.injector`).  The survival side is the shared
:class:`~repro.faults.retry.RetryPolicy` adopted by crawlers, sensors,
and the detection coordinator.
"""

from repro.faults.injector import FaultStats, FaultyTransport, NodeFaultDriver, resolver_for
from repro.faults.plan import (
    CRASH,
    MUTE,
    NO_FAULTS,
    OUTAGE,
    FaultPlan,
    GilbertElliottConfig,
    LatencySpike,
    NodeFault,
    Partition,
)
from repro.faults.retry import CHAOS_RETRY, NO_RETRY, RetryPolicy

__all__ = [
    "CHAOS_RETRY",
    "CRASH",
    "FaultPlan",
    "FaultStats",
    "FaultyTransport",
    "GilbertElliottConfig",
    "LatencySpike",
    "MUTE",
    "NO_FAULTS",
    "NO_RETRY",
    "NodeFault",
    "NodeFaultDriver",
    "OUTAGE",
    "Partition",
    "RetryPolicy",
    "resolver_for",
]
