"""Fault injection: the chaos side of the resilience story.

:class:`FaultyTransport` wraps the plain :class:`~repro.net.transport.
Transport` delivery path with the scheduled transport faults of a
:class:`~repro.faults.plan.FaultPlan`; :class:`NodeFaultDriver` plays
the plan's node-level faults (crash-restart, sensor outages, gossip
suppression) through the simulation scheduler.  All stochastic fault
decisions draw from a dedicated fault RNG stream, so chaos never
perturbs the base traffic stream: a run with an empty plan is
bit-identical to one on the plain transport.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.plan import (
    CRASH,
    MUTE,
    OUTAGE,
    ASPartition,
    FaultPlan,
    NodeFault,
)
from repro.net.nat import RoutabilityTable
from repro.net.transport import Endpoint, Message, Transport, TransportConfig
from repro.obs import runtime as obs
from repro.sim.scheduler import Scheduler


@dataclass
class FaultStats:
    """What the injected faults actually did to the traffic."""

    dropped_burst: int = 0
    dropped_partition: int = 0
    dropped_as_partition: int = 0
    sinkholed: int = 0
    spiked_sends: int = 0
    ge_transitions: int = 0


class FaultyTransport(Transport):
    """A drop-in chaos wrapper around the message fabric.

    Every component keeps talking to a ``Transport``; this subclass
    intercepts the two extension hooks (`_latency`, `_drop_reason`) to
    inject latency spikes, subnet partitions, and Gilbert-Elliott burst
    loss on top of the base behaviour.  The plan's duplication and
    reordering rates are folded into the wrapped config, where the base
    transport already implements them.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: random.Random,
        plan: FaultPlan,
        fault_rng: random.Random,
        config: Optional[TransportConfig] = None,
        routability: Optional[RoutabilityTable] = None,
        recycle_messages: bool = False,
        latency_model: Optional[object] = None,
        topology: Optional[object] = None,
    ) -> None:
        config = config if config is not None else TransportConfig()
        if plan.duplicate_rate or plan.reorder_rate:
            config = replace(
                config,
                duplicate_rate=max(config.duplicate_rate, plan.duplicate_rate),
                reorder_rate=max(config.reorder_rate, plan.reorder_rate),
            )
        super().__init__(
            scheduler,
            rng,
            config=config,
            routability=routability,
            recycle_messages=recycle_messages,
            latency_model=latency_model,
        )
        self.plan = plan
        self.fault_rng = fault_rng
        self.fault_stats = FaultStats()
        self._ge_bad = False
        self.topology = topology
        if plan.as_partitions and topology is None:
            raise ValueError(
                "plan has AS partitions but the transport was built "
                "without a topology (pass topology= / use --topology)"
            )
        # AS-partition separation checks are precomputed once: detach
        # cones become a set test, link cuts a resolver over the cut
        # graph.  Plans stay pure data; graph work happens here.
        self._as_cuts: List[Tuple[ASPartition, Callable[[int, int], bool]]] = [
            (part, _as_cut_check(topology, part)) for part in plan.as_partitions
        ]
        self._sinkhole_targets: Dict[object, Endpoint] = {
            hole: Endpoint(hole.target_ip, hole.target_port)
            for hole in plan.sinkholes
        }
        # Injected-fault counters; drops by reason (partition,
        # burst_loss) are already covered by the base transport.
        registry = obs.metrics()
        self._m_faults = registry.counter("faults.injected", "injected faults by kind")
        self._m_topo_drop = registry.counter(
            "topo.dropped", "AS-partition drops by dst AS"
        )

    # -- fault hooks -----------------------------------------------------

    def _latency(self, src: Endpoint, dst: Endpoint) -> float:
        latency = super()._latency(src, dst)
        now = self.scheduler.now
        for spike in self.plan.latency_spikes:
            if spike.active(now):
                latency += self.fault_rng.uniform(spike.extra_min, spike.extra_max)
                self.fault_stats.spiked_sends += 1
                self._m_faults.labels("latency_spike").inc()
                if self._trace:
                    self._trace.instant(
                        now, "faults", "latency_spike", extra=round(latency, 6)
                    )
        return latency

    def _ge_step(self) -> bool:
        """Advance the burst channel one packet; True means drop."""
        ge = self.plan.gilbert_elliott
        if ge is None:
            return False
        if self._ge_bad:
            if self.fault_rng.random() < ge.p_exit_bad:
                self._ge_bad = False
                self.fault_stats.ge_transitions += 1
                self._m_faults.labels("ge_transition").inc()
                if self._trace:
                    self._trace.instant(
                        self.scheduler.now, "faults", "ge_transition", state="good"
                    )
        elif self.fault_rng.random() < ge.p_enter_bad:
            self._ge_bad = True
            self.fault_stats.ge_transitions += 1
            self._m_faults.labels("ge_transition").inc()
            if self._trace:
                self._trace.instant(
                    self.scheduler.now, "faults", "ge_transition", state="bad"
                )
        loss = ge.loss_bad if self._ge_bad else ge.loss_good
        return bool(loss) and self.fault_rng.random() < loss

    def _deliver(self, src: Endpoint, dst: Endpoint, payload: bytes, sent_at: float) -> None:
        if self._sinkhole_targets:
            now = self.scheduler.now
            for hole, target in self._sinkhole_targets.items():
                if hole.active(now) and hole.matches(dst.ip) and dst != target:
                    self.fault_stats.sinkholed += 1
                    self._m_faults.labels("sinkhole").inc()
                    if self._trace:
                        self._trace.instant(
                            now, "faults", "sinkhole",
                            src=str(src), dst=str(dst), target=str(target),
                        )
                    dst = target
                    break
        super()._deliver(src, dst, payload, sent_at)

    def _drop_reason(self, message: Message) -> Optional[str]:
        now = message.delivered_at
        for partition in self.plan.partitions:
            if partition.active(now) and partition.separates(message.src.ip, message.dst.ip):
                self.fault_stats.dropped_partition += 1
                return "partition"
        if self._as_cuts:
            topo = self.topology
            src_as = topo.as_of(message.src.ip)
            dst_as = topo.as_of(message.dst.ip)
            for as_part, cuts in self._as_cuts:
                if as_part.active(now) and cuts(src_as, dst_as):
                    self.fault_stats.dropped_as_partition += 1
                    label = "unmapped" if dst_as is None else f"AS{dst_as}"
                    self._m_topo_drop.labels(label).inc()
                    return "as_partition"
        reason = super()._drop_reason(message)
        if reason is not None:
            return reason
        if self._ge_step():
            self.fault_stats.dropped_burst += 1
            return "burst_loss"
        return None


def _as_cut_check(topology: object, part: ASPartition) -> Callable[[int, int], bool]:
    """Build the drop predicate for one AS partition.

    Returns ``check(src_as, dst_as) -> True`` when the message must be
    dropped.  Endpoints outside every allocated prefix (``None`` AS)
    are never cut -- junk space has no routing to sever.
    """
    if part.detach is not None:
        cone = topology.graph.customer_cone(part.detach)

        def check(src_as: Optional[int], dst_as: Optional[int]) -> bool:
            return (src_as in cone) != (dst_as in cone)

        return check
    from repro.topo.routing import PathResolver

    cut_resolver = PathResolver(topology.graph.without_links(part.cut_links))

    def check(src_as: Optional[int], dst_as: Optional[int]) -> bool:
        if src_as is None or dst_as is None or src_as == dst_as:
            return False
        return not cut_resolver.reachable(src_as, dst_as)

    return check


#: Anything start()/stop()-able: bots, sensors, crawler bases.
Resolvable = Callable[[str], Optional[object]]


class NodeFaultDriver:
    """Plays a plan's node faults against live node objects.

    The driver resolves node ids lazily at fire time through
    ``resolve`` (so it can be installed before, during, or after
    population build) and records an event log for assertions and the
    degradation report.  Crash/outage faults call ``stop()`` then
    ``start()``; mute faults toggle ``gossip_suppressed`` so the node
    keeps answering but stops initiating -- the silent-leader failure
    mode Byzantine voting exists for.
    """

    def __init__(self, scheduler: Scheduler, resolve: Resolvable) -> None:
        self.scheduler = scheduler
        self.resolve = resolve
        self.crashes = 0
        self.outages = 0
        self.mutes = 0
        self.unresolved = 0
        #: (time, node_id, kind, phase) with phase in {"down", "up"}.
        self.events: List[Tuple[float, str, str, str]] = []
        self._trace = obs.tracer()
        self._m_faults = obs.metrics().counter(
            "faults.injected", "injected faults by kind"
        )

    def install(self, plan: FaultPlan) -> int:
        """Schedule every node fault in ``plan`` lying in the future.

        Returns the number of faults scheduled.
        """
        scheduled = 0
        now = self.scheduler.now
        for fault in plan.node_faults:
            if fault.at < now:
                continue
            self.scheduler.call_at(fault.at, self._begin, fault)
            scheduled += 1
        return scheduled

    def _begin(self, fault: NodeFault) -> None:
        node = self.resolve(fault.node_id)
        if node is None:
            self.unresolved += 1
            return
        self.events.append((self.scheduler.now, fault.node_id, fault.kind, "down"))
        self._m_faults.labels(fault.kind).inc()
        if self._trace:
            # One X span per node fault would be nicer, but the end
            # time is only known when _end fires; emit paired instants.
            self._trace.instant(
                self.scheduler.now, "faults", f"{fault.kind}.down",
                node=fault.node_id, duration=fault.duration,
            )
        if fault.kind == MUTE:
            self.mutes += 1
            node.gossip_suppressed = True
        else:
            if fault.kind == CRASH:
                self.crashes += 1
            elif fault.kind == OUTAGE:
                self.outages += 1
            node.stop()
        self.scheduler.call_later(fault.duration, self._end, fault)

    def _end(self, fault: NodeFault) -> None:
        node = self.resolve(fault.node_id)
        if node is None:
            return
        self.events.append((self.scheduler.now, fault.node_id, fault.kind, "up"))
        if self._trace:
            self._trace.instant(
                self.scheduler.now, "faults", f"{fault.kind}.up", node=fault.node_id
            )
        if fault.kind == MUTE:
            node.gossip_suppressed = False
        else:
            node.start()


def resolver_for(*registries: Dict[str, object]) -> Resolvable:
    """Chain node-id lookups over several ``{node_id: node}`` maps."""

    def resolve(node_id: str) -> Optional[object]:
        for registry in registries:
            node = registry.get(node_id)
            if node is not None:
                return node
        return None

    return resolve
