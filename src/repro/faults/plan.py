"""Composable, replayable fault plans.

A :class:`FaultPlan` is pure data: a schedule of transport-level and
node-level faults that a chaos run injects into a simulation.  Plans
contain no randomness themselves -- every stochastic decision (burst
loss draws, spike magnitudes, crash timing jitter) is made at injection
time from named :mod:`repro.sim.rng` streams, so the same master seed
replays the same chaos byte-for-byte.

Transport faults are applied by
:class:`repro.faults.injector.FaultyTransport`; node faults by
:class:`repro.faults.injector.NodeFaultDriver`.  The two sides are
deliberately decoupled: the transport wrapper lives inside
:class:`~repro.botnets.population.PopulationBuilder`, while node faults
are installed by whoever owns the node objects (the chaos runner, a
test), because only that layer knows which node ids exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.net.address import Subnet


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Two-state (good/bad) Markov packet-loss channel.

    The chain advances one step per delivery attempt: from *good* it
    enters *bad* with ``p_enter_bad``; from *bad* it recovers with
    ``p_exit_bad``.  Loss is Bernoulli per state.  This produces the
    *correlated* burst losses real access links show, which uniform
    loss cannot: a mean burst lasts ``1/p_exit_bad`` packets.
    """

    p_enter_bad: float = 0.01
    p_exit_bad: float = 0.125
    loss_good: float = 0.0
    loss_bad: float = 0.9

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        for name in ("loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the bad state."""
        return self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad)

    @property
    def mean_loss_rate(self) -> float:
        """Long-run average loss rate of the channel."""
        bad = self.stationary_bad_fraction
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good

    @classmethod
    def for_mean_loss(
        cls, mean_loss: float, burst_length: float = 8.0, loss_bad: float = 0.9
    ) -> "GilbertElliottConfig":
        """A channel with a target long-run loss rate.

        ``burst_length`` fixes the mean bad-state sojourn (packets);
        ``p_enter_bad`` is solved so the stationary loss equals
        ``mean_loss``.  This is how the chaos matrix expresses "20%
        burst loss" as one intensity number.
        """
        if not 0.0 <= mean_loss < loss_bad:
            raise ValueError("mean_loss must be in [0, loss_bad)")
        if burst_length < 1.0:
            raise ValueError("burst_length must be >= 1")
        p_exit = 1.0 / burst_length
        if mean_loss == 0.0:
            # A channel that never leaves the good state.
            return cls(p_enter_bad=1e-9, p_exit_bad=1.0, loss_good=0.0, loss_bad=loss_bad)
        stationary = mean_loss / loss_bad
        p_enter = p_exit * stationary / (1.0 - stationary)
        return cls(
            p_enter_bad=min(1.0, p_enter),
            p_exit_bad=p_exit,
            loss_good=0.0,
            loss_bad=loss_bad,
        )


@dataclass(frozen=True)
class LatencySpike:
    """A window during which every send suffers extra latency."""

    start: float
    duration: float
    extra_min: float
    extra_max: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("spike needs start >= 0 and duration > 0")
        if not 0 <= self.extra_min <= self.extra_max:
            raise ValueError("need 0 <= extra_min <= extra_max")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class Partition:
    """A scheduled two-sided network partition.

    While active, messages whose endpoints fall on opposite sides are
    dropped (both directions).  Sides are subnet lists, so a plan can
    cut one ISP's /12 off from the sensor fleet, say.  Traffic with
    neither endpoint in a side is unaffected.
    """

    start: float
    duration: float
    side_a: Tuple[Subnet, ...]
    side_b: Tuple[Subnet, ...]

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("partition needs start >= 0 and duration > 0")
        if not self.side_a or not self.side_b:
            raise ValueError("both partition sides must be non-empty")

    @classmethod
    def parse(
        cls, start: float, duration: float, side_a: Tuple[str, ...], side_b: Tuple[str, ...]
    ) -> "Partition":
        return cls(
            start=start,
            duration=duration,
            side_a=tuple(Subnet.parse(s) for s in side_a),
            side_b=tuple(Subnet.parse(s) for s in side_b),
        )

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def separates(self, ip_a: int, ip_b: int) -> bool:
        def side_of(ip: int) -> Optional[str]:
            if any(ip in subnet for subnet in self.side_a):
                return "a"
            if any(ip in subnet for subnet in self.side_b):
                return "b"
            return None

        first, second = side_of(ip_a), side_of(ip_b)
        return first is not None and second is not None and first != second


@dataclass(frozen=True)
class ASPartition:
    """An AS-level cut: sever specific AS links, or detach an AS and
    its whole customer cone (a depeering/takedown event).

    While active, :class:`repro.faults.injector.FaultyTransport` drops
    messages whose endpoints' origin ASes end up with no valley-free
    route (``cut_links``) or sit on opposite sides of the detached cone
    (``detach``).  Requires the transport to be built with a topology;
    plans remain pure data -- the AS graph is only consulted at
    injection time.
    """

    start: float
    duration: float
    cut_links: Tuple[Tuple[int, int], ...] = ()
    detach: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("AS partition needs start >= 0 and duration > 0")
        if not self.cut_links and self.detach is None:
            raise ValueError("AS partition needs cut_links or detach")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def describe(self) -> str:
        what = []
        if self.detach is not None:
            what.append(f"detach AS{self.detach} cone")
        for a, b in self.cut_links:
            what.append(f"cut AS{a}-AS{b}")
        return ", ".join(what)


@dataclass(frozen=True)
class RoutedSinkhole:
    """A prefix hijack: while active, deliveries addressed into
    ``prefix`` are rerouted to the sinkhole endpoint instead.

    This is the routed-sinkholing takedown primitive -- the defender
    announces a more-specific route for part of the botnet's space and
    collects the traffic.  ``target_ip``/``target_port`` are plain ints
    (plans stay transport-agnostic data); the injector builds the
    endpoint.  Traffic already addressed to the sinkhole itself is
    passed through untouched.
    """

    start: float
    duration: float
    prefix: Subnet
    target_ip: int
    target_port: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("sinkhole needs start >= 0 and duration > 0")
        if not 0 < self.target_port <= 65535:
            raise ValueError(f"bad sinkhole port: {self.target_port}")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def matches(self, ip: int) -> bool:
        return ip in self.prefix


#: Node fault kinds understood by the driver.
CRASH = "crash"      # stop the node, restart after ``duration``
OUTAGE = "outage"    # identical mechanics; labels sensor downtime
MUTE = "mute"        # gossip suppression: node receives but stops
                     # its periodic cycle (no announcements/probes)

_NODE_FAULT_KINDS = (CRASH, OUTAGE, MUTE)


@dataclass(frozen=True)
class NodeFault:
    """One scheduled node-level fault window."""

    at: float
    node_id: str
    duration: float
    kind: str = CRASH

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise ValueError("node fault needs at >= 0 and duration > 0")
        if self.kind not in _NODE_FAULT_KINDS:
            raise ValueError(f"unknown node fault kind: {self.kind!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A full chaos schedule for one run.

    ``duplicate_rate`` / ``reorder_rate`` are folded into the wrapped
    transport's config by :class:`FaultyTransport`; the remaining
    transport faults are evaluated live against this plan.  An empty
    plan injects nothing -- wrapping a transport with it is a no-op.
    """

    name: str = "none"
    gilbert_elliott: Optional[GilbertElliottConfig] = None
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    latency_spikes: Tuple[LatencySpike, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    as_partitions: Tuple[ASPartition, ...] = ()
    sinkholes: Tuple[RoutedSinkhole, ...] = ()
    node_faults: Tuple[NodeFault, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        if not 0.0 <= self.reorder_rate < 1.0:
            raise ValueError("reorder_rate must be in [0, 1)")

    @property
    def empty(self) -> bool:
        return (
            self.gilbert_elliott is None
            and not self.duplicate_rate
            and not self.reorder_rate
            and not self.latency_spikes
            and not self.partitions
            and not self.as_partitions
            and not self.sinkholes
            and not self.node_faults
        )

    def describe(self) -> str:
        """One line per configured fault, for run logs."""
        lines = [f"fault plan {self.name!r}:"]
        if self.gilbert_elliott is not None:
            ge = self.gilbert_elliott
            lines.append(
                f"  burst loss: mean {ge.mean_loss_rate:.1%}, "
                f"mean burst {1.0 / ge.p_exit_bad:.1f} pkts"
            )
        if self.duplicate_rate:
            lines.append(f"  duplication: {self.duplicate_rate:.1%}")
        if self.reorder_rate:
            lines.append(f"  reordering: {self.reorder_rate:.1%}")
        for spike in self.latency_spikes:
            lines.append(
                f"  latency spike: +[{spike.extra_min:.2f}, {spike.extra_max:.2f}]s "
                f"at t={spike.start:.0f} for {spike.duration:.0f}s"
            )
        for part in self.partitions:
            lines.append(f"  partition: t={part.start:.0f} for {part.duration:.0f}s")
        for as_part in self.as_partitions:
            lines.append(
                f"  as-partition: {as_part.describe()} at t={as_part.start:.0f} "
                f"for {as_part.duration:.0f}s"
            )
        for hole in self.sinkholes:
            lines.append(
                f"  routed sinkhole: {hole.prefix} at t={hole.start:.0f} "
                f"for {hole.duration:.0f}s"
            )
        for fault in self.node_faults:
            lines.append(
                f"  {fault.kind}: {fault.node_id} at t={fault.at:.0f} "
                f"for {fault.duration:.0f}s"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)


NO_FAULTS = FaultPlan()
