"""Shared retry/timeout/backoff policy for recon components.

Every component that waits on a hostile network -- crawlers awaiting
peer-list replies, sensors re-probing contacts, the detection
coordinator waiting on leader votes -- shares one vocabulary for "how
long to wait, how often to retry, when to give up".  Centralizing it
keeps chaos experiments honest: a scenario's resilience settings are
one object, not knobs scattered across five classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + exponential backoff + jitter + budgets.

    ``timeout`` bounds how long a pending request may wait for its
    reply before it is expired (the fix for the crawler ``_pending``
    leak).  After expiry, up to ``max_retries`` re-issues are attempted
    per target, spaced by ``backoff_base * backoff_multiplier**attempt``
    seconds with ``±jitter`` relative noise; afterwards the target is
    given up on.  ``retry_budget`` optionally caps total re-issues
    across all targets so a mostly-dead network cannot turn a crawler
    into a retry storm.
    """

    timeout: float = 90.0
    max_retries: int = 2
    backoff_base: float = 30.0
    backoff_multiplier: float = 2.0
    jitter: float = 0.25
    retry_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before re-issue number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        delay = self.backoff_base * self.backoff_multiplier ** attempt
        if self.jitter:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


#: The paper's crawlers never retried lost requests; this policy keeps
#: that behaviour (pending entries still expire, so state is bounded)
#: and is the crawler default so baseline runs replay unchanged.
NO_RETRY = RetryPolicy(timeout=90.0, max_retries=0)

#: A sane default for chaos runs: expire after 90 s, re-issue twice
#: with 30 s/60 s backoff, and never spend more than 512 re-issues.
CHAOS_RETRY = RetryPolicy(
    timeout=90.0,
    max_retries=2,
    backoff_base=30.0,
    backoff_multiplier=2.0,
    jitter=0.25,
    retry_budget=512,
)
