"""Command-line interface: quick looks at the reproduction.

Usage::

    python -m repro table {1,5,6}     # print a qualitative table
    python -m repro crawl [options]   # crawl a simulated Zeus botnet
    python -m repro detect [options]  # crawl + distributed detection
    python -m repro sweep fig2 -w 4   # sharded parameter sweep

The heavyweight exhibits (Tables 2-4, Figures 2-4) are benchmark
targets -- see ``pytest benchmarks/ --benchmark-only`` -- because they
re-run the paper's 24-hour measurement windows.  ``repro sweep`` runs
scaled-down versions of the same scans, sharded across worker
processes with bit-identical results at any worker count.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.analysis.tables import render_table1, render_table5, render_table6
from repro.core.anomaly import ZeusAnomalyAnalyzer
from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.detection import DetectionConfig, SensorLogDataset, evaluate_detection
from repro.core.stealth import StealthPolicy
from repro.net.address import format_ip, parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import SCALES, zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def _cmd_table(args: argparse.Namespace) -> int:
    renderers = {1: render_table1, 5: render_table5, 6: render_table6}
    print(renderers[args.number]())
    return 0


def _build(args: argparse.Namespace):
    scenario = build_zeus_scenario(
        zeus_config(args.scale, master_seed=args.seed),
        sensor_count=args.sensors,
        announce_hours=2.0,
    )
    crawler = ZeusCrawler(
        name="cli-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=scenario.net.transport,
        scheduler=scenario.net.scheduler,
        rng=random.Random(args.seed),
        policy=StealthPolicy(
            contact_ratio=args.contact_ratio,
            per_target_interval=15.0,
            requests_per_target=4,
        ),
        profile=ZeusDefectProfile(name="cli", hard_hitter=args.hard_hitter),
    )
    crawler.start(scenario.net.bootstrap_sample(8, seed=args.seed))
    scenario.run_for(args.hours * HOUR)
    return scenario, crawler


def _cmd_crawl(args: argparse.Namespace) -> int:
    scenario, crawler = _build(args)
    net = scenario.net
    routable = {bot.endpoint.ip for bot in net.routable_bots}
    report = crawler.report
    print(f"population:        {len(net.bots)} bots ({len(routable)} routable)")
    print(f"requests sent:     {report.requests_sent}")
    print(f"distinct IPs:      {report.distinct_ips}")
    print(f"routable found:    {len(set(report.first_seen_ip) & routable)}/{len(routable)}")
    print(f"verified bots:     {len(report.verified_bots)}")
    print(f"edges collected:   {len(report.edges)}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    scenario, crawler = _build(args)
    findings = ZeusAnomalyAnalyzer().analyze(scenario.sensors)
    for finding in findings:
        if finding.defects:
            print(
                f"anomalous source {format_ip(finding.ip)}: "
                f"coverage {finding.coverage * 100:.0f}%, "
                f"defects: {', '.join(finding.defects)}"
            )
    dataset = SensorLogDataset.from_zeus_sensors(
        scenario.sensors, since=scenario.measurement_start
    )
    result = evaluate_detection(
        dataset,
        crawler_ips={crawler.endpoint.ip},
        config=DetectionConfig(group_bits=args.group_bits, threshold=args.threshold),
        rng=random.Random(args.seed),
    )
    verdict = "DETECTED" if result.detection_rate == 1.0 else "evaded"
    print(f"coverage-based detection: crawler {verdict} "
          f"({result.false_positives} false positives)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runner import ConsoleProgress, SWEEPS, build_sweep, render_result, run_sweep

    if args.list:
        for name in sorted(SWEEPS):
            print(name)
        return 0
    if args.name is None:
        print("sweep: a sweep name is required (or --list)", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("sweep: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("sweep: --max-retries must be >= 0", file=sys.stderr)
        return 2
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.ratios:
        overrides["ratios"] = tuple(args.ratios)
    try:
        spec = build_sweep(args.name, root_seed=args.seed, **overrides)
    except KeyError as exc:
        print(f"sweep: {exc.args[0]}", file=sys.stderr)
        return 2
    progress = None if args.no_progress else ConsoleProgress()
    result = run_sweep(
        spec,
        workers=args.workers,
        max_retries=args.max_retries,
        progress=progress,
    )
    if args.json:
        print(json.dumps(result.values(), indent=2, sort_keys=True))
    else:
        print(render_result(result))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.workloads.chaos import (
        FAMILIES,
        run_chaos_matrix,
        render_degradation_report,
    )
    from repro.workloads.scenarios import CHAOS_KINDS

    if args.list:
        width = max(len(kind) for kind in CHAOS_KINDS)
        for kind, description in CHAOS_KINDS.items():
            print(f"{kind:<{width}}  {description}")
        return 0
    for kind in args.kinds:
        if kind not in CHAOS_KINDS:
            print(f"chaos: unknown kind {kind!r} (see --list)", file=sys.stderr)
            return 2
    for intensity in args.intensities:
        if not 0.0 <= intensity < 1.0:
            print("chaos: intensities must be in [0, 1)", file=sys.stderr)
            return 2
    results = run_chaos_matrix(
        args.kinds,
        args.intensities,
        family=args.family,
        scale=args.scale,
        seed=args.seed,
        sensor_count=args.sensors,
        measure_hours=args.hours,
    )
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2, sort_keys=True))
    else:
        print(render_degradation_report(results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliable Recon in Adversarial P2P Botnets (IMC 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table", help="print a qualitative table (1, 5, or 6)")
    table.add_argument("number", type=int, choices=(1, 5, 6))
    table.set_defaults(func=_cmd_table)

    def add_scenario_options(p):
        p.add_argument("--scale", choices=sorted(SCALES), default="tiny")
        p.add_argument("--sensors", type=int, default=16)
        p.add_argument("--hours", type=float, default=4.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--contact-ratio", type=int, default=1)
        p.add_argument("--hard-hitter", action="store_true")

    crawl = sub.add_parser("crawl", help="crawl a simulated Zeus botnet")
    add_scenario_options(crawl)
    crawl.set_defaults(func=_cmd_crawl)

    detect = sub.add_parser(
        "detect", help="crawl, then run anomaly analysis + distributed detection"
    )
    add_scenario_options(detect)
    detect.add_argument("--threshold", type=float, default=0.30)
    detect.add_argument("--group-bits", type=int, default=2)
    detect.set_defaults(func=_cmd_detect)

    sweep = sub.add_parser(
        "sweep",
        help="run a named parameter sweep, sharded across worker processes",
        description=(
            "Shard a paper sweep (e.g. fig2, fig3-zeus) across a process "
            "pool.  Results are bit-identical for a given --seed at any "
            "--workers count: every point's RNG seed is derived from the "
            "root seed and the point's index, never from scheduling."
        ),
    )
    sweep.add_argument("name", nargs="?", help="sweep name (see --list)")
    sweep.add_argument("--list", action="store_true", help="list available sweeps")
    sweep.add_argument(
        "-w", "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process execution)",
    )
    sweep.add_argument(
        "--seed", type=int, default=0,
        help="root seed; child seeds are derived per point index",
    )
    sweep.add_argument("--scale", choices=sorted(SCALES), default=None)
    sweep.add_argument(
        "--ratios", type=int, nargs="+", default=None,
        help="override the sweep's contact-ratio axis",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per point for failing/crashed workers",
    )
    sweep.add_argument("--json", action="store_true", help="emit raw records as JSON")
    sweep.add_argument(
        "--no-progress", action="store_true", help="suppress per-point progress lines"
    )
    sweep.set_defaults(func=_cmd_sweep)

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection matrix and print a degradation report",
        description=(
            "Run named chaos scenarios (burst loss, partitions, sensor "
            "outages, leader crashes, ...) at increasing intensities "
            "against a simulated botnet, and report how crawl coverage "
            "and detection quality degrade.  Identical seeds replay "
            "identical chaos, byte-for-byte."
        ),
    )
    chaos.add_argument(
        "--family", choices=("zeus", "sality"), default="zeus",
        help="botnet family to torment",
    )
    chaos.add_argument(
        "--kinds", nargs="+", default=["baseline", "burst-loss", "blackout"],
        metavar="KIND", help="chaos kinds to run (see --list)",
    )
    chaos.add_argument(
        "--intensities", type=float, nargs="+", default=[0.2],
        help="fault intensities in [0, 1), one matrix column each",
    )
    chaos.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    chaos.add_argument("--sensors", type=int, default=16)
    chaos.add_argument(
        "--hours", type=float, default=4.0, help="measurement window length"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--list", action="store_true", help="list chaos kinds")
    chaos.add_argument("--json", action="store_true", help="emit raw cells as JSON")
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
