"""Command-line interface: quick looks at the reproduction.

Usage::

    python -m repro table {1,5,6}     # print a qualitative table
    python -m repro crawl [options]   # crawl a simulated Zeus botnet
    python -m repro detect [options]  # crawl + distributed detection
    python -m repro sweep fig2 -w 4   # sharded parameter sweep

The heavyweight exhibits (Tables 2-4, Figures 2-4) are benchmark
targets -- see ``pytest benchmarks/ --benchmark-only`` -- because they
re-run the paper's 24-hour measurement windows.  ``repro sweep`` runs
scaled-down versions of the same scans, sharded across worker
processes with bit-identical results at any worker count.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.analysis.tables import render_table1, render_table5, render_table6
from repro.core.anomaly import ZeusAnomalyAnalyzer
from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.detection import DetectionConfig, SensorLogDataset, evaluate_detection
from repro.core.stealth import StealthPolicy
from repro.net.address import format_ip, parse_ip
from repro.net.transport import Endpoint
from repro.obs import ObsSession
from repro.sim.clock import HOUR
from repro.workloads.population import SCALES, zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def _cmd_table(args: argparse.Namespace) -> int:
    renderers = {1: render_table1, 5: render_table5, 6: render_table6}
    print(renderers[args.number]())
    return 0


def _obs_session(args: argparse.Namespace) -> ObsSession:
    """Build the observability session from the common CLI flags."""
    return ObsSession(
        trace_path=getattr(args, "trace", None),
        metrics_path=getattr(args, "metrics", None),
        flight_capacity=getattr(args, "flight_recorder", None),
        profile_path=getattr(args, "profile", None),
        telemetry_path=getattr(args, "telemetry", None),
        live=getattr(args, "live", False),
        telemetry_interval=getattr(args, "telemetry_interval", 1.0),
    )


def _report_obs(session: ObsSession) -> None:
    for line in session.written:
        print(line, file=sys.stderr)


def _build(args: argparse.Namespace, session: Optional[ObsSession] = None):
    scenario = build_zeus_scenario(
        zeus_config(
            args.scale,
            master_seed=args.seed,
            topology=getattr(args, "topology", None),
        ),
        sensor_count=args.sensors,
        announce_hours=2.0,
    )
    if session is not None:
        session.attach_scheduler(scenario.net.scheduler)
    crawler = ZeusCrawler(
        name="cli-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=scenario.net.transport,
        scheduler=scenario.net.scheduler,
        rng=random.Random(args.seed),
        policy=StealthPolicy(
            contact_ratio=args.contact_ratio,
            per_target_interval=15.0,
            requests_per_target=4,
        ),
        profile=ZeusDefectProfile(name="cli", hard_hitter=args.hard_hitter),
    )
    crawler.start(scenario.net.bootstrap_sample(8, seed=args.seed))
    scenario.run_for(args.hours * HOUR)
    return scenario, crawler


def _cmd_crawl(args: argparse.Namespace) -> int:
    session = _obs_session(args)
    with session:
        scenario, crawler = _build(args, session)
        net = scenario.net
        routable = {bot.endpoint.ip for bot in net.routable_bots}
        report = crawler.report
        print(f"population:        {len(net.bots)} bots ({len(routable)} routable)")
        print(f"requests sent:     {report.requests_sent}")
        print(f"distinct IPs:      {report.distinct_ips}")
        print(f"routable found:    {len(set(report.first_seen_ip) & routable)}/{len(routable)}")
        print(f"verified bots:     {len(report.verified_bots)}")
        print(f"edges collected:   {len(report.edges)}")
    _report_obs(session)
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    session = _obs_session(args)
    with session:
        scenario, crawler = _build(args, session)
        findings = ZeusAnomalyAnalyzer().analyze(scenario.sensors)
        for finding in findings:
            if finding.defects:
                print(
                    f"anomalous source {format_ip(finding.ip)}: "
                    f"coverage {finding.coverage * 100:.0f}%, "
                    f"defects: {', '.join(finding.defects)}"
                )
        dataset = SensorLogDataset.from_zeus_sensors(
            scenario.sensors, since=scenario.measurement_start
        )
        result = evaluate_detection(
            dataset,
            crawler_ips={crawler.endpoint.ip},
            config=DetectionConfig(group_bits=args.group_bits, threshold=args.threshold),
            rng=random.Random(args.seed),
        )
        verdict = "DETECTED" if result.detection_rate == 1.0 else "evaded"
        print(f"coverage-based detection: crawler {verdict} "
              f"({result.false_positives} false positives)")
    _report_obs(session)
    return 0


class _LiveFleetProgress:
    """Sweep progress wrapper for ``repro sweep --live``: re-renders
    the per-host fleet view (rate-limited on wall clock) whenever a
    host reports telemetry, passing every event through to the inner
    hook.  Purely observational -- it only reads dispatcher state."""

    def __init__(self, dispatcher, inner=None, interval_s: float = 1.0) -> None:
        import time

        self._dispatcher = dispatcher
        self._inner = inner
        self._interval = max(0.05, interval_s)
        self._clock = time.perf_counter
        self._last = 0.0

    def __call__(self, event) -> None:
        from repro.obs.telemetry import render_fleet
        from repro.runner.progress import HOST_TELEMETRY

        if self._inner is not None:
            self._inner(event)
        if event.kind != HOST_TELEMETRY:
            return
        now = self._clock()
        if now - self._last < self._interval:
            return
        self._last = now
        print(render_fleet(self._dispatcher.fleet_summary()), file=sys.stderr)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runner import ConsoleProgress, SWEEPS, build_sweep, render_result, run_sweep

    if args.list:
        for name in sorted(SWEEPS):
            print(name)
        return 0
    if args.name is None:
        print("sweep: a sweep name is required (or --list)", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("sweep: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("sweep: --max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.hosts is not None and args.hosts < 1:
        print("sweep: --hosts must be >= 1", file=sys.stderr)
        return 2
    if args.hosts is None and (
        args.host_faults or args.host_fault_seed is not None
    ):
        print("sweep: --host-faults/--host-fault-seed need --hosts", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print("sweep: --chunk-size must be >= 1", file=sys.stderr)
        return 2
    if args.live and args.hosts is None:
        print("sweep: --live renders host telemetry and needs --hosts", file=sys.stderr)
        return 2
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.ratios:
        overrides["ratios"] = tuple(args.ratios)
    if args.topology is not None:
        overrides["topology"] = args.topology
    try:
        spec = build_sweep(args.name, root_seed=args.seed, **overrides)
    except KeyError as exc:
        print(f"sweep: {exc.args[0]}", file=sys.stderr)
        return 2
    progress = None if args.no_progress else ConsoleProgress()
    trace_progress = None
    dispatcher = None
    if args.trace and args.hosts is None:
        # A sweep has no simulated clock; the trace is the execution
        # timeline (one track per worker) synthesized from progress.
        from repro.obs import TraceProgress

        trace_progress = TraceProgress(inner=progress)
        progress = trace_progress
    capture_metrics = bool(args.metrics) or args.health
    if args.hosts is not None:
        from repro.runner.dispatch import (
            DispatchExecutor,
            HostFaultPlan,
            SubprocessHostPool,
            parse_host_faults,
            sample_fault_plan,
        )

        try:
            if args.host_faults:
                fault_plan = parse_host_faults(args.host_faults)
            elif args.host_fault_seed is not None:
                fault_plan = sample_fault_plan(args.host_fault_seed, hosts=args.hosts)
            else:
                fault_plan = HostFaultPlan()
            pool = None
            if args.host_transport == "subprocess":
                pool = SubprocessHostPool(hosts=args.hosts)
            dispatcher = DispatchExecutor(
                hosts=args.hosts,
                pool=pool,
                chunk_size=args.chunk_size,
                max_retries=args.max_retries,
                capture_metrics=capture_metrics,
                fault_plan=fault_plan,
            )
            if args.live:
                progress = _LiveFleetProgress(dispatcher, inner=progress)
            if fault_plan.faults:
                print(f"host faults: {fault_plan.label()}", file=sys.stderr)
            result = dispatcher.run(spec, progress=progress)
        except ValueError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
    else:
        result = run_sweep(
            spec,
            workers=args.workers,
            max_retries=args.max_retries,
            progress=progress,
            capture_metrics=capture_metrics,
        )
    if args.trace and dispatcher is not None:
        # Dispatched sweeps trace the per-host lease timeline keyed to
        # deterministic dispatcher steps (not wall time).
        from repro.obs import write_jsonl

        count = write_jsonl(dispatcher.timeline(), args.trace)
        print(f"trace: {count} events -> {args.trace}", file=sys.stderr)
    if trace_progress is not None:
        from repro.obs import write_jsonl

        count = write_jsonl(trace_progress.events(), args.trace)
        print(f"trace: {count} events -> {args.trace}", file=sys.stderr)
    if args.metrics:
        from repro.obs import write_metrics

        if args.metrics == "-":
            write_metrics(result.merged_metrics(), sys.stdout)
        else:
            write_metrics(result.merged_metrics(), args.metrics)
            print(f"metrics -> {args.metrics}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.values(), indent=2, sort_keys=True))
    else:
        print(render_result(result))
    if args.health:
        from repro.runner import render_sweep_health

        fleet = dispatcher.fleet_summary() if dispatcher is not None else None
        print()
        print(render_sweep_health(result, fleet=fleet))
    elif args.live and dispatcher is not None:
        from repro.obs.telemetry import render_fleet

        print(render_fleet(dispatcher.fleet_summary()), file=sys.stderr)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.workloads.chaos import (
        FAMILIES,
        run_chaos_matrix,
        render_degradation_report,
    )
    from repro.workloads.scenarios import CHAOS_KINDS

    if args.list:
        width = max(len(kind) for kind in CHAOS_KINDS)
        for kind, description in CHAOS_KINDS.items():
            print(f"{kind:<{width}}  {description}")
        return 0
    for kind in args.kinds:
        if kind not in CHAOS_KINDS:
            print(f"chaos: unknown kind {kind!r} (see --list)", file=sys.stderr)
            return 2
    for intensity in args.intensities:
        if not 0.0 <= intensity < 1.0:
            print("chaos: intensities must be in [0, 1)", file=sys.stderr)
            return 2
    if "as-cut" in args.kinds and not args.topology:
        print(
            "chaos: as-cut needs a topology (--topology synth:<seed>)",
            file=sys.stderr,
        )
        return 2
    session = _obs_session(args)
    with session:
        results = run_chaos_matrix(
            args.kinds,
            args.intensities,
            family=args.family,
            scale=args.scale,
            seed=args.seed,
            sensor_count=args.sensors,
            measure_hours=args.hours,
            topology=args.topology,
        )
        if args.json:
            print(json.dumps([r.to_dict() for r in results], indent=2, sort_keys=True))
        else:
            print(render_degradation_report(results))
    _report_obs(session)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_jsonl, render_events, render_summary, write_chrome_trace

    if args.action == "diff":
        if not args.file2:
            print("trace diff: two recordings are required", file=sys.stderr)
            return 2
        from repro.obs.analyze import diff_files, render_diff

        try:
            diff = diff_files(args.file, args.file2)
        except OSError as exc:
            print(f"trace: cannot read recording: {exc}", file=sys.stderr)
            return 2
        except (ValueError, KeyError) as exc:
            print(f"trace: not a trace recording: {exc!r}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
        else:
            print(render_diff(diff, label_a=args.file, label_b=args.file2))
        return 0 if diff.identical else 1
    try:
        events = read_jsonl(args.file)
    except OSError as exc:
        print(f"trace: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"trace: {args.file} is not a trace recording: {exc!r}", file=sys.stderr)
        return 2
    if args.action == "summary":
        print(render_summary(events))
        return 0
    if args.action == "analyze":
        from repro.obs.analyze import analyze_events, render_health

        snapshot = None
        if args.metrics_snapshot:
            try:
                with open(args.metrics_snapshot, "r", encoding="utf-8") as stream:
                    snapshot = json.load(stream)
            except (OSError, ValueError) as exc:
                print(f"trace: cannot read metrics snapshot: {exc}", file=sys.stderr)
                return 2
        report = analyze_events(events, snapshot)
        if args.json:
            print(report.to_json())
        else:
            print(render_health(report))
        return 0
    if args.action == "events":
        if args.cat:
            events = [e for e in events if e.cat == args.cat]
        if args.tail:
            events = events[-args.tail:]
        if events:
            print(render_events(events))
        return 0
    # convert
    output = args.output
    if output is None:
        stem = args.file[:-6] if args.file.endswith(".jsonl") else args.file
        output = stem + ".chrome.json"
    count = write_chrome_trace(events, output, time_scale=args.time_scale)
    print(f"chrome trace: {count} events -> {output}")
    print("open in https://ui.perfetto.dev or chrome://tracing", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.analyze import analyze_file, write_html_report

    try:
        report = analyze_file(args.file, metrics_path=args.metrics_snapshot)
    except OSError as exc:
        print(f"report: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"report: {args.file} is not a trace recording: {exc!r}", file=sys.stderr)
        return 2
    output = args.output
    if output is None:
        stem = args.file
        for suffix in (".jsonl.gz", ".jsonl"):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
                break
        output = stem + ".report.html"
    title = args.title or f"repro run health: {args.file}"
    write_html_report(report, output, title=title)
    print(f"health report -> {output}")
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    from repro.botnets.population import PopulationConfig
    from repro.topo import Topology, default_blocks, parse_topology

    try:
        config = parse_topology(args.topology)
    except ValueError as exc:
        print(f"topo: {exc}", file=sys.stderr)
        return 2
    if config is None:
        print("topo: --topology is required (e.g. --topology synth:7)", file=sys.stderr)
        return 2
    base = PopulationConfig()
    topo = Topology.build(
        config,
        default_blocks(
            base.routable_blocks, base.nat_blocks, base.topology_extra_blocks
        ),
    )
    if args.action == "info":
        print(topo.describe())
        print("per-AS prefix allocation:")
        for line in topo.allocator.summary():
            print(f"  {line}")
        return 0
    # paths
    resolver = topo.resolver
    ases = topo.graph.ases
    if (args.src is None) != (args.dst is None):
        print("topo paths: --src and --dst go together", file=sys.stderr)
        return 2
    if args.src is not None:
        if args.src not in topo.graph or args.dst not in topo.graph:
            print("topo paths: unknown AS (see 'repro topo info')", file=sys.stderr)
            return 2
        pairs = [(args.src, args.dst)]
    else:
        rng = random.Random(args.seed)
        pairs = [(rng.choice(ases), rng.choice(ases)) for _ in range(args.count)]
    for src, dst in pairs:
        path = resolver.path(src, dst)
        if path is None:
            print(f"AS{src} -> AS{dst}: unreachable")
        else:
            rendered = " -> ".join(f"AS{asn}" for asn in path)
            print(f"AS{src} -> AS{dst}: {rendered} ({len(path) - 1} hops)")
    hits, misses = resolver.cache_stats()
    print(f"path cache: {hits} hits, {misses} misses", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchCompareError,
        compare_bench,
        load_bench,
        render_bench,
        run_bench,
        write_bench,
    )

    if args.list:
        from repro.bench import WORKLOADS

        for name in sorted(WORKLOADS):
            print(name)
        return 0
    if args.threshold < 0:
        print("bench: --threshold must be >= 0", file=sys.stderr)
        return 2
    try:
        doc = run_bench(
            names=args.workloads,
            quick=args.quick,
            repeat=args.repeat,
            profile=args.profile,
        )
    except KeyError as exc:
        print(f"bench: {exc.args[0]}", file=sys.stderr)
        return 2
    write_bench(doc, args.output)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_bench(doc))
    print(f"bench results -> {args.output}", file=sys.stderr)
    if args.baseline:
        try:
            baseline = load_bench(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        try:
            lines, regressions = compare_bench(doc, baseline, threshold=args.threshold)
        except BenchCompareError as exc:
            print(f"bench: refusing baseline compare: {exc}", file=sys.stderr)
            return 2
        print(f"baseline compare vs {args.baseline} (threshold +{args.threshold * 100:.0f}%):")
        for line in lines:
            print(f"  {line}")
        if regressions:
            print(
                f"bench: {len(regressions)} workload(s) regressed: "
                f"{', '.join(regressions)}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench import WORKLOADS, run_workload
    from repro.obs import render_profile, write_collapsed, write_speedscope

    if args.list:
        for name in sorted(WORKLOADS):
            print(name)
        return 0
    if args.workload is None:
        print("profile: a workload name is required (or --list)", file=sys.stderr)
        return 2
    try:
        collect = {}
        entry = run_workload(
            args.workload, quick=args.quick, repeat=args.repeat,
            profile=True, collect=collect,
        )
    except KeyError as exc:
        print(f"profile: {exc.args[0]}", file=sys.stderr)
        return 2
    tree = collect["tree"]
    output = args.output or f"{args.workload}.speedscope.json"
    if output.endswith((".collapsed", ".folded")):
        write_collapsed(tree, output)
    else:
        write_speedscope(tree, output, name=f"repro bench {args.workload}")
    print(render_profile(tree, title=f"workload {args.workload}"))
    print(
        f"  wall {entry['wall_s']:.3f}s, "
        f"{entry['events_per_s']:.0f} simulated events/s"
    )
    print(f"profile -> {output}", file=sys.stderr)
    if not output.endswith((".collapsed", ".folded")):
        print("open in https://www.speedscope.app", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import iter_telemetry, render_snapshot

    if args.follow and args.file.endswith(".gz"):
        print("top: --follow needs a plain (non-.gz) telemetry file", file=sys.stderr)
        return 2
    if not args.follow:
        count = 0
        try:
            for snapshot in iter_telemetry(args.file):
                print(render_snapshot(snapshot))
                count += 1
        except OSError as exc:
            print(f"top: cannot read {args.file}: {exc}", file=sys.stderr)
            return 2
        if not count:
            print(f"top: no snapshots in {args.file}", file=sys.stderr)
            return 1
        return 0
    # Follow mode: tail the JSONL stream as the run appends to it.
    import time

    try:
        stream = open(args.file, "r", encoding="utf-8")
    except OSError as exc:
        print(f"top: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        while True:
            line = stream.readline()
            if not line:
                time.sleep(args.interval)
                continue
            if not line.endswith("\n"):
                # Partial line mid-write: rewind and retry once complete.
                stream.seek(stream.tell() - len(line))
                time.sleep(args.interval)
                continue
            try:
                print(render_snapshot(json.loads(line)))
            except ValueError:
                continue
    except KeyboardInterrupt:
        return 0
    finally:
        stream.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliable Recon in Adversarial P2P Botnets (IMC 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table", help="print a qualitative table (1, 5, or 6)")
    table.add_argument("number", type=int, choices=(1, 5, 6))
    table.set_defaults(func=_cmd_table)

    def add_scenario_options(p):
        p.add_argument("--scale", choices=sorted(SCALES), default="tiny")
        p.add_argument("--sensors", type=int, default=16)
        p.add_argument("--hours", type=float, default=4.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--contact-ratio", type=int, default=1)
        p.add_argument("--hard-hitter", action="store_true")
        add_topology_option(p)

    def add_topology_option(p):
        p.add_argument(
            "--topology", metavar="SPEC", default=None,
            help="route latency over an AS topology: 'synth:<seed>[:<n_ases>]' "
                 "or 'asrel:<path>' (default: flat uniform latency)",
        )

    def add_obs_options(p, flight: bool = True):
        p.add_argument(
            "--trace", metavar="FILE", default=None,
            help="record trace events to FILE (JSONL; inspect with 'repro trace')",
        )
        p.add_argument(
            "--metrics", metavar="FILE", default=None,
            help="write a metrics snapshot to FILE as JSON ('-' for stdout)",
        )
        if flight:
            p.add_argument(
                "--flight-recorder", metavar="N", type=int, default=None,
                help="bound the recording to the last N events (ring buffer)",
            )
        p.add_argument(
            "--profile", metavar="FILE", default=None,
            help="write a subsystem wall-time profile to FILE (speedscope "
                 "JSON; use a .collapsed/.folded suffix for collapsed stacks)",
        )
        p.add_argument(
            "--telemetry", metavar="FILE", default=None,
            help="stream wall-clock telemetry snapshots to FILE (JSONL; "
                 "watch with 'repro top')",
        )
        p.add_argument(
            "--live", action="store_true",
            help="render a live telemetry status line on stderr while running",
        )
        p.add_argument(
            "--telemetry-interval", type=float, default=1.0, metavar="SEC",
            help="seconds between telemetry snapshots (default 1.0)",
        )

    crawl = sub.add_parser("crawl", help="crawl a simulated Zeus botnet")
    add_scenario_options(crawl)
    add_obs_options(crawl)
    crawl.set_defaults(func=_cmd_crawl)

    detect = sub.add_parser(
        "detect", help="crawl, then run anomaly analysis + distributed detection"
    )
    add_scenario_options(detect)
    add_obs_options(detect)
    detect.add_argument("--threshold", type=float, default=0.30)
    detect.add_argument("--group-bits", type=int, default=2)
    detect.set_defaults(func=_cmd_detect)

    sweep = sub.add_parser(
        "sweep",
        help="run a named parameter sweep, sharded across worker processes",
        description=(
            "Shard a paper sweep (e.g. fig2, fig3-zeus) across a process "
            "pool.  Results are bit-identical for a given --seed at any "
            "--workers count: every point's RNG seed is derived from the "
            "root seed and the point's index, never from scheduling."
        ),
    )
    sweep.add_argument("name", nargs="?", help="sweep name (see --list)")
    sweep.add_argument("--list", action="store_true", help="list available sweeps")
    sweep.add_argument(
        "-w", "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process execution)",
    )
    sweep.add_argument(
        "--seed", type=int, default=0,
        help="root seed; child seeds are derived per point index",
    )
    sweep.add_argument("--scale", choices=sorted(SCALES), default=None)
    sweep.add_argument(
        "--ratios", type=int, nargs="+", default=None,
        help="override the sweep's contact-ratio axis",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per point for failing/crashed workers or lost hosts",
    )
    sweep.add_argument(
        "--hosts", type=int, default=None, metavar="N",
        help="dispatch the sweep across N hosts with lease-based "
             "host-failure recovery (instead of one process pool); "
             "results stay byte-identical to a serial run",
    )
    sweep.add_argument(
        "--host-transport", choices=("local", "subprocess"), default="local",
        help="host pool backing for --hosts: in-process simulated hosts "
             "(deterministic, full fault support) or one subprocess per host",
    )
    sweep.add_argument(
        "--host-faults", metavar="PLAN", default=None,
        help="inject host faults at progress thresholds: comma list of "
             "kind:host@progress[xduration], e.g. 'kill:1@0.5' or "
             "'stall:0@0.25x6,partition:2@0.5x4'",
    )
    sweep.add_argument(
        "--host-fault-seed", type=int, default=None, metavar="SEED",
        help="draw a random host-fault plan from the dedicated "
             "dispatch-host-faults RNG stream (reproducible per seed)",
    )
    sweep.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="points per host lease (default: ~4 leases per host)",
    )
    sweep.add_argument("--json", action="store_true", help="emit raw records as JSON")
    sweep.add_argument(
        "--no-progress", action="store_true", help="suppress per-point progress lines"
    )
    sweep.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record the sweep execution timeline (one track per worker) to FILE",
    )
    sweep.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="capture per-point metrics and write the merged snapshot to FILE "
             "('-' for stdout)",
    )
    sweep.add_argument(
        "--health", action="store_true",
        help="capture per-point metrics and print merged health indicators",
    )
    sweep.add_argument(
        "--live", action="store_true",
        help="dispatched sweeps: render a live per-host fleet view from "
             "host telemetry (needs --hosts)",
    )
    add_topology_option(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection matrix and print a degradation report",
        description=(
            "Run named chaos scenarios (burst loss, partitions, sensor "
            "outages, leader crashes, ...) at increasing intensities "
            "against a simulated botnet, and report how crawl coverage "
            "and detection quality degrade.  Identical seeds replay "
            "identical chaos, byte-for-byte."
        ),
    )
    chaos.add_argument(
        "--family", choices=("zeus", "sality"), default="zeus",
        help="botnet family to torment",
    )
    chaos.add_argument(
        "--kinds", nargs="+", default=["baseline", "burst-loss", "blackout"],
        metavar="KIND", help="chaos kinds to run (see --list)",
    )
    chaos.add_argument(
        "--intensities", type=float, nargs="+", default=[0.2],
        help="fault intensities in [0, 1), one matrix column each",
    )
    chaos.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    chaos.add_argument("--sensors", type=int, default=16)
    chaos.add_argument(
        "--hours", type=float, default=4.0, help="measurement window length"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--list", action="store_true", help="list chaos kinds")
    chaos.add_argument("--json", action="store_true", help="emit raw cells as JSON")
    add_topology_option(chaos)
    add_obs_options(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    topo = sub.add_parser(
        "topo",
        help="inspect an AS topology: graph summary, prefixes, paths",
        description=(
            "Build the AS topology a --topology spec names and inspect "
            "it: 'info' prints the graph shape and per-AS prefix "
            "allocation; 'paths' resolves valley-free routes between "
            "AS pairs (explicit --src/--dst, or a seeded sample)."
        ),
    )
    topo.add_argument("action", choices=("info", "paths"), help="what to show")
    add_topology_option(topo)
    topo.add_argument("--src", type=int, default=None, help="paths: source ASN")
    topo.add_argument("--dst", type=int, default=None, help="paths: destination ASN")
    topo.add_argument(
        "--count", type=int, default=8,
        help="paths: how many sampled pairs to resolve (default 8)",
    )
    topo.add_argument("--seed", type=int, default=0, help="paths: pair-sampling seed")
    topo.set_defaults(func=_cmd_topo)

    trace = sub.add_parser(
        "trace",
        help="inspect, analyze, diff, or convert a trace recording",
        description=(
            "Work with JSONL trace recordings produced by --trace "
            "(plain or .gz): summarize them, print events, derive a "
            "health report (analyze), compare two runs (diff), or "
            "convert to the Chrome trace-event format that "
            "https://ui.perfetto.dev loads."
        ),
    )
    trace.add_argument(
        "action", choices=("summary", "events", "analyze", "diff", "convert"),
        help="what to do with the recording",
    )
    trace.add_argument("file", help="trace recording (JSONL, .gz ok)")
    trace.add_argument(
        "file2", nargs="?", default=None,
        help="diff: the second recording to compare against",
    )
    trace.add_argument(
        "--cat", default=None, help="events: only show this category"
    )
    trace.add_argument(
        "--tail", type=int, default=None, help="events: only the last N"
    )
    trace.add_argument(
        "--json", action="store_true",
        help="analyze/diff: emit the report as JSON instead of text",
    )
    trace.add_argument(
        "--metrics-snapshot", metavar="FILE", default=None,
        help="analyze: join a --metrics snapshot into the report",
    )
    trace.add_argument(
        "-o", "--output", default=None,
        help="convert: output path (default: <file>.chrome.json)",
    )
    trace.add_argument(
        "--time-scale", type=float, default=1_000_000.0,
        help="convert: multiplier from event time units to microseconds "
             "(default treats times as seconds)",
    )
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser(
        "report",
        help="render a recording as a self-contained HTML health report",
        description=(
            "Analyze a JSONL trace recording and write a single static "
            "HTML file (inline JSON + tiny JS, no dependencies) with "
            "coverage-convergence curves, the detection-round timeline, "
            "drop/fault breakdowns, and latency percentiles.  The "
            "embedded JSON is byte-identical to 'repro trace analyze "
            "--json'."
        ),
    )
    report.add_argument("file", help="trace recording (JSONL, .gz ok)")
    report.add_argument(
        "-o", "--output", default=None,
        help="output HTML path (default: <file>.report.html)",
    )
    report.add_argument(
        "--metrics-snapshot", metavar="FILE", default=None,
        help="join a --metrics snapshot into the report",
    )
    report.add_argument("--title", default=None, help="report title")
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench",
        help="time the canonical workloads and gate on a perf baseline",
        description=(
            "Run the canonical crawl/detect/sweep workloads, record "
            "wall time, simulated events/sec, and peak RSS into a "
            "schema-versioned BENCH_recon.json, and (with --baseline) "
            "exit non-zero when any workload regresses past the "
            "threshold."
        ),
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="trim simulated hours for a fast smoke run",
    )
    bench.add_argument(
        "-o", "--output", default="BENCH_recon.json",
        help="where to write the results document",
    )
    bench.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="compare against a previous BENCH_recon.json; exit 1 on regression",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative wall-time regression gate (default 0.25 = +25%%)",
    )
    bench.add_argument(
        "--repeat", type=int, default=1,
        help="run each workload N times, keep the best wall time",
    )
    bench.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="subset of workloads to run (see --list)",
    )
    bench.add_argument("--list", action="store_true", help="list workloads")
    bench.add_argument("--json", action="store_true", help="print the document as JSON")
    bench.add_argument(
        "--profile", action="store_true",
        help="attach a per-workload subsystem wall-time breakdown to the "
             "results (repro-bench/3), so --baseline compare can name the "
             "subsystem that regressed",
    )
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="profile a bench workload and export a flamegraph",
        description=(
            "Run one canonical workload under the subsystem wall-time "
            "profiler and export the site tree as a speedscope JSON "
            "flamegraph (or collapsed stacks for a .collapsed/.folded "
            "output), plus a terminal breakdown of where the wall time "
            "went.  Profiling reads only wall-clock state, so the "
            "simulated run is byte-identical to an unprofiled one."
        ),
    )
    profile.add_argument("workload", nargs="?", help="workload name (see --list)")
    profile.add_argument("--list", action="store_true", help="list workloads")
    profile.add_argument(
        "--quick", action="store_true",
        help="trim simulated hours for a fast smoke run",
    )
    profile.add_argument(
        "--repeat", type=int, default=1,
        help="run N times, keep the best wall time's profile",
    )
    profile.add_argument(
        "-o", "--output", default=None,
        help="output path (default: <workload>.speedscope.json; "
             ".collapsed/.folded suffix switches to collapsed stacks)",
    )
    profile.set_defaults(func=_cmd_profile)

    top = sub.add_parser(
        "top",
        help="render a telemetry stream as live status lines",
        description=(
            "Read the JSONL telemetry stream a run writes with "
            "--telemetry and print one status line per snapshot "
            "(events/sec, pending timers, RSS, path-cache hit rate).  "
            "With --follow, tail the file while the run is still "
            "writing it -- a 'top' for a running simulation."
        ),
    )
    top.add_argument("file", help="telemetry stream (JSONL; .gz ok without --follow)")
    top.add_argument(
        "--follow", action="store_true",
        help="keep reading as the file grows (Ctrl-C to stop)",
    )
    top.add_argument(
        "--interval", type=float, default=0.5, metavar="SEC",
        help="follow: poll interval in seconds (default 0.5)",
    )
    top.set_defaults(func=_cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
