"""GameOver Zeus bot behaviour.

A Zeus bot:

* keeps a peer list of up to 150 entries (typically ~50), at most one
  per /20 subnet;
* every ~30 minutes (the suspend cycle) verifies a few of its stalest
  peers with version requests, evicting peers that miss 5 probes, and
  tops up its peer list with *one peer-list request per neighbor* when
  short on peers;
* answers peer-list requests with the ≤10 stored entries XOR-closest
  to the request's lookup key, and learns the requester (push);
* answers version / proxy-list / update (data) requests -- the message
  types in-the-wild sensors failed to implement (Section 4.2);
* encrypts every outgoing message under the recipient's bot ID and
  drops inbound messages that do not decrypt under its own ID;
* enforces both blacklisting mechanisms of Section 3.2.

Bots additionally remember which IPs requested their peer list and
when (:meth:`ZeusBot.peer_list_requesters`); the distributed crawler
detector aggregates exactly this history (Section 4.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.botnets.antirecon import AutoBlacklister, DisinformationPolicy, StaticBlacklist
from repro.botnets.base import BotNode, PeerEntry, PeerList
from repro.botnets.zeus import protocol
from repro.botnets.zeus.protocol import MessageType, ZeusDecodeError, ZeusMessage
from repro.net.transport import Endpoint, Message, Transport
from repro.sim.clock import MINUTE
from repro.sim.scheduler import Scheduler

DEFAULT_VERSION = 0x00030204  # "3.2.4" packed; bots compare numerically


@dataclass
class ZeusConfig:
    """Protocol constants; defaults follow the paper (Sections 3-6)."""

    peer_list_capacity: int = 150
    subnet_filter_prefix: int = 20
    peers_per_response: int = 10
    cycle_interval: float = 30 * MINUTE
    verify_per_cycle: int = 5
    plr_per_cycle: int = 2
    # Peer exchange is continuous in GameOver Zeus -- it is how new
    # peers (and injected sensors) propagate: each cycle a bot asks a
    # few random neighbors for peers even when its list is full.
    maintenance_plr_per_cycle: int = 1
    needed_peers: int = 30
    evict_after_failures: int = 5
    response_timeout: float = 60.0
    port_low: int = 1024
    port_high: int = 10000
    version: int = DEFAULT_VERSION
    auto_blacklist_window: float = 60.0
    auto_blacklist_max_requests: int = 6
    auto_blacklist_enabled: bool = True
    proxy_list_size: int = 4

    def __post_init__(self) -> None:
        if not 0 < self.port_low <= self.port_high <= 65535:
            raise ValueError("bad port range")
        if self.peers_per_response < 1:
            raise ValueError("peers_per_response must be >= 1")


@dataclass(slots=True)
class _Pending:
    peer_id: bytes
    msg_type: int
    sent_at: float


class ZeusBot(BotNode):
    """One emulated GameOver Zeus bot."""

    __slots__ = (
        "config",
        "peer_list",
        "proxy_list",
        "static_blacklist",
        "auto_blacklister",
        "disinformation",
        "_pending",
        "_plr_history",
        "undecryptable",
        "blacklist_drops",
        "config_blob",
        "_dispatch",
    )

    def __init__(
        self,
        node_id: str,
        bot_id: bytes,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        routable: bool = True,
        config: Optional[ZeusConfig] = None,
        static_blacklist: Optional[StaticBlacklist] = None,
        disinformation: Optional[DisinformationPolicy] = None,
    ) -> None:
        self.config = config if config is not None else ZeusConfig()
        super().__init__(
            node_id=node_id,
            bot_id=bot_id,
            endpoint=endpoint,
            transport=transport,
            scheduler=scheduler,
            rng=rng,
            routable=routable,
            cycle_interval=self.config.cycle_interval,
        )
        self.peer_list = PeerList(
            capacity=self.config.peer_list_capacity,
            ip_filter_prefix=self.config.subnet_filter_prefix,
        )
        self.proxy_list: List[Tuple[bytes, Endpoint]] = []
        self.static_blacklist = static_blacklist if static_blacklist is not None else StaticBlacklist()
        self.auto_blacklister = AutoBlacklister(
            window=self.config.auto_blacklist_window,
            max_requests=self.config.auto_blacklist_max_requests,
        )
        self.disinformation = disinformation
        self._pending: Dict[bytes, _Pending] = {}
        # (time, source ip) per peer-list request -- the detector's input.
        self._plr_history: List[Tuple[float, int]] = []
        self.undecryptable = 0
        self.blacklist_drops = 0
        self.config_blob = bytes([self.rng.getrandbits(8) for _ in range(64)])
        # Inbound dispatch keyed by raw wire byte; built once per bot so
        # handle_message avoids a dict literal + enum call per message.
        self._dispatch = {
            int(MessageType.VERSION_REQUEST): self._on_version_request,
            int(MessageType.VERSION_REPLY): self._on_version_reply,
            int(MessageType.PEER_LIST_REQUEST): self._on_peer_list_request,
            int(MessageType.PEER_LIST_REPLY): self._on_peer_list_reply,
            int(MessageType.PROXY_REQUEST): self._on_proxy_request,
            int(MessageType.DATA_REQUEST): self._on_data_request,
            int(MessageType.DATA_REPLY): self._on_data_reply,
            int(MessageType.PROXY_REPLY): self._on_proxy_reply,
        }

    # -- bootstrap ---------------------------------------------------------

    def seed_peers(self, peers: List[Tuple[bytes, Endpoint]]) -> None:
        """Install a bootstrap peer list (what a dropper ships with)."""
        now = self.scheduler.now
        for bot_id, endpoint in peers:
            if bot_id != self.bot_id:
                self.peer_list.add(PeerEntry(bot_id=bot_id, endpoint=endpoint, last_seen=now))

    # -- detection-algorithm input ------------------------------------------

    def peer_list_requesters(self, since: float, until: Optional[float] = None) -> List[Tuple[float, int]]:
        """(time, ip) of peer-list requests received in [since, until)."""
        return [
            (time, ip)
            for time, ip in self._plr_history
            if time >= since and (until is None or time < until)
        ]

    # -- periodic behaviour ---------------------------------------------------

    def run_cycle(self) -> None:
        now = self.scheduler.now
        self._expire_pending(now)
        # (bot_id, endpoint, failures) tuples sorted by last_seen; the
        # slab backend builds this straight from its columns.
        view = self.peer_list.maintenance_view()
        for peer_id, endpoint, _ in view[: self.config.verify_per_cycle]:
            self._send_request(peer_id, endpoint, MessageType.VERSION_REQUEST, b"")
        plr_budget = self.config.maintenance_plr_per_cycle
        if len(self.peer_list) < self.config.needed_peers:
            plr_budget += self.config.plr_per_cycle
        candidates = [item for item in view if item[2] == 0] or view
        count = min(plr_budget, len(candidates))
        for peer_id, endpoint, _ in self.rng.sample(candidates, count):
            # Normal semantics: lookup key is the remote peer's ID.
            self._send_request(peer_id, endpoint, MessageType.PEER_LIST_REQUEST, peer_id)

    def _expire_pending(self, now: float) -> None:
        expired = [
            sid
            for sid, pending in self._pending.items()
            if now - pending.sent_at > self.config.response_timeout
        ]
        for sid in expired:
            pending = self._pending.pop(sid)
            self.peer_list.record_failure(pending.peer_id, self.config.evict_after_failures)

    def _send_request(self, peer_id: bytes, endpoint: Endpoint, msg_type: int, payload: bytes) -> None:
        message = protocol.make_message(
            msg_type=msg_type, source_id=self.bot_id, rng=self.rng, payload=payload
        )
        self._pending[message.session_id] = _Pending(
            peer_id=peer_id, msg_type=msg_type, sent_at=self.scheduler.now
        )
        self.send(endpoint, protocol.encrypt_message(message, peer_id))

    # -- inbound ---------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        if self.static_blacklist.is_blocked(message.src.ip):
            self.blacklist_drops += 1
            return
        try:
            decoded = protocol.decrypt_message(message.payload, self.bot_id)
        except ZeusDecodeError:
            self.undecryptable += 1
            return
        if self.auto_blacklister.is_blocked(message.src.ip):
            self.blacklist_drops += 1
            return
        handler = self._dispatch.get(decoded.msg_type)
        if handler is not None:
            handler(decoded, message.src)

    def _reply(self, request: ZeusMessage, src: Endpoint, msg_type: int, payload: bytes) -> None:
        reply = protocol.make_message(
            msg_type=msg_type,
            source_id=self.bot_id,
            rng=self.rng,
            payload=payload,
            session_id=request.session_id,  # replies echo the session
        )
        self.counters.requests_served += 1
        self.send(src, protocol.encrypt_message(reply, request.source_id))

    # requests from peers ------------------------------------------------------

    def _on_version_request(self, request: ZeusMessage, src: Endpoint) -> None:
        self.peer_list.touch(request.source_id, self.scheduler.now)
        payload = protocol.encode_version_reply(self.config.version, self.endpoint.port)
        self._reply(request, src, MessageType.VERSION_REPLY, payload)

    def _on_peer_list_request(self, request: ZeusMessage, src: Endpoint) -> None:
        now = self.scheduler.now
        if self.config.auto_blacklist_enabled and self.auto_blacklister.record(src.ip, now):
            self.blacklist_drops += 1
            return
        self._plr_history.append((now, src.ip))
        # Push mechanism: the requester advertises itself.
        self.peer_list.add(PeerEntry(bot_id=request.source_id, endpoint=src, last_seen=now))
        # XOR-nearest selection, delegated to the peer list so the slab
        # backend can rank on its precomputed id integers.
        selected = self.peer_list.closest(
            request.payload, request.source_id, self.config.peers_per_response
        )
        if self.disinformation is not None:
            selected = self.disinformation.pollute(selected)
        self._reply(request, src, MessageType.PEER_LIST_REPLY, protocol.encode_peer_entries(selected))

    def _on_proxy_request(self, request: ZeusMessage, src: Endpoint) -> None:
        self._reply(
            request, src, MessageType.PROXY_REPLY, protocol.encode_peer_entries(self.proxy_list)
        )

    def _on_data_request(self, request: ZeusMessage, src: Endpoint) -> None:
        resource = request.payload[0]
        self._reply(
            request,
            src,
            MessageType.DATA_REPLY,
            protocol.encode_data_reply(resource, self.config_blob),
        )

    # replies to our requests -----------------------------------------------------

    def _pop_pending(self, reply: ZeusMessage, expected: int) -> Optional[_Pending]:
        pending = self._pending.get(reply.session_id)
        if pending is None or pending.msg_type != expected:
            return None  # unsolicited or stale reply; ignore
        del self._pending[reply.session_id]
        self.peer_list.touch(pending.peer_id, self.scheduler.now)
        return pending

    def _on_version_reply(self, reply: ZeusMessage, src: Endpoint) -> None:
        self._pop_pending(reply, MessageType.VERSION_REQUEST)

    def _on_peer_list_reply(self, reply: ZeusMessage, src: Endpoint) -> None:
        if self._pop_pending(reply, MessageType.PEER_LIST_REQUEST) is None:
            return
        now = self.scheduler.now
        try:
            entries = protocol.decode_peer_entries(reply.payload)
        except ZeusDecodeError:
            return
        for bot_id, endpoint in entries:
            if bot_id != self.bot_id:
                self.peer_list.add(PeerEntry(bot_id=bot_id, endpoint=endpoint, last_seen=now))

    def _on_proxy_reply(self, reply: ZeusMessage, src: Endpoint) -> None:
        self._pop_pending(reply, MessageType.PROXY_REQUEST)

    def _on_data_reply(self, reply: ZeusMessage, src: Endpoint) -> None:
        self._pop_pending(reply, MessageType.DATA_REQUEST)
