"""GameOver (P2P) Zeus emulation.

Implements the protocol properties the paper's analysis rests on:

* 44-byte message header with a random lead byte, randomized TTL,
  length-of-padding (LOP) field, random per-exchange session IDs, and
  20-byte source bot IDs (Section 4.1.1).
* Per-recipient encryption: messages to a bot are encrypted under that
  bot's ID (Section 4.1.3, Section 7), layered over a chained-XOR
  "visual" encoding.
* Peer-list responses of up to 10 entries selected by XOR proximity to
  the request's lookup key; normal bots set the lookup key to the
  remote peer's identifier (Section 4.1.4).
* Peer lists capped at 150 entries, typically ~50, with at most one
  entry per /20 subnet (Sections 3.1, 4.1.5).
* 30-minute suspend cycle between request rounds (Section 4.1.5).
* Frequency-based automatic blacklisting of hard hitters plus a static
  hardcoded blacklist (Section 3.2).
* Listening ports drawn from 1024-10000 (Section 7).
"""

from repro.botnets.zeus.bot import ZeusBot, ZeusConfig
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.botnets.zeus.protocol import (
    MessageType,
    ZeusDecodeError,
    ZeusMessage,
    decode_message,
    decrypt_message,
    encode_message,
    encrypt_message,
)

__all__ = [
    "MessageType",
    "ZeusBot",
    "ZeusConfig",
    "ZeusDecodeError",
    "ZeusMessage",
    "ZeusNetwork",
    "ZeusNetworkConfig",
    "decode_message",
    "decrypt_message",
    "encode_message",
    "encrypt_message",
]
