"""GameOver Zeus message encryption.

Zeus encrypts each message under a key derived from the *receiving*
bot's 20-byte identifier, layered over a chained-XOR "visual"
encoding.  Two consequences the paper leans on:

* A crawler must know a bot's ID before it can talk to that bot at all,
  which is what makes Zeus immune to Internet-wide scanning (Section 7).
* A crawler that mixes up per-bot keys emits messages its targets
  cannot decrypt -- the "invalid encryption" defect observed in 7 of 21
  in-the-wild crawlers (Section 4.1.3).

Implementation notes: RC4 produces an identical keystream for a fixed
key, so the keystream for each recipient ID is computed once and
cached; per-message work is then two big-int XORs.  The chained-XOR
layer is likewise implemented with shift/XOR on big ints, making the
whole stack fast enough to encrypt millions of simulated messages.
"""

from __future__ import annotations

from typing import Dict

KEY_LEN = 20
# Longest message we ever encrypt; keystreams are cached at this length.
MAX_MESSAGE_LEN = 4096


def rc4_keystream(key: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of RC4 keystream for ``key``."""
    if not key:
        raise ValueError("empty RC4 key")
    state = list(range(256))
    j = 0
    key_len = len(key)
    for i in range(256):
        j = (j + state[i] + key[i % key_len]) & 0xFF
        state[i], state[j] = state[j], state[i]
    out = bytearray(length)
    i = j = 0
    for n in range(length):
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        out[n] = state[(state[i] + state[j]) & 0xFF]
    return bytes(out)


class KeystreamCache:
    """Cache of RC4 keystreams keyed by recipient ID.

    One shared instance per simulation keeps total KSA work at
    O(#distinct recipients) instead of O(#messages).
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        self.max_entries = max_entries
        self._cache: Dict[bytes, int] = {}

    def keystream_int(self, key: bytes) -> int:
        """Keystream as a big int (big-endian, MAX_MESSAGE_LEN bytes)."""
        ks = self._cache.get(key)
        if ks is None:
            if len(self._cache) >= self.max_entries:
                self._cache.clear()
            ks = int.from_bytes(rc4_keystream(key, MAX_MESSAGE_LEN), "big")
            self._cache[key] = ks
        return ks

    def xor(self, key: bytes, data: bytes) -> bytes:
        """XOR ``data`` with the key's keystream (its own inverse)."""
        if len(data) > MAX_MESSAGE_LEN:
            raise ValueError(f"message too long: {len(data)} > {MAX_MESSAGE_LEN}")
        if not data:
            return data
        ks = self.keystream_int(key) >> (8 * (MAX_MESSAGE_LEN - len(data)))
        value = int.from_bytes(data, "big") ^ ks
        return value.to_bytes(len(data), "big")


_shared_cache = KeystreamCache()


def visual_encode(data: bytes) -> bytes:
    """Chained-XOR layer: ``c[i] = p[i] ^ p[i-1]`` (``c[0] = p[0]``)."""
    if len(data) < 2:
        return data
    value = int.from_bytes(data, "big")
    return (value ^ (value >> 8)).to_bytes(len(data), "big")


def visual_decode(data: bytes) -> bytes:
    """Inverse of :func:`visual_encode` via prefix-XOR doubling."""
    if len(data) < 2:
        return data
    value = int.from_bytes(data, "big")
    bits = len(data) * 8
    shift = 8
    while shift < bits:
        value ^= value >> shift
        shift <<= 1
    return value.to_bytes(len(data), "big")


def zeus_encrypt(recipient_id: bytes, plaintext: bytes, cache: KeystreamCache = _shared_cache) -> bytes:
    """Encrypt ``plaintext`` for the bot identified by ``recipient_id``."""
    if len(recipient_id) != KEY_LEN:
        raise ValueError(f"recipient id must be {KEY_LEN} bytes")
    return cache.xor(recipient_id, visual_encode(plaintext))


def zeus_decrypt(own_id: bytes, ciphertext: bytes, cache: KeystreamCache = _shared_cache) -> bytes:
    """Decrypt a message addressed to ``own_id``.

    Always returns *some* bytes; structural validation happens in
    :func:`repro.botnets.zeus.protocol.decode_message`, exactly as a
    real bot discovers a wrongly-keyed message only when the decoded
    structure is irrational.
    """
    if len(own_id) != KEY_LEN:
        raise ValueError(f"own id must be {KEY_LEN} bytes")
    return visual_decode(cache.xor(own_id, ciphertext))
