"""GameOver Zeus message encryption.

Zeus encrypts each message under a key derived from the *receiving*
bot's 20-byte identifier, layered over a chained-XOR "visual"
encoding.  Two consequences the paper leans on:

* A crawler must know a bot's ID before it can talk to that bot at all,
  which is what makes Zeus immune to Internet-wide scanning (Section 7).
* A crawler that mixes up per-bot keys emits messages its targets
  cannot decrypt -- the "invalid encryption" defect observed in 7 of 21
  in-the-wild crawlers (Section 4.1.3).

Implementation notes: RC4 produces an identical keystream for a fixed
key, so the keystream for each recipient ID is computed once and
cached; per-message work is then two big-int XORs.  The chained-XOR
layer is likewise implemented with shift/XOR on big ints, making the
whole stack fast enough to encrypt millions of simulated messages.
"""

from __future__ import annotations

from typing import Dict

KEY_LEN = 20
# Longest message we ever encrypt; keystreams are cached at this length.
MAX_MESSAGE_LEN = 4096


def _rc4_init(key: bytes):
    """RC4 key schedule: returns the (state, i, j) PRGA start state."""
    if not key:
        raise ValueError("empty RC4 key")
    state = list(range(256))
    j = 0
    key_len = len(key)
    for i in range(256):
        j = (j + state[i] + key[i % key_len]) & 0xFF
        state[i], state[j] = state[j], state[i]
    return state, 0, 0


def _rc4_prga(state, i: int, j: int, length: int):
    """Emit ``length`` keystream bytes, mutating ``state`` in place.

    Returns (bytes, i, j) so the stream can be resumed later: RC4 is a
    stream cipher, so a prefix plus a continuation equals one long run.
    """
    out = bytearray(length)
    for n in range(length):
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        out[n] = state[(state[i] + state[j]) & 0xFF]
    return bytes(out), i, j


def rc4_keystream(key: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of RC4 keystream for ``key``."""
    state, i, j = _rc4_init(key)
    out, _, _ = _rc4_prga(state, i, j, length)
    return out


class KeystreamCache:
    """Cache of lazily-grown RC4 keystreams keyed by recipient ID.

    One shared instance per simulation keeps total KSA work at
    O(#distinct recipients) instead of O(#messages).  Keystreams start
    at ``INITIAL_LEN`` bytes and double (resuming the saved PRGA state)
    only when a longer message appears, so families that derive a fresh
    key per exchange (Sality's per-nonce keys) never pay for the
    MAX_MESSAGE_LEN worst case on their short packets.
    """

    #: First chunk of keystream computed per key; covers every Sality
    #: packet and most Zeus messages outright.
    INITIAL_LEN = 128

    def __init__(self, max_entries: int = 100_000) -> None:
        self.max_entries = max_entries
        # key -> [keystream_int, length, prga_state, i, j]
        self._cache: Dict[bytes, list] = {}

    def _entry(self, key: bytes, need: int) -> list:
        entry = self._cache.get(key)
        if entry is None:
            if len(self._cache) >= self.max_entries:
                self._cache.clear()
            state, i, j = _rc4_init(key)
            length = self.INITIAL_LEN
            while length < need:
                length <<= 1
            if length > MAX_MESSAGE_LEN:
                length = MAX_MESSAGE_LEN
            chunk, i, j = _rc4_prga(state, i, j, length)
            entry = [int.from_bytes(chunk, "big"), length, state, i, j]
            self._cache[key] = entry
        elif entry[1] < need:
            length = entry[1]
            target = length
            while target < need:
                target <<= 1
            if target > MAX_MESSAGE_LEN:
                target = MAX_MESSAGE_LEN
            extra, i, j = _rc4_prga(entry[2], entry[3], entry[4], target - length)
            entry[0] = (entry[0] << (8 * (target - length))) | int.from_bytes(extra, "big")
            entry[1] = target
            entry[3] = i
            entry[4] = j
        return entry

    def keystream_int(self, key: bytes) -> int:
        """Keystream as a big int (big-endian, MAX_MESSAGE_LEN bytes)."""
        return self._entry(key, MAX_MESSAGE_LEN)[0]

    def xor(self, key: bytes, data: bytes) -> bytes:
        """XOR ``data`` with the key's keystream (its own inverse)."""
        size = len(data)
        if size > MAX_MESSAGE_LEN:
            raise ValueError(f"message too long: {size} > {MAX_MESSAGE_LEN}")
        if not data:
            return data
        entry = self._entry(key, size)
        ks = entry[0] >> (8 * (entry[1] - size))
        value = int.from_bytes(data, "big") ^ ks
        return value.to_bytes(size, "big")


_shared_cache = KeystreamCache()


def visual_encode(data: bytes) -> bytes:
    """Chained-XOR layer: ``c[i] = p[i] ^ p[i-1]`` (``c[0] = p[0]``)."""
    if len(data) < 2:
        return data
    value = int.from_bytes(data, "big")
    return (value ^ (value >> 8)).to_bytes(len(data), "big")


def visual_decode(data: bytes) -> bytes:
    """Inverse of :func:`visual_encode` via prefix-XOR doubling."""
    if len(data) < 2:
        return data
    value = int.from_bytes(data, "big")
    bits = len(data) * 8
    shift = 8
    while shift < bits:
        value ^= value >> shift
        shift <<= 1
    return value.to_bytes(len(data), "big")


def zeus_encrypt(recipient_id: bytes, plaintext: bytes, cache: KeystreamCache = _shared_cache) -> bytes:
    """Encrypt ``plaintext`` for the bot identified by ``recipient_id``.

    Fused form of ``cache.xor(recipient_id, visual_encode(plaintext))``:
    both layers run on one big int, skipping the intermediate bytes
    round-trip on the per-message hot path.
    """
    if len(recipient_id) != KEY_LEN:
        raise ValueError(f"recipient id must be {KEY_LEN} bytes")
    size = len(plaintext)
    if size > MAX_MESSAGE_LEN:
        raise ValueError(f"message too long: {size} > {MAX_MESSAGE_LEN}")
    if size < 2:
        return cache.xor(recipient_id, plaintext)
    entry = cache._entry(recipient_id, size)
    ks = entry[0] >> (8 * (entry[1] - size))
    value = int.from_bytes(plaintext, "big")
    return ((value ^ (value >> 8)) ^ ks).to_bytes(size, "big")


def zeus_decrypt(own_id: bytes, ciphertext: bytes, cache: KeystreamCache = _shared_cache) -> bytes:
    """Decrypt a message addressed to ``own_id``.

    Always returns *some* bytes; structural validation happens in
    :func:`repro.botnets.zeus.protocol.decode_message`, exactly as a
    real bot discovers a wrongly-keyed message only when the decoded
    structure is irrational.
    """
    if len(own_id) != KEY_LEN:
        raise ValueError(f"own id must be {KEY_LEN} bytes")
    size = len(ciphertext)
    if size > MAX_MESSAGE_LEN:
        raise ValueError(f"message too long: {size} > {MAX_MESSAGE_LEN}")
    if size < 2:
        return cache.xor(own_id, ciphertext)
    # Fused cache.xor + visual_decode: one big int carries both layers.
    entry = cache._entry(own_id, size)
    ks = entry[0] >> (8 * (entry[1] - size))
    value = int.from_bytes(ciphertext, "big") ^ ks
    bits = size * 8
    shift = 8
    while shift < bits:
        value ^= value >> shift
        shift <<= 1
    return value.to_bytes(size, "big")
