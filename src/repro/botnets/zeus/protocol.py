"""GameOver Zeus wire protocol: message structures and codec.

Message layout (after decryption)::

    offset  size  field
    0       1     random byte        (randomized per message)
    1       1     TTL                (randomized when unused)
    2       1     LOP                (length of trailing random padding)
    3       1     message type
    4       20    session ID         (random per request/response pair)
    24      20    source bot ID
    44      n     payload            (type-specific)
    44+n    LOP   random padding

The randomized fields are exactly the ones in-the-wild crawlers got
wrong (paper Table 3): constrained random bytes / TTLs / LOPs, reused
session IDs, low-entropy source IDs, non-random padding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

from repro.botnets.zeus import crypto
from repro.net.transport import Endpoint

HEADER_LEN = 44
ID_LEN = 20
PEER_ENTRY_LEN = ID_LEN + 4 + 2  # id + IPv4 + port
MAX_PEERS_PER_RESPONSE = 10
MAX_LOP = 0x30  # padding length is bounded; larger values are irrational


class MessageType(IntEnum):
    """Zeus P2P message types (synthetic numbering, faithful roles)."""

    VERSION_REQUEST = 0x00
    VERSION_REPLY = 0x01
    PEER_LIST_REQUEST = 0x02
    PEER_LIST_REPLY = 0x03
    DATA_REQUEST = 0x04      # binary/config update exchange
    DATA_REPLY = 0x05
    PROXY_REQUEST = 0x06     # proxy-bot (data drop) list exchange
    PROXY_REPLY = 0x07


_VALID_TYPES = {int(t) for t in MessageType}


class ZeusDecodeError(ValueError):
    """Raised when bytes do not form a rational Zeus message.

    A wrongly-keyed (invalid-encryption) message surfaces as this
    error at the receiver.
    """


@dataclass(slots=True)
class ZeusMessage:
    """A decoded (plaintext) Zeus message."""

    msg_type: int
    session_id: bytes
    source_id: bytes
    payload: bytes = b""
    random_byte: int = 0
    ttl: int = 0
    padding: bytes = b""

    def __post_init__(self) -> None:
        if len(self.session_id) != ID_LEN:
            raise ValueError(f"session id must be {ID_LEN} bytes")
        if len(self.source_id) != ID_LEN:
            raise ValueError(f"source id must be {ID_LEN} bytes")
        if not 0 <= self.random_byte <= 0xFF or not 0 <= self.ttl <= 0xFF:
            raise ValueError("header byte out of range")
        if len(self.padding) > 0xFF:
            raise ValueError("padding too long")


def random_id(rng: random.Random) -> bytes:
    """A fresh 20-byte identifier (bot ID / session ID)."""
    return rng.getrandbits(ID_LEN * 8).to_bytes(ID_LEN, "big")


def make_message(
    msg_type: int,
    source_id: bytes,
    rng: random.Random,
    payload: bytes = b"",
    session_id: Optional[bytes] = None,
) -> ZeusMessage:
    """Build a message with correctly randomized header fields.

    This is what a *real* bot emits: random lead byte, random TTL,
    random padding of random length, fresh session ID unless this is a
    reply echoing the request's session.
    """
    lop = rng.randrange(0, MAX_LOP)
    return ZeusMessage(
        msg_type=msg_type,
        session_id=session_id if session_id is not None else random_id(rng),
        source_id=source_id,
        payload=payload,
        random_byte=rng.randrange(256),
        ttl=rng.randrange(256),
        # List comprehension, not a genexpr: bytes() can preallocate
        # from a list.  The per-byte draw sequence is load-bearing for
        # replay compatibility; do not switch to randbytes().
        padding=bytes([rng.getrandbits(8) for _ in range(lop)]),
    )


def encode_message(message: ZeusMessage) -> bytes:
    """Serialize to plaintext wire bytes."""
    if message.msg_type not in _VALID_TYPES:
        raise ValueError(f"unknown message type: {message.msg_type}")
    header = bytes(
        (
            message.random_byte,
            message.ttl,
            len(message.padding),
            message.msg_type,
        )
    )
    return header + message.session_id + message.source_id + message.payload + message.padding


def decode_message(data: bytes) -> ZeusMessage:
    """Parse plaintext wire bytes; raise :class:`ZeusDecodeError` if
    the structure is irrational (short, unknown type, impossible LOP)."""
    if len(data) < HEADER_LEN:
        raise ZeusDecodeError(f"short message: {len(data)} bytes")
    random_byte, ttl, lop, msg_type = data[0], data[1], data[2], data[3]
    if msg_type not in _VALID_TYPES:
        raise ZeusDecodeError(f"unknown message type: {msg_type:#x}")
    if lop > MAX_LOP:
        raise ZeusDecodeError(f"irrational LOP: {lop}")
    if HEADER_LEN + lop > len(data):
        raise ZeusDecodeError(f"LOP {lop} exceeds message body")
    session_id = data[4:24]
    source_id = data[24:44]
    payload_end = len(data) - lop
    payload = data[HEADER_LEN:payload_end]
    message = ZeusMessage(
        msg_type=msg_type,
        session_id=session_id,
        source_id=source_id,
        payload=payload,
        random_byte=random_byte,
        ttl=ttl,
        padding=data[payload_end:],
    )
    _validate_payload(message)
    return message


def _validate_payload(message: ZeusMessage) -> None:
    """Type-specific structural checks (the receiver's sanity tests)."""
    mtype, payload = message.msg_type, message.payload
    if mtype == MessageType.PEER_LIST_REQUEST:
        if len(payload) != ID_LEN:
            raise ZeusDecodeError("peer list request needs a 20-byte lookup key")
    elif mtype in (MessageType.PEER_LIST_REPLY, MessageType.PROXY_REPLY):
        if not payload:
            raise ZeusDecodeError("peer list reply needs a count byte")
        count = payload[0]
        if count > MAX_PEERS_PER_RESPONSE * 2:
            raise ZeusDecodeError(f"irrational peer count: {count}")
        if len(payload) != 1 + count * PEER_ENTRY_LEN:
            raise ZeusDecodeError("peer list reply length mismatch")
    elif mtype == MessageType.VERSION_REPLY:
        if len(payload) != 6:
            raise ZeusDecodeError("version reply needs version+port")
    elif mtype == MessageType.DATA_REQUEST:
        if len(payload) != 1:
            raise ZeusDecodeError("data request needs a resource byte")
    elif mtype == MessageType.DATA_REPLY:
        if len(payload) < 5:
            raise ZeusDecodeError("data reply too short")


# -- payload builders/parsers -------------------------------------------------


def encode_peer_entries(entries: List[Tuple[bytes, Endpoint]]) -> bytes:
    """Payload for PEER_LIST_REPLY / PROXY_REPLY: count + packed entries."""
    if len(entries) > 0xFF:
        raise ValueError("too many entries")
    parts = [bytes((len(entries),))]
    for bot_id, endpoint in entries:
        if len(bot_id) != ID_LEN:
            raise ValueError("peer id must be 20 bytes")
        parts.append(bot_id)
        parts.append(endpoint.ip.to_bytes(4, "big"))
        parts.append(endpoint.port.to_bytes(2, "big"))
    return b"".join(parts)


#: Intern table for decoded endpoints.  The same few thousand peers
#: are re-decoded from every peer-list reply; reusing one Endpoint per
#: (ip, port) skips dataclass construction/validation on the hot path
#: and shares the cached ``str()`` form.  Endpoints compare by value,
#: so interning is observationally identical.  Bounded like the
#: keystream cache: cleared wholesale if churn ever floods it.
_ENDPOINT_INTERN_MAX = 1 << 17
_endpoint_intern: Dict[Tuple[int, int], Endpoint] = {}


def decode_peer_entries(payload: bytes) -> List[Tuple[bytes, Endpoint]]:
    """Parse a PEER_LIST_REPLY / PROXY_REPLY payload."""
    if not payload:
        raise ZeusDecodeError("empty peer entries payload")
    count = payload[0]
    expected = 1 + count * PEER_ENTRY_LEN
    if len(payload) != expected:
        raise ZeusDecodeError("peer entries length mismatch")
    entries = []
    offset = 1
    intern = _endpoint_intern
    from_bytes = int.from_bytes
    for _ in range(count):
        bot_id = payload[offset : offset + ID_LEN]
        ip = from_bytes(payload[offset + ID_LEN : offset + ID_LEN + 4], "big")
        port = from_bytes(payload[offset + ID_LEN + 4 : offset + ID_LEN + 6], "big")
        if port == 0:
            raise ZeusDecodeError("zero port in peer entry")
        key = (ip, port)
        endpoint = intern.get(key)
        if endpoint is None:
            if len(intern) >= _ENDPOINT_INTERN_MAX:
                intern.clear()
            endpoint = Endpoint(ip, port)
            intern[key] = endpoint
        entries.append((bot_id, endpoint))
        offset += PEER_ENTRY_LEN
    return entries


def encode_version_reply(version: int, port: int) -> bytes:
    return version.to_bytes(4, "big") + port.to_bytes(2, "big")


def decode_version_reply(payload: bytes) -> Tuple[int, int]:
    if len(payload) != 6:
        raise ZeusDecodeError("bad version reply payload")
    return int.from_bytes(payload[:4], "big"), int.from_bytes(payload[4:], "big")


def encode_data_reply(resource: int, blob: bytes) -> bytes:
    return bytes((resource,)) + len(blob).to_bytes(4, "big") + blob


def decode_data_reply(payload: bytes) -> Tuple[int, bytes]:
    if len(payload) < 5:
        raise ZeusDecodeError("bad data reply payload")
    resource = payload[0]
    length = int.from_bytes(payload[1:5], "big")
    blob = payload[5:]
    if len(blob) != length:
        raise ZeusDecodeError("data reply length mismatch")
    return resource, blob


# -- XOR proximity metric ------------------------------------------------------


def xor_distance(a: bytes, b: bytes) -> int:
    """The Kademlia-style XOR metric Zeus uses to select returned peers."""
    if len(a) != len(b):
        raise ValueError("ids must be the same length")
    return int.from_bytes(a, "big") ^ int.from_bytes(b, "big")


def select_closest(
    lookup_key: bytes,
    candidates: List[Tuple[bytes, Endpoint]],
    limit: int = MAX_PEERS_PER_RESPONSE,
) -> List[Tuple[bytes, Endpoint]]:
    """The ``limit`` entries closest to ``lookup_key`` by XOR metric.

    Normal bots set ``lookup_key`` to the requester's own ID, so a
    given requester keeps seeing the same neighborhood -- the paper's
    "clustering" deterrence measure (Table 1).  Crawlers that randomize
    the key to widen coverage produce the "abnormal lookup" defect.
    """
    key_int = int.from_bytes(lookup_key, "big")
    from_bytes = int.from_bytes
    return sorted(
        candidates, key=lambda item: key_int ^ from_bytes(item[0], "big")
    )[:limit]


# -- encryption shims ----------------------------------------------------------


def encrypt_message(message: ZeusMessage, recipient_id: bytes) -> bytes:
    """Encode then encrypt for ``recipient_id``."""
    return crypto.zeus_encrypt(recipient_id, encode_message(message))


def decrypt_message(data: bytes, own_id: bytes) -> ZeusMessage:
    """Decrypt with our own ID and decode; :class:`ZeusDecodeError`
    signals an undecryptable (wrongly keyed or corrupt) message."""
    return decode_message(crypto.zeus_decrypt(own_id, data))
