"""GameOver Zeus population builder."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.botnets.antirecon import DisinformationPolicy, StaticBlacklist
from repro.botnets.population import PopulationBuilder, PopulationConfig
from repro.botnets.zeus.bot import ZeusBot, ZeusConfig
from repro.botnets.zeus.protocol import random_id
from repro.net.transport import Endpoint


@dataclass
class ZeusNetworkConfig(PopulationConfig):
    """Population knobs plus the Zeus protocol configuration.

    ``shared_blacklist`` models the hardcoded list shipped inside every
    bot binary: one object, visible to (and enforced by) all bots.
    """

    zeus: ZeusConfig = field(default_factory=ZeusConfig)
    proxy_bots: int = 4
    disinformation: Optional[DisinformationPolicy] = None


class ZeusNetwork(PopulationBuilder):
    """A simulated GameOver Zeus botnet."""

    def __init__(self, config: Optional[ZeusNetworkConfig] = None) -> None:
        self.zconfig = config if config is not None else ZeusNetworkConfig()
        super().__init__(self.zconfig)
        self.shared_blacklist = StaticBlacklist()
        self._proxies: List[Tuple[bytes, Endpoint]] = []

    def listening_port(self, rng: random.Random) -> int:
        """Zeus bots listen on 1024-10000 (Section 7)."""
        return rng.randrange(self.zconfig.zeus.port_low, self.zconfig.zeus.port_high + 1)

    def make_bot(self, node_id: str, endpoint: Endpoint, routable: bool, rng: random.Random) -> ZeusBot:
        return ZeusBot(
            node_id=node_id,
            bot_id=random_id(rng),
            endpoint=endpoint,
            transport=self.transport,
            scheduler=self.scheduler,
            rng=rng,
            routable=routable,
            config=self.zconfig.zeus,
            static_blacklist=self.shared_blacklist,
            disinformation=self.zconfig.disinformation,
        )

    def bootstrap(self) -> None:
        """Seed every bot with routable peers, and elect proxy bots.

        Every bot (routable or not) ships with a bootstrap list of
        routable peers, as a real dropper does.  A handful of routable
        bots additionally serve as the proxy (data-drop) layer that
        sensors are expected to report when probed (Section 4.2).
        """
        rng = self.rngs.stream("bootstrap")
        routable = [bot for bot in self.bots.values() if bot.routable]
        if not routable:
            raise RuntimeError("Zeus needs at least one routable bot")
        self._proxies = [
            (bot.bot_id, bot.endpoint)
            for bot in rng.sample(routable, min(self.zconfig.proxy_bots, len(routable)))
        ]
        per_bot = min(self.config.bootstrap_peers, len(routable))
        for bot in self.bots.values():
            candidates = [peer for peer in routable if peer is not bot]
            seeds = rng.sample(candidates, min(per_bot, len(candidates)))
            bot.seed_peers([(peer.bot_id, peer.endpoint) for peer in seeds])
            bot.proxy_list = list(self._proxies)

    @property
    def proxies(self) -> List[Tuple[bytes, Endpoint]]:
        return list(self._proxies)

    def bootstrap_sample(self, count: int, seed: int = 0) -> List[Tuple[bytes, Endpoint]]:
        """A bootstrap peer list for a recon tool, as would be ripped
        from a bot sample: ``count`` random routable peers."""
        rng = random.Random(seed)
        routable = [bot for bot in self.bots.values() if bot.routable]
        picks = rng.sample(routable, min(count, len(routable)))
        return [(bot.bot_id, bot.endpoint) for bot in picks]
