"""Shared population scaffolding for family-specific networks.

Builds the world a botnet lives in: a scheduler + transport, public
address space carved into subnets (with *hotspot* subnets holding
multiple infections -- the cause of /19 aggregation false positives in
Section 6.1.2), NAT gateways sharing one public IP among several bots
(the cause of t=1% false positives in Table 4), and optional churn.

Family networks (:class:`repro.botnets.zeus.network.ZeusNetwork`,
:class:`repro.botnets.sality.network.SalityNetwork`) subclass
:class:`PopulationBuilder` and supply bot construction + bootstrap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.botnets.base import BotNode
from repro.botnets.graph import ConnectivityGraph
from repro.botnets.state import PopulationState
from repro.faults.injector import FaultyTransport
from repro.faults.plan import FaultPlan
from repro.net.address import AddressPool, Subnet, prefix_of
from repro.net.churn import ChurnConfig, ChurnProcess, DiurnalModel
from repro.net.nat import NatGateway
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.topo import Topology, TopologyConfig, default_blocks, parse_topology


@dataclass
class PopulationConfig:
    """Knobs shared by every family network."""

    population: int = 1000
    routable_fraction: float = 0.25
    bootstrap_peers: int = 15
    master_seed: int = 0
    # Address layout.  Defaults avoid all reserved space.
    routable_blocks: Tuple[str, ...] = ("25.0.0.0/12", "26.0.0.0/12", "27.0.0.0/12")
    nat_blocks: Tuple[str, ...] = ("60.0.0.0/12", "61.0.0.0/12")
    # Fraction of routable bots allocated inside an already-infected /24
    # (creates light subnet clustering).
    subnet_hotspot_fraction: float = 0.10
    # Number of dense /19 neighborhoods, each holding
    # ``bots_per_dense_neighborhood`` routable bots split evenly across
    # the /19's two /20 halves.  These are the organic multi-infection
    # subnets that cause detector false positives once aggregation
    # widens from /20 to /19 (paper Section 6.1.2).
    dense_neighborhoods: int = 0
    bots_per_dense_neighborhood: int = 8
    # NATed bots per gateway: 1..max (uniform); >1 creates shared-IP
    # aliasing, the NAT false positives of Table 4.
    max_bots_per_gateway: int = 4
    # Churn (None disables; the paper's core 24h experiments measure a
    # fixed window precisely to sidestep churn).
    churn: Optional[ChurnConfig] = None
    transport: TransportConfig = field(default_factory=TransportConfig)
    # Scheduled transport faults (chaos experiments).  None/empty keeps
    # the plain Transport so healthy runs replay byte-for-byte.
    fault_plan: Optional[FaultPlan] = None
    # Peer/online storage backend: "soa" keeps hot per-peer scalars in
    # the shared struct-of-arrays slab (repro.botnets.state); "objects"
    # keeps one PeerEntry object per peer.  Both behave identically.
    state_backend: str = "soa"
    # Reuse delivered Message objects through the transport free list.
    # Safe for builder-owned populations (no sim handler retains the
    # Message); handlers bound externally must snapshot what they keep.
    recycle_messages: bool = True
    # Topology-aware internet layer (repro.topo).  None keeps the flat
    # uniform-latency model and replays byte-identically to older runs;
    # a spec string ("synth:7", "asrel:path.as-rel2") or TopologyConfig
    # routes latency over an AS graph and enables AS-aware faults.
    topology: Optional[TopologyConfig] = None
    # Extra CIDR blocks the topology labels beyond bot space (scenario
    # infrastructure: sensors, crawlers).  Ignored when topology is None.
    topology_extra_blocks: Tuple[str, ...] = ("45.0.0.0/10", "99.0.0.0/12")

    def __post_init__(self) -> None:
        self.topology = parse_topology(self.topology)
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if not 0.0 < self.routable_fraction <= 1.0:
            raise ValueError("routable_fraction must be in (0, 1]")
        if self.max_bots_per_gateway < 1:
            raise ValueError("max_bots_per_gateway must be >= 1")
        if not 0.0 <= self.subnet_hotspot_fraction <= 1.0:
            raise ValueError("subnet_hotspot_fraction must be in [0, 1]")
        if self.state_backend not in ("soa", "objects"):
            raise ValueError(f"unknown state_backend: {self.state_backend!r}")


class PopulationBuilder:
    """World + population assembly; family networks subclass this."""

    def __init__(self, config: PopulationConfig) -> None:
        self.config = config
        self.rngs = RngRegistry(config.master_seed)
        self.scheduler = Scheduler()
        self.topology: Optional[Topology] = None
        latency_model = None
        if config.topology is not None:
            # The allocator only labels the existing blocks; address
            # allocation below is untouched, so the population layout
            # is identical to a flat build with the same seed.
            self.topology = Topology.build(
                config.topology,
                default_blocks(
                    config.routable_blocks,
                    config.nat_blocks,
                    config.topology_extra_blocks,
                ),
            )
            # Jitter draws on a dedicated stream, never "transport".
            latency_model = self.topology.latency_model(
                self.rngs.stream("topo-jitter")
            )
        if config.fault_plan is not None and not config.fault_plan.empty:
            # Fault draws come from their own stream so the base
            # transport's draws stay aligned with fault-free runs.
            self.transport: Transport = FaultyTransport(
                self.scheduler,
                self.rngs.stream("transport"),
                plan=config.fault_plan,
                fault_rng=self.rngs.stream("faults"),
                config=config.transport,
                recycle_messages=config.recycle_messages,
                latency_model=latency_model,
                topology=self.topology,
            )
        else:
            self.transport = Transport(
                self.scheduler,
                self.rngs.stream("transport"),
                config=config.transport,
                recycle_messages=config.recycle_messages,
                latency_model=latency_model,
            )
        self.state: Optional[PopulationState] = (
            PopulationState() if config.state_backend == "soa" else None
        )
        net_rng = self.rngs.stream("addresses")
        self.routable_pool = AddressPool(
            [Subnet.parse(block) for block in config.routable_blocks], net_rng
        )
        self.nat_pool = AddressPool(
            [Subnet.parse(block) for block in config.nat_blocks], net_rng
        )
        self.bots: Dict[str, BotNode] = {}
        self.bots_by_bot_id: Dict[bytes, BotNode] = {}
        self.gateways: List[NatGateway] = []
        self.churn: Optional[ChurnProcess] = None
        self._hotspots: List[Subnet] = []
        self._open_gateway: Optional[NatGateway] = None
        self._open_gateway_slots = 0
        self._preallocated: List[int] = []
        self.dense_neighborhood_keys: List[int] = []

    # -- family hooks ------------------------------------------------------

    def make_bot(self, node_id: str, endpoint: Endpoint, routable: bool, rng: random.Random) -> BotNode:
        """Construct one (unstarted) bot.  Family-specific."""
        raise NotImplementedError

    def bootstrap(self) -> None:
        """Seed initial peer lists.  Family-specific."""
        raise NotImplementedError

    # -- assembly ------------------------------------------------------------

    def _preallocate_dense_neighborhoods(self) -> None:
        """Reserve addresses for the configured dense /19s up front."""
        rng = self.rngs.stream("addresses")
        blocks = [Subnet.parse(block) for block in self.config.routable_blocks]
        per_half = self.config.bots_per_dense_neighborhood // 2
        remainder = self.config.bots_per_dense_neighborhood - per_half
        for _ in range(self.config.dense_neighborhoods):
            block = rng.choice(blocks)
            base = prefix_of(block.random_ip(rng), 19)
            self.dense_neighborhood_keys.append(base.network)
            low, high = base.subdivide(20)
            for _ in range(per_half):
                self._preallocated.append(self.routable_pool.allocate(within=low))
            for _ in range(remainder):
                self._preallocated.append(self.routable_pool.allocate(within=high))
        rng.shuffle(self._preallocated)

    def allocate_routable_ip(self) -> int:
        """A public IP, sometimes clustered into a hotspot /24."""
        if self._preallocated:
            return self._preallocated.pop()
        rng = self.rngs.stream("addresses")
        if self._hotspots and rng.random() < self.config.subnet_hotspot_fraction:
            hotspot = rng.choice(self._hotspots)
            try:
                return self.routable_pool.allocate(within=hotspot)
            except RuntimeError:
                pass  # hotspot full; fall through to a fresh allocation
        ip = self.routable_pool.allocate()
        self._hotspots.append(prefix_of(ip, 24))
        if len(self._hotspots) > 64:
            self._hotspots.pop(0)
        return ip

    def allocate_nat_endpoint(self) -> Endpoint:
        """A gateway-mapped endpoint; gateways hold 1..max bots each."""
        rng = self.rngs.stream("addresses")
        if self._open_gateway is None or self._open_gateway_slots == 0:
            gateway = NatGateway(public_ip=self.nat_pool.allocate())
            self.gateways.append(gateway)
            self._open_gateway = gateway
            self._open_gateway_slots = rng.randrange(1, self.config.max_bots_per_gateway + 1)
        self._open_gateway_slots -= 1
        ip, port = self._open_gateway.map_host()
        return Endpoint(ip, port)

    def build(self) -> None:
        """Create the full population (unstarted bots)."""
        if self.bots:
            raise RuntimeError("population already built")
        if self.config.dense_neighborhoods:
            self._preallocate_dense_neighborhoods()
        layout_rng = self.rngs.stream("layout")
        routable_count = max(1, round(self.config.population * self.config.routable_fraction))
        for index in range(self.config.population):
            routable = index < routable_count
            node_id = f"bot-{index:06d}"
            bot_rng = self.rngs.fork(node_id).stream("bot")
            if routable:
                endpoint = Endpoint(self.allocate_routable_ip(), self.listening_port(bot_rng))
            else:
                endpoint = self.allocate_nat_endpoint()
            bot = self.make_bot(node_id, endpoint, routable, bot_rng)
            if self.state is not None:
                self.state.adopt(bot)
            self.bots[node_id] = bot
            self.bots_by_bot_id[bot.bot_id] = bot
        self.bootstrap()
        if self.config.churn is not None:
            self._wire_churn()

    def listening_port(self, rng: random.Random) -> int:
        """Listening port for a routable bot; family networks override
        to enforce the family's port range (Table 5)."""
        return rng.randrange(1024, 65536)

    def _wire_churn(self) -> None:
        self.churn = ChurnProcess(
            self.scheduler,
            self.rngs.stream("churn"),
            self.config.churn,
            on_up=lambda node_id: self.bots[node_id].start(),
            on_down=lambda node_id: self.bots[node_id].stop(),
        )
        for node_id in self.bots:
            self.churn.add_node(node_id, online=True)

    # -- operation -------------------------------------------------------------

    def start_all(self) -> None:
        for bot in self.bots.values():
            bot.start()

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Advance the simulation by ``duration`` seconds."""
        return self.scheduler.run_until(self.scheduler.now + duration, max_events=max_events)

    # -- views ---------------------------------------------------------------

    @property
    def routable_bots(self) -> List[BotNode]:
        return [bot for bot in self.bots.values() if bot.routable]

    @property
    def non_routable_bots(self) -> List[BotNode]:
        return [bot for bot in self.bots.values() if not bot.routable]

    def all_bot_ips(self) -> Dict[int, List[str]]:
        """ip -> node ids (NATed bots share IPs)."""
        out: Dict[int, List[str]] = {}
        for bot in self.bots.values():
            out.setdefault(bot.endpoint.ip, []).append(bot.node_id)
        return out

    def connectivity_graph(self) -> ConnectivityGraph:
        """The current digraph G = (V, E): an edge a->b means b is in
        a's peer list.  Peers that map to no known bot (sensors,
        crawlers, junk) become nodes named by their endpoint."""
        graph = ConnectivityGraph()
        for bot in self.bots.values():
            graph.add_node(bot.node_id)
        for bot in self.bots.values():
            peer_list = getattr(bot, "peer_list", None)
            if peer_list is None:
                continue
            for entry in peer_list:
                target = self.bots_by_bot_id.get(entry.bot_id)
                name = target.node_id if target is not None else f"ext:{entry.endpoint}"
                if name != bot.node_id:
                    graph.add_edge(bot.node_id, name)
        return graph
