"""Struct-of-arrays population state.

Object-per-peer storage dominates memory once populations reach paper
scale (Section 5 crawls cover 5k-200k bots, each holding up to 1000
peer entries).  This module keeps the hot per-peer scalars in flat
parallel arrays instead:

* :class:`PeerSlab` -- one population-wide arena of peer-entry columns
  (id, endpoint, last_seen, failures, goodcount) with a free-slot list,
  shared by every bot's peer list;
* :class:`SlabPeerList` -- a drop-in replacement for
  :class:`repro.botnets.base.PeerList` whose per-bot state is just an
  insertion-ordered ``{bot_id: slot}`` dict plus a subnet index;
* :class:`SlabPeerEntry` -- a two-word flyweight view over one slot,
  duck-typed like :class:`repro.botnets.base.PeerEntry`;
* :class:`PopulationState` -- the per-population registry tying node
  indices to an online-flag bytearray and the shared slab.

Behaviour is bit-for-bit identical to the object backend: iteration
order is dict insertion order, eviction picks the first-encountered
stalest entry, and the subnet filter keeps at most one entry per
masked prefix.  ``tests/botnets/test_state_equivalence.py`` checks the
two backends against each other operation by operation.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Set

from repro.botnets.base import PeerList
from repro.net.address import subnet_key


class PeerSlab:
    """Arena of peer-entry columns shared by a population's peer lists.

    Slots are recycled through a free list, so steady-state churn in
    peer lists allocates no new storage.  Columns grow by appending,
    i.e. geometrically via list/array over-allocation.
    """

    __slots__ = ("ids", "id_ints", "endpoints", "last_seen", "failures", "goodcount", "_free")

    def __init__(self) -> None:
        self.ids: List[bytes] = []
        # Big-endian integer form of each id, precomputed so XOR-metric
        # peer selection never re-parses the 20-byte ids.
        self.id_ints: List[int] = []
        self.endpoints: list = []
        self.last_seen = array("d")
        self.failures = array("i")
        self.goodcount = array("i")
        self._free: List[int] = []

    def __len__(self) -> int:
        return len(self.ids) - len(self._free)

    @property
    def capacity(self) -> int:
        """Total slots ever allocated (live + free)."""
        return len(self.ids)

    def alloc(self, bot_id: bytes, endpoint, last_seen: float, failures: int, goodcount: int) -> int:
        free = self._free
        if free:
            slot = free.pop()
            self.ids[slot] = bot_id
            self.id_ints[slot] = int.from_bytes(bot_id, "big")
            self.endpoints[slot] = endpoint
            self.last_seen[slot] = last_seen
            self.failures[slot] = failures
            self.goodcount[slot] = goodcount
            return slot
        slot = len(self.ids)
        self.ids.append(bot_id)
        self.id_ints.append(int.from_bytes(bot_id, "big"))
        self.endpoints.append(endpoint)
        self.last_seen.append(last_seen)
        self.failures.append(failures)
        self.goodcount.append(goodcount)
        return slot

    def release(self, slot: int) -> None:
        # Drop object refs so freed peers do not pin ids/endpoints.
        self.ids[slot] = b""
        self.id_ints[slot] = 0
        self.endpoints[slot] = None
        self._free.append(slot)


class SlabPeerEntry:
    """Flyweight view of one slab slot; duck-typed like ``PeerEntry``."""

    __slots__ = ("_slab", "_slot")

    def __init__(self, slab: PeerSlab, slot: int) -> None:
        self._slab = slab
        self._slot = slot

    @property
    def bot_id(self) -> bytes:
        return self._slab.ids[self._slot]

    @property
    def endpoint(self):
        return self._slab.endpoints[self._slot]

    @endpoint.setter
    def endpoint(self, value) -> None:
        self._slab.endpoints[self._slot] = value

    @property
    def last_seen(self) -> float:
        return self._slab.last_seen[self._slot]

    @last_seen.setter
    def last_seen(self, value: float) -> None:
        self._slab.last_seen[self._slot] = value

    @property
    def failures(self) -> int:
        return self._slab.failures[self._slot]

    @failures.setter
    def failures(self, value: int) -> None:
        self._slab.failures[self._slot] = value

    @property
    def goodcount(self) -> int:
        return self._slab.goodcount[self._slot]

    @goodcount.setter
    def goodcount(self, value: int) -> None:
        self._slab.goodcount[self._slot] = value

    def __repr__(self) -> str:  # debugging aid
        return (
            f"SlabPeerEntry(bot_id={self.bot_id!r}, endpoint={self.endpoint}, "
            f"last_seen={self.last_seen}, failures={self.failures}, "
            f"goodcount={self.goodcount})"
        )


class SlabPeerList:
    """Slab-backed peer list; API- and behaviour-compatible with
    :class:`repro.botnets.base.PeerList`.

    Per-bot state is one insertion-ordered ``{bot_id: slot}`` dict (the
    iteration-order contract every family relies on) plus the optional
    ``{subnet_key: slot}`` filter index.
    """

    __slots__ = ("capacity", "ip_filter_prefix", "_slab", "_slots", "_subnets")

    def __init__(self, capacity: int, ip_filter_prefix: Optional[int], slab: PeerSlab) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ip_filter_prefix is not None and not 0 < ip_filter_prefix <= 32:
            raise ValueError(f"bad ip_filter_prefix: {ip_filter_prefix}")
        self.capacity = capacity
        self.ip_filter_prefix = ip_filter_prefix
        self._slab = slab
        self._slots: Dict[bytes, int] = {}
        self._subnets: Optional[Dict[int, int]] = (
            {} if ip_filter_prefix is not None else None
        )

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, bot_id: bytes) -> bool:
        return bot_id in self._slots

    def __iter__(self) -> Iterator[SlabPeerEntry]:
        return iter(self.entries())

    def get(self, bot_id: bytes) -> Optional[SlabPeerEntry]:
        slot = self._slots.get(bot_id)
        if slot is None:
            return None
        return SlabPeerEntry(self._slab, slot)

    def entries(self) -> List[SlabPeerEntry]:
        slab = self._slab
        return [SlabPeerEntry(slab, slot) for slot in self._slots.values()]

    def ids(self) -> Set[bytes]:
        return set(self._slots)

    def ips(self) -> Set[int]:
        endpoints = self._slab.endpoints
        return {endpoints[slot].ip for slot in self._slots.values()}

    def maintenance_view(self) -> list:
        """(bot_id, endpoint, failures) tuples sorted by last_seen.

        Same ordering contract as ``PeerList.maintenance_view``: stable
        sort over insertion order, so same-time entries keep their
        relative positions.  Built straight from the slab columns --
        no flyweights on the cycle hot path.
        """
        slab = self._slab
        last_seen = slab.last_seen
        order = sorted(self._slots.values(), key=last_seen.__getitem__)
        ids = slab.ids
        endpoints = slab.endpoints
        failures = slab.failures
        return [(ids[slot], endpoints[slot], failures[slot]) for slot in order]

    def closest(self, lookup_key: bytes, exclude_id: bytes, limit: int) -> list:
        """The ``limit`` (bot_id, endpoint) pairs XOR-closest to
        ``lookup_key``, excluding ``exclude_id``.

        Matches ``PeerList.closest`` / ``protocol.select_closest``
        exactly; distances come from the slab's precomputed id
        integers instead of per-call ``int.from_bytes``.
        """
        key_int = int.from_bytes(lookup_key, "big")
        slab = self._slab
        ids = slab.ids
        id_ints = slab.id_ints
        ranked = sorted(
            [
                (key_int ^ id_ints[slot], slot)
                for bot_id, slot in self._slots.items()
                if bot_id != exclude_id
            ]
        )
        endpoints = slab.endpoints
        return [(ids[slot], endpoints[slot]) for _, slot in ranked[:limit]]

    def _conflict_slot(self, bot_id: bytes, ip: int) -> Optional[int]:
        if self._subnets is None:
            return None
        occupant = self._subnets.get(subnet_key(ip, self.ip_filter_prefix))
        if occupant is None or self._slab.ids[occupant] == bot_id:
            return None
        return occupant

    def _index_add(self, slot: int, ip: int) -> None:
        if self._subnets is not None:
            self._subnets[subnet_key(ip, self.ip_filter_prefix)] = slot

    def _index_drop(self, ip: int) -> None:
        if self._subnets is not None:
            self._subnets.pop(subnet_key(ip, self.ip_filter_prefix), None)

    def add(self, entry) -> bool:
        """Insert or refresh; same rules (and tie-breaks) as PeerList."""
        slab = self._slab
        bot_id = entry.bot_id
        slot = self._slots.get(bot_id)
        if slot is not None:
            old_endpoint = slab.endpoints[slot]
            new_endpoint = entry.endpoint
            if old_endpoint != new_endpoint:
                if self._conflict_slot(bot_id, new_endpoint.ip) is not None:
                    # Address update into an occupied subnet: rejected,
                    # the entry stays alive at its old address.
                    if entry.last_seen > slab.last_seen[slot]:
                        slab.last_seen[slot] = entry.last_seen
                    return True
                self._index_drop(old_endpoint.ip)
                slab.endpoints[slot] = new_endpoint
                self._index_add(slot, new_endpoint.ip)
            if entry.last_seen > slab.last_seen[slot]:
                slab.last_seen[slot] = entry.last_seen
            return True
        if self._conflict_slot(bot_id, entry.endpoint.ip) is not None:
            return False
        if len(self._slots) >= self.capacity:
            last_seen = slab.last_seen
            stalest_id = None
            stalest_slot = -1
            stalest_seen = float("inf")
            for candidate_id, candidate_slot in self._slots.items():
                seen = last_seen[candidate_slot]
                if seen < stalest_seen:  # strict: keep first-encountered
                    stalest_seen = seen
                    stalest_id = candidate_id
                    stalest_slot = candidate_slot
            if stalest_seen >= entry.last_seen:
                return False
            del self._slots[stalest_id]
            self._index_drop(slab.endpoints[stalest_slot].ip)
            slab.release(stalest_slot)
        slot = slab.alloc(bot_id, entry.endpoint, entry.last_seen, entry.failures, entry.goodcount)
        self._slots[bot_id] = slot
        self._index_add(slot, entry.endpoint.ip)
        return True

    def remove(self, bot_id: bytes) -> bool:
        slot = self._slots.pop(bot_id, None)
        if slot is None:
            return False
        self._index_drop(self._slab.endpoints[slot].ip)
        self._slab.release(slot)
        return True

    def touch(self, bot_id: bytes, now: float) -> None:
        slot = self._slots.get(bot_id)
        if slot is not None:
            slab = self._slab
            slab.last_seen[slot] = now
            slab.failures[slot] = 0

    def record_failure(self, bot_id: bytes, evict_after: int) -> bool:
        slot = self._slots.get(bot_id)
        if slot is None:
            return False
        slab = self._slab
        failures = slab.failures[slot] + 1
        slab.failures[slot] = failures
        if failures >= evict_after:
            del self._slots[bot_id]
            self._index_drop(slab.endpoints[slot].ip)
            slab.release(slot)
            return True
        return False


class PopulationState:
    """SoA registry for one population: node indices, online flags, and
    the shared peer slab.

    ``online`` mirrors each bot's online flag (bots write through to it
    from :attr:`repro.botnets.base.BotNode.online`), so population-wide
    liveness scans are a single bytearray pass instead of an attribute
    walk over every bot object.
    """

    __slots__ = ("node_ids", "index_of", "online", "slab")

    def __init__(self) -> None:
        self.node_ids: List[str] = []
        self.index_of: Dict[str, int] = {}
        self.online = bytearray()
        self.slab = PeerSlab()

    def __len__(self) -> int:
        return len(self.node_ids)

    def register(self, node_id: str) -> int:
        if node_id in self.index_of:
            raise ValueError(f"node already registered: {node_id}")
        index = len(self.node_ids)
        self.node_ids.append(node_id)
        self.index_of[node_id] = index
        self.online.append(0)
        return index

    def online_count(self) -> int:
        return sum(self.online)

    def adopt(self, bot) -> None:
        """Attach a freshly built bot to this state.

        Registers the node and swaps its object-backed ``PeerList`` for
        a slab-backed one (migrating any pre-seeded entries).
        """
        index = self.register(bot.node_id)
        bot.attach_state(self, index)
        peer_list = getattr(bot, "peer_list", None)
        if isinstance(peer_list, PeerList):
            replacement = SlabPeerList(
                peer_list.capacity, peer_list.ip_filter_prefix, self.slab
            )
            for entry in peer_list:
                replacement.add(entry)
            bot.peer_list = replacement

    def stats(self) -> Dict[str, int]:
        """Occupancy numbers for bench memory line items."""
        return {
            "nodes": len(self.node_ids),
            "online": self.online_count(),
            "peer_slots_live": len(self.slab),
            "peer_slots_allocated": self.slab.capacity,
        }
