"""Feature descriptors for the six major P2P botnet families.

Tables 1 and 5 of the paper are property matrices over the families
active since 2007: GameOver Zeus, Sality, ZeroAccess, Kelihos/Hlux,
Waledac, and Storm.  This module encodes those properties as data, so
the tables can be *regenerated* (and the scanner/recon code can branch
on the same facts the paper's analysis used).

Zeus and Sality additionally have full behavioural emulations in
:mod:`repro.botnets.zeus` and :mod:`repro.botnets.sality`; the other
four are modelled at the feature level plus a lightweight probeable
responder (enough for the Internet-wide scanning experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class IpFilter(Enum):
    """Sensor-injection IP filters (Table 1, "IP filter" column)."""

    NONE = "-"
    PER_IP = "By IP"
    PER_SLASH20 = "By /20"


class InfoLimit(Enum):
    """Information limiting designed to slow crawling."""

    PEER_LIST = "Peer list"    # small peer-list responses
    RELAY_LIST = "Relay list"  # only a small relay set circulates
    PROXIMITY = "Proximity"    # metric-restricted responses


class Blacklisting(Enum):
    NONE = "-"
    MANUAL = "Manual"
    AUTO_AND_STATIC = "Auto + static"


@dataclass(frozen=True)
class FamilyProfile:
    """Everything Tables 1 and 5 say about one family."""

    name: str
    # Table 1 -- deterrence
    ip_filter: IpFilter
    reputation: Optional[str]           # e.g. "Goodcount" for Sality
    info_limit: InfoLimit
    clustering: Optional[str]           # "XOR metric", "Relay core", or None
    flux: Optional[str]                 # continuous peer-list overwrite
    # Table 1 -- attacks
    blacklisting: Blacklisting
    disinformation: Optional[str]       # "Junk", "Rogue", or None
    retaliation: Optional[str]          # "DDoS after attack" or None
    # Table 5 -- Internet-wide scanning prerequisites
    port_range: Tuple[int, int]         # inclusive listening-port range
    probe_constructible: bool           # can an infection probe be built
    #   Zeus probes need the target's bot ID a priori (destination-keyed
    #   encryption), so probe_constructible is False for Zeus.
    # misc protocol facts used elsewhere
    peer_list_capacity: int = 0
    entries_per_response: int = 0
    suspend_cycle_minutes: int = 0

    @property
    def fixed_port(self) -> bool:
        """Table 5 "Fixed port": a single port or a tiny range."""
        low, high = self.port_range
        return (high - low) < 8

    @property
    def scanning_susceptible(self) -> bool:
        """Table 5 "Susceptible": both prerequisites must hold."""
        return self.fixed_port and self.probe_constructible


ZEUS = FamilyProfile(
    name="Zeus",
    ip_filter=IpFilter.PER_SLASH20,
    reputation=None,
    info_limit=InfoLimit.PEER_LIST,
    clustering="XOR metric",
    flux=None,
    blacklisting=Blacklisting.AUTO_AND_STATIC,
    disinformation=None,
    retaliation="After attack",
    port_range=(1024, 10000),
    probe_constructible=False,
    peer_list_capacity=150,
    entries_per_response=10,
    suspend_cycle_minutes=30,
)

SALITY = FamilyProfile(
    name="Sality",
    ip_filter=IpFilter.PER_IP,
    reputation="Goodcount",
    info_limit=InfoLimit.PEER_LIST,
    clustering=None,
    flux=None,
    blacklisting=Blacklisting.NONE,
    disinformation=None,
    retaliation=None,
    port_range=(1024, 65535),
    probe_constructible=True,
    peer_list_capacity=1000,
    entries_per_response=1,
    suspend_cycle_minutes=40,
)

ZEROACCESS = FamilyProfile(
    name="ZeroAccess",
    ip_filter=IpFilter.PER_IP,
    reputation=None,
    info_limit=InfoLimit.PEER_LIST,
    clustering=None,
    flux="Peer push",
    blacklisting=Blacklisting.MANUAL,
    disinformation="Junk",
    retaliation=None,
    port_range=(16471, 16471),
    probe_constructible=True,
    peer_list_capacity=256,
    entries_per_response=16,
    suspend_cycle_minutes=15,
)

KELIHOS = FamilyProfile(
    name="Kelihos/Hlux",
    ip_filter=IpFilter.PER_IP,
    reputation=None,
    info_limit=InfoLimit.RELAY_LIST,
    clustering="Relay core",
    flux=None,
    blacklisting=Blacklisting.MANUAL,
    disinformation=None,
    retaliation=None,
    port_range=(80, 80),
    probe_constructible=True,
    peer_list_capacity=500,
    entries_per_response=250,
    suspend_cycle_minutes=10,
)

WALEDAC = FamilyProfile(
    name="Waledac",
    ip_filter=IpFilter.PER_IP,
    reputation=None,
    info_limit=InfoLimit.RELAY_LIST,
    clustering=None,
    flux=None,
    blacklisting=Blacklisting.NONE,
    disinformation=None,
    retaliation=None,
    port_range=(1024, 65535),
    probe_constructible=True,
    peer_list_capacity=500,
    entries_per_response=100,
    suspend_cycle_minutes=30,
)

STORM = FamilyProfile(
    name="Storm",
    ip_filter=IpFilter.NONE,
    reputation=None,
    info_limit=InfoLimit.PROXIMITY,
    clustering="XOR metric",
    flux=None,
    blacklisting=Blacklisting.NONE,
    disinformation="Rogue",
    retaliation="After attack",
    port_range=(1024, 65535),
    probe_constructible=True,
    peer_list_capacity=1000,
    entries_per_response=10,
    suspend_cycle_minutes=10,
)

FAMILIES: Dict[str, FamilyProfile] = {
    profile.name: profile
    for profile in (ZEUS, SALITY, ZEROACCESS, KELIHOS, WALEDAC, STORM)
}

# Presentation order used by the paper's tables.
FAMILY_ORDER: List[str] = [
    "Zeus",
    "Sality",
    "ZeroAccess",
    "Kelihos/Hlux",
    "Waledac",
    "Storm",
]


def get_family(name: str) -> FamilyProfile:
    """Look up a family by its table name."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; known: {', '.join(FAMILY_ORDER)}"
        ) from None
