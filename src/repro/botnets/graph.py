"""Botnet connectivity digraph.

An edge ``a -> b`` means "a knows b": b appears in a's peer list.  The
out-degree of a node is its peer-list size; its in-degree is how many
peer lists it appears in.  Two facts from the paper live here:

* The **degree sum formula** (Section 4.2, footnote 1):
  ``sum(out degrees) == sum(in degrees) == |E|``.  It is the reason
  botmasters cannot expose sensors by capping in-degree without also
  capping out-degree and crippling their own connectivity.  The graph
  maintains both indexes and :meth:`check_degree_sum` asserts the
  invariant (also property-tested).
* Sensors have anomalously **high in-degree**, crawlers anomalously
  high **out-degree**; :meth:`top_in_degree` / :meth:`top_out_degree`
  are the primitives the sensor-hunting analysis of Section 4.2 uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


class ConnectivityGraph:
    """Directed graph over opaque string node ids."""

    def __init__(self) -> None:
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}

    # -- construction ----------------------------------------------------

    def add_node(self, node: str) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, src: str, dst: str) -> None:
        """Record that ``src`` knows ``dst``.  Idempotent; loops rejected."""
        if src == dst:
            raise ValueError(f"self-loop rejected: {src}")
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_edge(self, src: str, dst: str) -> None:
        self._succ.get(src, set()).discard(dst)
        self._pred.get(dst, set()).discard(src)

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and every incident edge."""
        for dst in self._succ.pop(node, set()):
            self._pred[dst].discard(node)
        for src in self._pred.pop(node, set()):
            self._succ[src].discard(node)

    # -- queries ----------------------------------------------------------

    def __contains__(self, node: str) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def nodes(self) -> Iterator[str]:
        return iter(self._succ)

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def edges(self) -> Iterator[Tuple[str, str]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def successors(self, node: str) -> Set[str]:
        """Nodes that ``node`` knows (its peer list)."""
        return set(self._succ.get(node, set()))

    def predecessors(self, node: str) -> Set[str]:
        """Nodes that know ``node``."""
        return set(self._pred.get(node, set()))

    def has_edge(self, src: str, dst: str) -> bool:
        return dst in self._succ.get(src, set())

    def out_degree(self, node: str) -> int:
        return len(self._succ.get(node, set()))

    def in_degree(self, node: str) -> int:
        return len(self._pred.get(node, set()))

    # -- paper-specific analyses -------------------------------------------

    def check_degree_sum(self) -> int:
        """Assert the degree sum formula; return ``|E|``.

        Raises :class:`AssertionError` if the internal indexes have
        diverged (which would indicate a bug, never a valid state).
        """
        out_sum = sum(len(s) for s in self._succ.values())
        in_sum = sum(len(p) for p in self._pred.values())
        if out_sum != in_sum:
            raise AssertionError(
                f"degree sum violated: sum(out)={out_sum} != sum(in)={in_sum}"
            )
        return out_sum

    def top_in_degree(self, count: int) -> List[Tuple[str, int]]:
        """Nodes with highest in-degree (sensor-candidate scan)."""
        ranked = sorted(
            ((node, len(preds)) for node, preds in self._pred.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:count]

    def top_out_degree(self, count: int) -> List[Tuple[str, int]]:
        """Nodes with highest out-degree (crawler-candidate scan)."""
        ranked = sorted(
            ((node, len(succs)) for node, succs in self._succ.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:count]

    def reachable_from(self, starts: Iterable[str]) -> Set[str]:
        """Forward-reachable set -- what an ideal crawler could learn
        starting from a bootstrap peer list."""
        frontier = [s for s in starts if s in self._succ]
        seen: Set[str] = set(frontier)
        while frontier:
            node = frontier.pop()
            for nxt in self._succ.get(node, set()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def snapshot(self) -> "ConnectivityGraph":
        """Deep copy, for before/after comparisons in experiments."""
        clone = ConnectivityGraph()
        for node in self._succ:
            clone.add_node(node)
        for src, dst in self.edges():
            clone.add_edge(src, dst)
        return clone

    def to_networkx(self):  # pragma: no cover - thin convenience shim
        """Export to a ``networkx.DiGraph`` for ad-hoc analysis."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._succ)
        graph.add_edges_from(self.edges())
        return graph
