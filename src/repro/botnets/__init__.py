"""Botnet protocol emulation.

The paper treats a botnet as a digraph ``G = (V, E)`` whose vertices are
bots and whose edges are is-neighbor (peer-list) relations.  This
package builds that digraph and the protocols that maintain it:

* :mod:`repro.botnets.graph` -- the connectivity digraph with in/out
  degree accounting and the degree-sum invariant from Section 4.2.
* :mod:`repro.botnets.base` -- the generic P2P bot: peer lists, peer
  exchange loops, eviction of unresponsive peers.
* :mod:`repro.botnets.zeus` -- GameOver Zeus wire protocol, crypto, and
  bot behaviour (XOR-proximity peer selection, /20 peer-list filter,
  30-minute suspend cycle, frequency-based automatic blacklisting).
* :mod:`repro.botnets.sality` -- Sality v3 (goodcount reputation,
  single-entry peer exchanges, URL packs, 40-minute suspend cycle).
* :mod:`repro.botnets.families` -- feature descriptors for all six
  major P2P families, backing Tables 1 and 5.
* :mod:`repro.botnets.antirecon` -- active anti-recon attacks:
  blacklisting, disinformation, retaliation (Section 3).
"""

from repro.botnets.base import BotNode, PeerEntry, PeerList
from repro.botnets.graph import ConnectivityGraph

__all__ = [
    "BotNode",
    "ConnectivityGraph",
    "PeerEntry",
    "PeerList",
]
