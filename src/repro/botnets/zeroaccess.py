"""ZeroAccess behavioural model: fixed port + peer-list flux.

Two Table 1/5 properties of ZeroAccess get a working implementation
here rather than a feature flag:

* **Fixed port** (Table 5): every bot listens on the version's single
  well-known port, which is what makes ZeroAccess the canonical target
  for Internet-wide scanning (it was enumerated with ZMap in practice).
* **Flux** (Table 1, Section 3.1): bots continuously *push* unsolicited
  peer-list updates to their neighbours and continuously *verify* their
  entries with getL keepalives.  Verified peers stay fresh and keep
  circulating; an entry that never answers -- an injected sensor that
  stopped announcing -- ages out and is evicted: "ZeroAccess prevents
  injection of persistent links to sensors by pushing a continuous
  flux of peer list updates, constantly overwriting the full peer list
  of each routable bot."

The wire format is synthetic and minimal (magic, type, sender id,
packed peer entries); ZeroAccess's real newer protocol is a fixed-key
XOR over a similar structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.botnets.base import BotNode, PeerEntry, PeerList
from repro.net.transport import Endpoint, Message, Transport
from repro.sim.clock import MINUTE
from repro.sim.scheduler import Scheduler

FIXED_PORT = 16471
MAGIC = b"ZA30"
MSG_GETL = 0x01   # request peers / keepalive (the scannable probe)
MSG_RETL = 0x02   # peer-list response
MSG_PUSH = 0x03   # unsolicited flux update
ENTRY_LEN = 4 + 4  # bot id + IPv4 (the protocol is IP-centric)
HEADER_LEN = 4 + 1 + 4 + 1  # magic + type + sender id + count


class ZeroAccessDecodeError(ValueError):
    """Bytes do not form a rational ZeroAccess packet."""


def encode_packet(msg_type: int, sender_id: int, entries: List[Tuple[int, int]]) -> bytes:
    """``entries``: (bot id, ip) pairs; the port is always FIXED_PORT."""
    if len(entries) > 0xFF:
        raise ValueError("too many entries")
    body = bytearray(MAGIC)
    body.append(msg_type)
    body += sender_id.to_bytes(4, "big")
    body.append(len(entries))
    for bot_id, ip in entries:
        body += bot_id.to_bytes(4, "big")
        body += ip.to_bytes(4, "big")
    return bytes(body)


def decode_packet(data: bytes) -> Tuple[int, int, List[Tuple[int, int]]]:
    """Returns (msg type, sender id, entries)."""
    if len(data) < HEADER_LEN or data[:4] != MAGIC:
        raise ZeroAccessDecodeError("bad magic")
    msg_type = data[4]
    if msg_type not in (MSG_GETL, MSG_RETL, MSG_PUSH):
        raise ZeroAccessDecodeError(f"unknown type: {msg_type:#x}")
    sender_id = int.from_bytes(data[5:9], "big")
    count = data[9]
    if len(data) != HEADER_LEN + count * ENTRY_LEN:
        raise ZeroAccessDecodeError("length mismatch")
    entries = []
    offset = HEADER_LEN
    for _ in range(count):
        bot_id = int.from_bytes(data[offset : offset + 4], "big")
        ip = int.from_bytes(data[offset + 4 : offset + 8], "big")
        entries.append((bot_id, ip))
        offset += ENTRY_LEN
    return msg_type, sender_id, entries


@dataclass
class ZeroAccessConfig:
    peer_list_capacity: int = 256
    entries_per_message: int = 16
    cycle_interval: float = 15 * MINUTE
    push_fanout: int = 4
    verify_per_cycle: int = 4
    evict_after_failures: int = 3
    # Pushed (hearsay) entries are backdated by this much: a peer we
    # never verified ourselves must not outrank peers that answered us.
    push_entry_age: float = 30 * MINUTE


class ZeroAccessBot(BotNode):
    """A minimal flux-pushing, keepalive-verifying ZeroAccess bot."""

    def __init__(
        self,
        node_id: str,
        bot_id: bytes,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        routable: bool = True,
        config: Optional[ZeroAccessConfig] = None,
    ) -> None:
        self.config = config if config is not None else ZeroAccessConfig()
        if endpoint.port != FIXED_PORT:
            raise ValueError(f"ZeroAccess listens on {FIXED_PORT}, not {endpoint.port}")
        super().__init__(
            node_id=node_id,
            bot_id=bot_id,
            endpoint=endpoint,
            transport=transport,
            scheduler=scheduler,
            rng=rng,
            routable=routable,
            cycle_interval=self.config.cycle_interval,
        )
        self.peer_list = PeerList(
            capacity=self.config.peer_list_capacity, ip_filter_prefix=32
        )
        self.pushes_received = 0
        self.undecodable = 0

    @property
    def int_id(self) -> int:
        return int.from_bytes(self.bot_id, "big")

    def seed_peers(self, peers: List[Tuple[bytes, Endpoint]]) -> None:
        now = self.scheduler.now
        for bot_id, endpoint in peers:
            if bot_id != self.bot_id:
                self.peer_list.add(PeerEntry(bot_id=bot_id, endpoint=endpoint, last_seen=now))

    def _freshest_entries(self) -> List[Tuple[int, int]]:
        entries = sorted(self.peer_list.entries(), key=lambda e: -e.last_seen)
        return [
            (int.from_bytes(entry.bot_id, "big"), entry.endpoint.ip)
            for entry in entries[: self.config.entries_per_message]
        ]

    def run_cycle(self) -> None:
        """The flux: verify stale entries, push fresh ones."""
        entries = self.peer_list.entries()
        if not entries:
            return
        # Keepalive verification: probe the stalest entries; anything
        # that keeps failing is evicted (a sensor that stopped
        # answering, a dead bot).  Failures are counted at send time
        # and cleared by any decodable traffic from the peer.
        stalest = sorted(entries, key=lambda e: e.last_seen)
        for entry in stalest[: self.config.verify_per_cycle]:
            self.peer_list.record_failure(entry.bot_id, self.config.evict_after_failures)
            self.send(entry.endpoint, encode_packet(MSG_GETL, self.int_id, []))
        # Push our freshest entries to random neighbours.
        payload = encode_packet(MSG_PUSH, self.int_id, self._freshest_entries())
        survivors = self.peer_list.entries()
        fanout = min(self.config.push_fanout, len(survivors))
        for entry in self.rng.sample(survivors, fanout):
            self.send(entry.endpoint, payload)

    def handle_message(self, message: Message) -> None:
        try:
            msg_type, sender_id, entries = decode_packet(message.payload)
        except ZeroAccessDecodeError:
            self.undecodable += 1
            return
        now = self.scheduler.now
        sender_key = sender_id.to_bytes(4, "big")
        # Any rational traffic proves the sender alive: refresh it (and
        # learn it, as ZeroAccess bots learn contacts).
        if sender_key != self.bot_id:
            self.peer_list.add(
                PeerEntry(
                    bot_id=sender_key,
                    endpoint=Endpoint(message.src.ip, FIXED_PORT),
                    last_seen=now,
                )
            )
            self.peer_list.touch(sender_key, now)
        if msg_type == MSG_GETL:
            self.counters.requests_served += 1
            self.send(
                message.src, encode_packet(MSG_RETL, self.int_id, self._freshest_entries())
            )
            return
        if msg_type == MSG_PUSH:
            self.pushes_received += 1
        # RETL/PUSH entries are hearsay: merged, but backdated so they
        # never outrank peers this bot verified itself.
        hearsay_seen = now - self.config.push_entry_age
        for bot_id, ip in entries:
            key = bot_id.to_bytes(4, "big")
            if key != self.bot_id and key not in self.peer_list:
                self.peer_list.add(
                    PeerEntry(
                        bot_id=key,
                        endpoint=Endpoint(ip, FIXED_PORT),
                        last_seen=hearsay_seen,
                    )
                )
