"""Sality v3 emulation.

Implements the protocol properties the paper's analysis rests on:

* Peer lists of ~1000 entries with at most one entry per IP, but only
  a **single peer entry returned per peer-exchange response** -- the
  constraint that forces Sality crawlers into hard-hitting request
  frequencies (Section 4.1.5) and makes frequency limiting devastating
  to their coverage (Figure 4b).
* A **goodcount reputation scheme**: peers accrue reputation by
  responding correctly over time and are only propagated to other bots
  once well-reputed -- the sensor-injection deterrent of Section 3.1.
* 40-minute suspend cycle between request rounds.
* Randomized source port per message exchange for routable bots
  (crawlers that send from one fixed port exhibit the "port range"
  defect of Table 2).
* URL-pack exchange messages (the payload distribution channel); real
  bots intersperse these with peer exchanges, crawlers typically do not.
* Version-number fields; in-the-wild crawlers got the minor version
  wrong (Table 2, "Version" row).

The wire format is synthetic (documented in
:mod:`repro.botnets.sality.protocol`) but preserves every field class
the paper's anomaly analysis uses.
"""

from repro.botnets.sality.bot import SalityBot, SalityConfig
from repro.botnets.sality.network import SalityNetwork, SalityNetworkConfig
from repro.botnets.sality.protocol import (
    Command,
    SalityDecodeError,
    SalityMessage,
    decode_packet,
    encode_packet,
)

__all__ = [
    "Command",
    "SalityBot",
    "SalityConfig",
    "SalityDecodeError",
    "SalityMessage",
    "SalityNetwork",
    "SalityNetworkConfig",
    "decode_packet",
    "encode_packet",
]
