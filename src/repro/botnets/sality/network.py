"""Sality v3 population builder."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.botnets.population import PopulationBuilder, PopulationConfig
from repro.botnets.sality.bot import SalityBot, SalityConfig
from repro.net.transport import Endpoint


@dataclass
class SalityNetworkConfig(PopulationConfig):
    """Population knobs plus the Sality protocol configuration."""

    sality: SalityConfig = field(default_factory=SalityConfig)


class SalityNetwork(PopulationBuilder):
    """A simulated Sality v3 botnet."""

    def __init__(self, config: Optional[SalityNetworkConfig] = None) -> None:
        self.sconfig = config if config is not None else SalityNetworkConfig()
        super().__init__(self.sconfig)

    def make_bot(self, node_id: str, endpoint: Endpoint, routable: bool, rng: random.Random) -> SalityBot:
        return SalityBot(
            node_id=node_id,
            bot_id=rng.getrandbits(32).to_bytes(4, "big"),
            endpoint=endpoint,
            transport=self.transport,
            scheduler=self.scheduler,
            rng=rng,
            routable=routable,
            config=self.sconfig.sality,
        )

    def bootstrap(self) -> None:
        """Seed every bot with well-reputed routable peers."""
        rng = self.rngs.stream("bootstrap")
        routable = [bot for bot in self.bots.values() if bot.routable]
        if not routable:
            raise RuntimeError("Sality needs at least one routable bot")
        per_bot = min(self.config.bootstrap_peers, len(routable))
        for bot in self.bots.values():
            candidates = [peer for peer in routable if peer is not bot]
            seeds = rng.sample(candidates, min(per_bot, len(candidates)))
            bot.seed_peers([(peer.bot_id, peer.endpoint) for peer in seeds])

    def bootstrap_sample(self, count: int, seed: int = 0) -> List[Tuple[bytes, Endpoint]]:
        """A bootstrap peer list for a recon tool (as ripped from a
        bot sample)."""
        rng = random.Random(seed)
        routable = [bot for bot in self.bots.values() if bot.routable]
        picks = rng.sample(routable, min(count, len(routable)))
        return [(bot.bot_id, bot.endpoint) for bot in picks]
