"""Sality v3 wire protocol: message structures and codec.

Synthetic layout preserving the paper-relevant field classes
(version numbers, random integer bot IDs, random trailing padding,
single-entry peer exchanges, URL packs)::

    offset  size  field
    0       1     major version   (always 3 for Sality v3)
    1       1     minor version   (current network minor)
    2       1     command
    3       1     pad length      (trailing random padding, 0-15)
    4       4     bot ID          (random uint32, stable while bot is up)
    8       4     nonce           (random per exchange; replies echo it)
    12      n     payload         (command-specific)
    12+n    pad   random padding

The whole packet after the 4-byte clear nonce prefix is RC4-encrypted
under ``network_key || nonce``; the per-message nonce prevents trivial
keystream reuse while keeping probe construction possible without any
per-bot secret -- which is exactly why Sality *is* probe-constructible
for Internet-wide scanning (Table 5) while Zeus is not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

from repro.botnets.zeus.crypto import KeystreamCache
from repro.net.transport import Endpoint

HEADER_LEN = 12
MAJOR_VERSION = 3
CURRENT_MINOR_VERSION = 9
MAX_PADDING = 15
PEER_ENTRY_LEN = 4 + 4 + 2  # bot id + IPv4 + port

# The network-wide key, extractable from any bot sample (which is how
# analysts build Sality probes in practice).
NETWORK_KEY = b"sality3-p2p-network!"

_keystreams = KeystreamCache(max_entries=65536)


class Command(IntEnum):
    HELLO = 0x01            # presence announcement / keepalive
    PEER_REQUEST = 0x02     # peer exchange request
    PEER_RESPONSE = 0x03    # single peer entry (or empty)
    URLPACK_REQUEST = 0x04  # payload-distribution pack exchange
    URLPACK_RESPONSE = 0x05


_VALID_COMMANDS = {int(c) for c in Command}


class SalityDecodeError(ValueError):
    """Bytes do not form a rational Sality packet."""


@dataclass(slots=True)
class SalityMessage:
    """A decoded (plaintext) Sality packet."""

    command: int
    bot_id: int
    nonce: int
    payload: bytes = b""
    minor_version: int = CURRENT_MINOR_VERSION
    major_version: int = MAJOR_VERSION
    padding: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.bot_id <= 0xFFFFFFFF:
            raise ValueError("bot id out of range")
        if not 0 <= self.nonce <= 0xFFFFFFFF:
            raise ValueError("nonce out of range")
        if len(self.padding) > MAX_PADDING:
            raise ValueError("padding too long")


def make_message(
    command: int,
    bot_id: int,
    rng: random.Random,
    payload: bytes = b"",
    nonce: Optional[int] = None,
    minor_version: int = CURRENT_MINOR_VERSION,
) -> SalityMessage:
    """Build a packet as a real bot would: fresh nonce (unless replying)
    and a random amount of random padding."""
    pad_len = rng.randrange(0, MAX_PADDING + 1)
    return SalityMessage(
        command=command,
        bot_id=bot_id,
        nonce=nonce if nonce is not None else rng.getrandbits(32),
        payload=payload,
        minor_version=minor_version,
        # Per-byte draws are load-bearing for replay compatibility.
        padding=bytes([rng.getrandbits(8) for _ in range(pad_len)]),
    )


def _encode_plain(message: SalityMessage) -> bytes:
    if message.command not in _VALID_COMMANDS:
        raise ValueError(f"unknown command: {message.command}")
    header = bytes(
        (
            message.major_version,
            message.minor_version,
            message.command,
            len(message.padding),
        )
    )
    return (
        header
        + message.bot_id.to_bytes(4, "big")
        + message.nonce.to_bytes(4, "big")
        + message.payload
        + message.padding
    )


def encode_packet(message: SalityMessage) -> bytes:
    """Serialize and encrypt: clear nonce prefix + RC4 body."""
    plain = _encode_plain(message)
    nonce_bytes = message.nonce.to_bytes(4, "big")
    body = _keystreams.xor(NETWORK_KEY + nonce_bytes, plain)
    return nonce_bytes + body


def decode_packet(data: bytes) -> SalityMessage:
    """Decrypt and parse; :class:`SalityDecodeError` on irrational
    structure (short packet, bad version, unknown command, bad pad)."""
    if len(data) < 4 + HEADER_LEN:
        raise SalityDecodeError(f"short packet: {len(data)} bytes")
    nonce_bytes = data[:4]
    plain = _keystreams.xor(NETWORK_KEY + nonce_bytes, data[4:])
    major, minor, command, pad_len = plain[0], plain[1], plain[2], plain[3]
    if major != MAJOR_VERSION:
        raise SalityDecodeError(f"bad major version: {major}")
    if command not in _VALID_COMMANDS:
        raise SalityDecodeError(f"unknown command: {command:#x}")
    if pad_len > MAX_PADDING or HEADER_LEN + pad_len > len(plain):
        raise SalityDecodeError(f"irrational padding length: {pad_len}")
    bot_id = int.from_bytes(plain[4:8], "big")
    nonce = int.from_bytes(plain[8:12], "big")
    if nonce != int.from_bytes(nonce_bytes, "big"):
        raise SalityDecodeError("nonce mismatch")
    payload_end = len(plain) - pad_len
    message = SalityMessage(
        command=command,
        bot_id=bot_id,
        nonce=nonce,
        payload=plain[HEADER_LEN:payload_end],
        minor_version=minor,
        padding=plain[payload_end:],
    )
    _validate_payload(message)
    return message


def _validate_payload(message: SalityMessage) -> None:
    command, payload = message.command, message.payload
    if command == Command.HELLO:
        if len(payload) != 2:
            raise SalityDecodeError("hello needs a 2-byte listening port")
    elif command == Command.PEER_REQUEST:
        if payload:
            raise SalityDecodeError("peer request carries no payload")
    elif command == Command.PEER_RESPONSE:
        if len(payload) not in (0, PEER_ENTRY_LEN):
            raise SalityDecodeError("peer response is empty or one entry")
    elif command == Command.URLPACK_REQUEST:
        if len(payload) != 4:
            raise SalityDecodeError("urlpack request needs a 4-byte sequence")
    elif command == Command.URLPACK_RESPONSE:
        if len(payload) < 6:
            raise SalityDecodeError("urlpack response too short")


# -- payload helpers -----------------------------------------------------------


def encode_hello(listening_port: int) -> bytes:
    return listening_port.to_bytes(2, "big")


def decode_hello(payload: bytes) -> int:
    if len(payload) != 2:
        raise SalityDecodeError("bad hello payload")
    return int.from_bytes(payload, "big")


def encode_peer_entry(bot_id: int, endpoint: Endpoint) -> bytes:
    return bot_id.to_bytes(4, "big") + endpoint.ip.to_bytes(4, "big") + endpoint.port.to_bytes(2, "big")


def decode_peer_entry(payload: bytes) -> Optional[Tuple[int, Endpoint]]:
    """Parse a PEER_RESPONSE payload; None for an empty response."""
    if not payload:
        return None
    if len(payload) != PEER_ENTRY_LEN:
        raise SalityDecodeError("bad peer entry length")
    bot_id = int.from_bytes(payload[:4], "big")
    ip = int.from_bytes(payload[4:8], "big")
    port = int.from_bytes(payload[8:10], "big")
    if port == 0:
        raise SalityDecodeError("zero port in peer entry")
    return bot_id, Endpoint(ip, port)


def encode_urlpack(sequence: int, blob: bytes) -> bytes:
    return sequence.to_bytes(4, "big") + len(blob).to_bytes(2, "big") + blob


def decode_urlpack(payload: bytes) -> Tuple[int, bytes]:
    if len(payload) < 6:
        raise SalityDecodeError("bad urlpack payload")
    sequence = int.from_bytes(payload[:4], "big")
    length = int.from_bytes(payload[4:6], "big")
    blob = payload[6:]
    if len(blob) != length:
        raise SalityDecodeError("urlpack length mismatch")
    return sequence, blob
