"""Sality v3 bot behaviour.

A Sality bot:

* keeps a peer list of up to 1000 entries, one per IP, each carrying a
  **goodcount** reputation;
* every ~40 minutes contacts a few peers: announcing itself (HELLO),
  exchanging single peer entries (PEER_REQUEST), and trading URL packs
  -- the message mixture crawlers fail to reproduce (Section 4.1.4);
* answers a peer-exchange request with *one* entry: its highest-
  goodcount peer above the propagation threshold, so unproven nodes
  (freshly injected sensors) are not propagated (Section 3.1);
* sends each exchange from a fresh random source port when routable
  (fixed-port senders exhibit the Table 2 "port range" defect);
* keeps its random integer bot ID stable for the whole session.

Like Zeus bots, Sality bots remember peer-list requesters for the
distributed crawler detector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.botnets.base import BotNode, PeerEntry, PeerList
from repro.botnets.sality import protocol
from repro.botnets.sality.protocol import Command, SalityDecodeError, SalityMessage
from repro.net.transport import Endpoint, Message, Transport
from repro.sim.clock import MINUTE
from repro.sim.scheduler import Scheduler


@dataclass
class SalityConfig:
    """Protocol constants; defaults follow the paper."""

    peer_list_capacity: int = 1000
    cycle_interval: float = 40 * MINUTE
    contacts_per_cycle: int = 4
    announce_cycles: int = 2
    announce_fanout: int = 8
    urlpack_probability: float = 0.5
    goodcount_propagate_threshold: int = 2
    goodcount_evict_below: int = -3
    response_timeout: float = 60.0
    minor_version: int = protocol.CURRENT_MINOR_VERSION
    ephemeral_port_low: int = 10240
    ephemeral_port_high: int = 65535

    def __post_init__(self) -> None:
        if self.contacts_per_cycle < 1:
            raise ValueError("contacts_per_cycle must be >= 1")
        if not 0.0 <= self.urlpack_probability <= 1.0:
            raise ValueError("urlpack_probability must be in [0, 1]")


@dataclass(slots=True)
class _Pending:
    peer_key: bytes
    command: int
    sent_at: float
    reply_endpoint: Endpoint  # where we expect the reply (maybe ephemeral)


def _id_key(bot_id: int) -> bytes:
    return bot_id.to_bytes(4, "big")


class SalityBot(BotNode):
    """One emulated Sality v3 bot."""

    __slots__ = (
        "config",
        "int_id",
        "peer_list",
        "_pending",
        "_plr_history",
        "undecodable",
        "urlpack_sequence",
        "urlpack_blob",
        "_dispatch",
    )

    def __init__(
        self,
        node_id: str,
        bot_id: bytes,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        routable: bool = True,
        config: Optional[SalityConfig] = None,
    ) -> None:
        self.config = config if config is not None else SalityConfig()
        super().__init__(
            node_id=node_id,
            bot_id=bot_id,
            endpoint=endpoint,
            transport=transport,
            scheduler=scheduler,
            rng=rng,
            routable=routable,
            cycle_interval=self.config.cycle_interval,
        )
        if len(bot_id) != 4:
            raise ValueError("Sality bot ids are 4-byte random integers")
        self.int_id = int.from_bytes(bot_id, "big")
        self.peer_list = PeerList(
            capacity=self.config.peer_list_capacity, ip_filter_prefix=32
        )
        self._pending: Dict[int, _Pending] = {}
        self._plr_history: List[Tuple[float, int]] = []
        self.undecodable = 0
        self.urlpack_sequence = 1
        self.urlpack_blob = bytes([self.rng.getrandbits(8) for _ in range(32)])
        # Inbound dispatch keyed by raw wire byte; built once per bot so
        # handle_message avoids a dict literal + enum call per message.
        self._dispatch = {
            int(Command.HELLO): self._on_hello,
            int(Command.PEER_REQUEST): self._on_peer_request,
            int(Command.PEER_RESPONSE): self._on_peer_response,
            int(Command.URLPACK_REQUEST): self._on_urlpack_request,
            int(Command.URLPACK_RESPONSE): self._on_urlpack_response,
        }

    # -- bootstrap / detection hooks ----------------------------------------

    def seed_peers(self, peers: List[Tuple[bytes, Endpoint]]) -> None:
        now = self.scheduler.now
        for bot_id, endpoint in peers:
            if bot_id != self.bot_id:
                self.peer_list.add(
                    PeerEntry(bot_id=bot_id, endpoint=endpoint, last_seen=now, goodcount=self.config.goodcount_propagate_threshold)
                )

    def peer_list_requesters(self, since: float, until: Optional[float] = None) -> List[Tuple[float, int]]:
        """(time, ip) of peer-exchange requests received in [since, until)."""
        return [
            (time, ip)
            for time, ip in self._plr_history
            if time >= since and (until is None or time < until)
        ]

    # -- periodic behaviour ---------------------------------------------------

    def run_cycle(self) -> None:
        now = self.scheduler.now
        self._expire_pending(now)
        entries = self.peer_list.entries()
        if not entries:
            return
        if self.counters.cycles <= self.config.announce_cycles:
            # Joining bots actively announce until enough peers know them.
            fanout = min(self.config.announce_fanout, len(entries))
            for entry in self.rng.sample(entries, fanout):
                self._send_request(entry, Command.HELLO, protocol.encode_hello(self.endpoint.port))
        count = min(self.config.contacts_per_cycle, len(entries))
        for entry in self.rng.sample(entries, count):
            # One peer-exchange request per neighbor per cycle, with URL
            # pack exchanges interspersed, as real bots do.
            if self.rng.random() < self.config.urlpack_probability:
                payload = self.urlpack_sequence.to_bytes(4, "big")
                self._send_request(entry, Command.URLPACK_REQUEST, payload)
            else:
                self._send_request(entry, Command.PEER_REQUEST, b"")

    def _expire_pending(self, now: float) -> None:
        expired = [
            nonce
            for nonce, pending in self._pending.items()
            if now - pending.sent_at > self.config.response_timeout
        ]
        for nonce in expired:
            pending = self._pending.pop(nonce)
            self._penalize(pending.peer_key)
            self._release_ephemeral(pending.reply_endpoint)

    def _penalize(self, peer_key: bytes) -> None:
        entry = self.peer_list.get(peer_key)
        if entry is None:
            return
        entry.goodcount -= 1
        if entry.goodcount <= self.config.goodcount_evict_below:
            self.peer_list.remove(peer_key)

    def _credit(self, peer_key: bytes) -> None:
        entry = self.peer_list.get(peer_key)
        if entry is not None:
            entry.goodcount += 1
            entry.last_seen = self.scheduler.now
            entry.failures = 0

    # -- source-port randomization ------------------------------------------

    def _exchange_endpoint(self) -> Endpoint:
        """A fresh random source port for one exchange (routable bots).

        NATed bots keep their gateway-mapped endpoint: the NAT rewrites
        source ports anyway.
        """
        if not self.routable:
            return self.endpoint
        for _ in range(16):
            port = self.rng.randrange(
                self.config.ephemeral_port_low, self.config.ephemeral_port_high + 1
            )
            candidate = Endpoint(self.endpoint.ip, port)
            if not self.transport.is_bound(candidate):
                self.transport.bind(candidate, self._on_message, routable=self.routable)
                return candidate
        return self.endpoint  # port space exhausted; fall back

    def _release_ephemeral(self, endpoint: Endpoint) -> None:
        if endpoint != self.endpoint:
            self.transport.unbind(endpoint)

    def _send_request(self, entry: PeerEntry, command: int, payload: bytes) -> None:
        message = protocol.make_message(
            command=command,
            bot_id=self.int_id,
            rng=self.rng,
            payload=payload,
            minor_version=self.config.minor_version,
        )
        source = self._exchange_endpoint()
        self._pending[message.nonce] = _Pending(
            peer_key=entry.bot_id,
            command=command,
            sent_at=self.scheduler.now,
            reply_endpoint=source,
        )
        self.counters.messages_out += 1
        self.transport.send(source, entry.endpoint, protocol.encode_packet(message))

    # -- inbound ---------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        try:
            decoded = protocol.decode_packet(message.payload)
        except SalityDecodeError:
            self.undecodable += 1
            return
        handler = self._dispatch.get(decoded.command)
        if handler is not None:
            handler(decoded, message.src)

    def _reply(self, request: SalityMessage, src: Endpoint, command: int, payload: bytes) -> None:
        reply = protocol.make_message(
            command=command,
            bot_id=self.int_id,
            rng=self.rng,
            payload=payload,
            nonce=request.nonce,  # replies echo the nonce
            minor_version=self.config.minor_version,
        )
        self.counters.requests_served += 1
        self.send(src, protocol.encode_packet(reply))

    # requests ---------------------------------------------------------------

    def _on_hello(self, request: SalityMessage, src: Endpoint) -> None:
        peer_key = _id_key(request.bot_id)
        if request.nonce in self._pending:
            # Echo of our own announcement: credit the responder.
            pending = self._pending.pop(request.nonce)
            self._credit(pending.peer_key)
            self._release_ephemeral(pending.reply_endpoint)
            return
        advertised_port = protocol.decode_hello(request.payload)
        if peer_key != self.bot_id:
            self.peer_list.add(
                PeerEntry(
                    bot_id=peer_key,
                    endpoint=Endpoint(src.ip, advertised_port),
                    last_seen=self.scheduler.now,
                    goodcount=0,  # unproven until it answers our probes
                )
            )
        self._reply(request, src, Command.HELLO, protocol.encode_hello(self.endpoint.port))

    def _on_peer_request(self, request: SalityMessage, src: Endpoint) -> None:
        self._plr_history.append((self.scheduler.now, src.ip))
        candidates = [
            entry
            for entry in self.peer_list
            if entry.goodcount >= self.config.goodcount_propagate_threshold
            and entry.endpoint.ip != src.ip
            and entry.bot_id != _id_key(request.bot_id)
        ]
        if candidates:
            # One entry per response, chosen with goodcount-weighted
            # probability: well-reputed peers are named again and
            # again, poorly-known ones only surface across many
            # requests.  This reputation skew plus the single-entry
            # limit is why Sality crawlers must hammer each bot to
            # cover its peer list (Section 4.1.5).
            weights = [(1 + max(0, entry.goodcount)) ** 2 for entry in candidates]
            best = self.rng.choices(candidates, weights=weights, k=1)[0]
            payload = protocol.encode_peer_entry(int.from_bytes(best.bot_id, "big"), best.endpoint)
        else:
            payload = b""
        self._reply(request, src, Command.PEER_RESPONSE, payload)

    def _on_urlpack_request(self, request: SalityMessage, src: Endpoint) -> None:
        payload = protocol.encode_urlpack(self.urlpack_sequence, self.urlpack_blob)
        self._reply(request, src, Command.URLPACK_RESPONSE, payload)

    # replies -----------------------------------------------------------------

    def _match_pending(self, reply: SalityMessage, expected: int) -> Optional[_Pending]:
        pending = self._pending.get(reply.nonce)
        if pending is None or pending.command != expected:
            return None
        del self._pending[reply.nonce]
        self._credit(pending.peer_key)
        self._release_ephemeral(pending.reply_endpoint)
        return pending

    def _on_peer_response(self, reply: SalityMessage, src: Endpoint) -> None:
        if self._match_pending(reply, Command.PEER_REQUEST) is None:
            return
        try:
            entry = protocol.decode_peer_entry(reply.payload)
        except SalityDecodeError:
            return
        if entry is None:
            return
        peer_id, endpoint = entry
        peer_key = _id_key(peer_id)
        if peer_key != self.bot_id:
            self.peer_list.add(
                PeerEntry(bot_id=peer_key, endpoint=endpoint, last_seen=self.scheduler.now, goodcount=0)
            )

    def _on_urlpack_response(self, reply: SalityMessage, src: Endpoint) -> None:
        if self._match_pending(reply, Command.URLPACK_REQUEST) is None:
            return
        try:
            sequence, blob = protocol.decode_urlpack(reply.payload)
        except SalityDecodeError:
            return
        if sequence > self.urlpack_sequence:
            self.urlpack_sequence = sequence
            self.urlpack_blob = blob

    def stop(self) -> None:
        """Going offline releases every ephemeral exchange port."""
        for pending in self._pending.values():
            self._release_ephemeral(pending.reply_endpoint)
        self._pending.clear()
        super().stop()
