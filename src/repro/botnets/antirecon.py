"""Active anti-recon attacks (paper Section 3).

Four categories: *deterrence* lives inside the protocol emulations
(peer-list filters, reputation, info limiting); this module implements
the other three as composable attack components:

* **Blacklisting** (Section 3.2) -- :class:`StaticBlacklist` models the
  hardcoded IP lists shipped with bot binaries; :class:`AutoBlacklister`
  models Zeus's frequency-based automatic blocking of hard hitters.
* **Disinformation** (Section 3.3) -- :class:`DisinformationPolicy`
  pollutes peer-list responses with junk (reserved/unused) addresses or
  diverts requesters into a *shadow botnet* of isolated responders.
* **Retaliation** (Section 3.4) -- :class:`RetaliationTracker` records
  DDoS-style retaliation events against identified recon hosts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import Subnet, format_ip
from repro.net.transport import Endpoint


class StaticBlacklist:
    """A hardcoded blacklist of recon IPs, updateable by the botmaster.

    Paper Section 3.2: "Each bot binary is shipped and periodically
    updated with a hardcoded blacklist of IPs which the botmasters
    identified on the network due to anomalous behavior."  Because such
    lists are embedded in binaries, they are effectively public --
    :attr:`entries` is deliberately readable.
    """

    def __init__(self, entries: Optional[Set[int]] = None) -> None:
        self.entries: Set[int] = set(entries or ())
        self.hits = 0

    def add(self, ip: int) -> None:
        self.entries.add(ip)

    def update(self, ips: Set[int]) -> None:
        """A pushed blacklist update (ships with binary updates)."""
        self.entries |= ips

    def is_blocked(self, ip: int) -> bool:
        if ip in self.entries:
            self.hits += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self.entries)


class AutoBlacklister:
    """Frequency-based automatic blacklisting (GameOver Zeus style).

    Each bot tracks per-IP request times and permanently blocks IPs
    exceeding ``max_requests`` within a sliding ``window``.  The
    threshold is deliberately lenient -- high enough that several NATed
    bots sharing one IP stay under it -- so only genuinely hard-hitting
    crawlers trip it (Section 3.2).
    """

    #: Sweep stale source IPs once the tracking dict reaches this size
    #: (then 2x the surviving size).  Small because the tracker is
    #: per-bot: thousands of instances, each seeing tens of sources.
    SWEEP_MIN = 64

    def __init__(self, window: float = 60.0, max_requests: int = 6) -> None:
        if window <= 0 or max_requests < 1:
            raise ValueError("window and max_requests must be positive")
        self.window = window
        self.max_requests = max_requests
        self.blocked: Set[int] = set()
        # Request times are short lists (at most max_requests + 1 after
        # the in-window prune), not deques: an idle deque alone costs
        # ~0.6 KB and these dicts exist once per bot.
        self._recent: Dict[int, List[float]] = {}
        self._sweep_at = self.SWEEP_MIN

    def record(self, ip: int, now: float) -> bool:
        """Record a request from ``ip``; returns True if ``ip`` is
        (now or already) blocked."""
        if ip in self.blocked:
            return True
        recent = self._recent
        times = recent.get(ip)
        cutoff = now - self.window
        if times is None:
            times = [now]
            recent[ip] = times
            if len(recent) >= self._sweep_at:
                # Reclaim IPs whose whole history has aged out of the
                # window; their next request recreates them, so the
                # sweep cannot change any blocking decision.
                stale = [key for key, hist in recent.items() if hist[-1] < cutoff]
                for key in stale:
                    del recent[key]
                self._sweep_at = max(self.SWEEP_MIN, 2 * len(recent))
        else:
            times.append(now)
            drop = 0
            for t in times:
                if t >= cutoff:
                    break
                drop += 1
            if drop:
                del times[:drop]
        if len(times) > self.max_requests:
            self.blocked.add(ip)
            del recent[ip]
            return True
        return False

    def is_blocked(self, ip: int) -> bool:
        return ip in self.blocked


@dataclass
class ShadowNode:
    """A member of a disinformation shadow botnet: responsive but
    isolated from the real population."""

    bot_id: bytes
    endpoint: Endpoint


class DisinformationPolicy:
    """Peer-list pollution (paper Section 3.3).

    ``junk_ratio`` of the entries in each poisoned response are forged:
    either junk addresses from reserved/unused space, or shadow-botnet
    nodes that answer probes yet connect to nothing real.  Crawlers
    cannot verify non-routable addresses, so junk aimed at them is
    cheap; shadow nodes are the escalation that also defeats
    verification by sensors.
    """

    def __init__(
        self,
        rng: random.Random,
        junk_ratio: float = 0.3,
        junk_space: Optional[Subnet] = None,
        shadow_nodes: Optional[List[ShadowNode]] = None,
    ) -> None:
        if not 0.0 <= junk_ratio <= 1.0:
            raise ValueError("junk_ratio must be in [0, 1]")
        self.rng = rng
        self.junk_ratio = junk_ratio
        # Default junk space: an unused (TEST-NET-3) block.
        self.junk_space = junk_space if junk_space is not None else Subnet.parse("203.0.113.0/24")
        self.shadow_nodes = list(shadow_nodes or ())
        self.forged_entries = 0

    def forge_entry(self, id_length: int = 20) -> Tuple[bytes, Endpoint]:
        """One spurious peer-list entry."""
        self.forged_entries += 1
        if self.shadow_nodes and self.rng.random() < 0.5:
            node = self.rng.choice(self.shadow_nodes)
            return (node.bot_id, node.endpoint)
        bot_id = bytes(self.rng.getrandbits(8) for _ in range(id_length))
        ip = self.junk_space.random_ip(self.rng)
        port = self.rng.randrange(1024, 65535)
        return (bot_id, Endpoint(ip, port))

    def pollute(
        self, entries: List[Tuple[bytes, Endpoint]], id_length: int = 20
    ) -> List[Tuple[bytes, Endpoint]]:
        """Replace ``junk_ratio`` of ``entries`` with forged ones."""
        if not entries:
            return entries
        polluted = list(entries)
        forgeries = max(1, int(len(polluted) * self.junk_ratio)) if self.junk_ratio > 0 else 0
        for index in self.rng.sample(range(len(polluted)), min(forgeries, len(polluted))):
            polluted[index] = self.forge_entry(id_length)
        return polluted


@dataclass(frozen=True)
class RetaliationEvent:
    """One retaliation action against an identified recon host."""

    time: float
    target_ip: int
    kind: str  # "ddos" | "infiltration"
    magnitude: float  # e.g. attack Gbps, or 0 for infiltration attempts

    def describe(self) -> str:
        return f"[{self.time:10.1f}] {self.kind} vs {format_ip(self.target_ip)} ({self.magnitude:g})"


class RetaliationTracker:
    """Botmaster-side retaliation ledger (paper Section 3.4).

    When the detection pipeline (or a human botmaster) flags recon
    hosts, this component issues retaliation events against them --
    matching the observed DDoS responses to the Zeus and Storm
    sinkholing attempts.  Recon nodes consult :meth:`under_attack` to
    model their degraded availability.
    """

    def __init__(self, attack_duration: float = 3600.0) -> None:
        self.attack_duration = attack_duration
        self.events: List[RetaliationEvent] = []

    def launch(self, time: float, target_ip: int, kind: str = "ddos", magnitude: float = 10.0) -> RetaliationEvent:
        if kind not in ("ddos", "infiltration"):
            raise ValueError(f"unknown retaliation kind: {kind}")
        event = RetaliationEvent(time=time, target_ip=target_ip, kind=kind, magnitude=magnitude)
        self.events.append(event)
        return event

    def under_attack(self, ip: int, now: float) -> bool:
        return any(
            event.target_ip == ip and event.time <= now < event.time + self.attack_duration
            for event in self.events
        )

    def targets(self) -> Set[int]:
        return {event.target_ip for event in self.events}
