"""Generic P2P bot machinery shared by every emulated family.

Every P2P botnet in the paper's corpus maintains, per bot, a *peer
list* of (bot id, address) entries, refreshed through periodic peer
list exchanges, with unresponsive peers evicted.  The family-specific
subclasses (:mod:`repro.botnets.zeus`, :mod:`repro.botnets.sality`)
supply wire formats, peer-selection metrics, cycle timing, and
anti-recon behaviour on top of this base.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.net.address import subnet_key
from repro.net.transport import Endpoint, Message, Transport
from repro.sim.scheduler import Scheduler, Timer


@dataclass(slots=True)
class PeerEntry:
    """One peer-list entry: protocol identity plus network address."""

    bot_id: bytes
    endpoint: Endpoint
    last_seen: float = 0.0
    failures: int = 0
    goodcount: int = 0  # Sality reputation; unused by other families


class PeerList:
    """Capacity-bounded peer list with an optional per-subnet IP filter.

    ``ip_filter_prefix`` implements the deterrence measures of paper
    Table 1: 32 keeps at most one entry per IP (Sality, ZeroAccess,
    Hlux, Waledac), 20 keeps one per /20 subnet (GameOver Zeus), and
    ``None`` disables the filter (Storm).
    """

    def __init__(self, capacity: int, ip_filter_prefix: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ip_filter_prefix is not None and not 0 < ip_filter_prefix <= 32:
            raise ValueError(f"bad ip_filter_prefix: {ip_filter_prefix}")
        self.capacity = capacity
        self.ip_filter_prefix = ip_filter_prefix
        self._entries: Dict[bytes, PeerEntry] = {}
        # Subnet-occupancy index for O(1) filter checks.  add() keeps
        # at most one entry per subnet, so a plain dict suffices.
        self._subnets: Optional[Dict[int, PeerEntry]] = (
            {} if ip_filter_prefix is not None else None
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bot_id: bytes) -> bool:
        return bot_id in self._entries

    def __iter__(self) -> Iterator[PeerEntry]:
        return iter(list(self._entries.values()))

    def get(self, bot_id: bytes) -> Optional[PeerEntry]:
        return self._entries.get(bot_id)

    def entries(self) -> List[PeerEntry]:
        return list(self._entries.values())

    def ids(self) -> Set[bytes]:
        return set(self._entries)

    def ips(self) -> Set[int]:
        return {entry.endpoint.ip for entry in self._entries.values()}

    def maintenance_view(self) -> List[Tuple[bytes, Endpoint, int]]:
        """(bot_id, endpoint, failures) tuples sorted by last_seen.

        The shape bot maintenance cycles consume: a stable sort over
        insertion order, snapshotted as plain tuples so the slab
        backend can produce the identical view without materializing
        entry objects.
        """
        ordered = sorted(self._entries.values(), key=lambda e: e.last_seen)
        return [(e.bot_id, e.endpoint, e.failures) for e in ordered]

    def closest(self, lookup_key: bytes, exclude_id: bytes, limit: int) -> List[Tuple[bytes, Endpoint]]:
        """The ``limit`` (bot_id, endpoint) pairs XOR-closest to
        ``lookup_key``, excluding ``exclude_id`` (the requester).

        Selection semantics are exactly
        :func:`repro.botnets.zeus.protocol.select_closest` over this
        list's entries; the slab backend overrides this with a
        column-level implementation."""
        key_int = int.from_bytes(lookup_key, "big")
        from_bytes = int.from_bytes
        pairs = [
            (entry.bot_id, entry.endpoint)
            for entry in self._entries.values()
            if entry.bot_id != exclude_id
        ]
        pairs.sort(key=lambda item: key_int ^ from_bytes(item[0], "big"))
        return pairs[:limit]

    def _subnet_conflict(self, candidate: PeerEntry) -> Optional[PeerEntry]:
        if self._subnets is None:
            return None
        occupant = self._subnets.get(
            subnet_key(candidate.endpoint.ip, self.ip_filter_prefix)
        )
        if occupant is None or occupant.bot_id == candidate.bot_id:
            return None
        return occupant

    def _index_add(self, entry: PeerEntry) -> None:
        if self._subnets is not None:
            self._subnets[subnet_key(entry.endpoint.ip, self.ip_filter_prefix)] = entry

    def _index_drop(self, entry: PeerEntry) -> None:
        if self._subnets is not None:
            self._subnets.pop(subnet_key(entry.endpoint.ip, self.ip_filter_prefix), None)

    def add(self, entry: PeerEntry) -> bool:
        """Insert or refresh ``entry``.

        Returns True if the entry is present afterwards.  Rules, in
        order: an existing entry with the same bot id is refreshed
        in-place (address updates follow IP churn); the subnet filter
        rejects a *different* bot in an occupied subnet; at capacity the
        stalest entry is evicted iff the newcomer is fresher.
        """
        existing = self._entries.get(entry.bot_id)
        if existing is not None:
            # An address update must still respect the subnet filter:
            # moving into an occupied subnet is rejected (the entry
            # stays alive at its old address).
            if existing.endpoint != entry.endpoint:
                if self._subnet_conflict(entry) is not None:
                    existing.last_seen = max(existing.last_seen, entry.last_seen)
                    return True
                self._index_drop(existing)
                existing.endpoint = entry.endpoint
                self._index_add(existing)
            else:
                existing.endpoint = entry.endpoint
            existing.last_seen = max(existing.last_seen, entry.last_seen)
            return True
        if self._subnet_conflict(entry) is not None:
            return False
        if len(self._entries) >= self.capacity:
            stalest = min(self._entries.values(), key=lambda e: e.last_seen)
            if stalest.last_seen >= entry.last_seen:
                return False
            del self._entries[stalest.bot_id]
            self._index_drop(stalest)
        self._entries[entry.bot_id] = entry
        self._index_add(entry)
        return True

    def remove(self, bot_id: bytes) -> bool:
        entry = self._entries.pop(bot_id, None)
        if entry is None:
            return False
        self._index_drop(entry)
        return True

    def touch(self, bot_id: bytes, now: float) -> None:
        """Mark a peer responsive: refresh last_seen, clear failures."""
        entry = self._entries.get(bot_id)
        if entry is not None:
            entry.last_seen = now
            entry.failures = 0

    def record_failure(self, bot_id: bytes, evict_after: int) -> bool:
        """Count an unanswered probe; evict after ``evict_after`` misses.

        Returns True if the peer was evicted.  This is the eviction
        mechanism that forces sensors to implement enough protocol to
        keep answering probes (Section 2.2).
        """
        entry = self._entries.get(bot_id)
        if entry is None:
            return False
        entry.failures += 1
        if entry.failures >= evict_after:
            del self._entries[bot_id]
            self._index_drop(entry)
            return True
        return False


@dataclass(slots=True)
class BotCounters:
    """Per-bot traffic counters used by tests and coverage metrics."""

    messages_in: int = 0
    messages_out: int = 0
    requests_served: int = 0
    cycles: int = 0


class BotNode:
    """Base class for protocol bots, sensors, and crawler endpoints.

    Subclasses implement :meth:`handle_message` (inbound dispatch) and
    :meth:`run_cycle` (the periodic active behaviour between suspend
    periods).  The base class owns binding, the cycle timer, and
    counters.

    Hot classes are slotted; subclasses that need ad-hoc attributes
    (sensors, crawlers, test spies) simply omit ``__slots__`` and get a
    normal instance dict on top.
    """

    __slots__ = (
        "node_id",
        "bot_id",
        "endpoint",
        "transport",
        "scheduler",
        "rng",
        "routable",
        "cycle_interval",
        "cycle_jitter",
        "counters",
        "gossip_suppressed",
        "_cycle_timer",
        "_online",
        "_state",
        "_index",
    )

    def __init__(
        self,
        node_id: str,
        bot_id: bytes,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        routable: bool = True,
        cycle_interval: float = 1800.0,
        cycle_jitter: float = 0.1,
    ) -> None:
        self.node_id = node_id
        self.bot_id = bot_id
        self.endpoint = endpoint
        self.transport = transport
        self.scheduler = scheduler
        self.rng = rng
        self.routable = routable
        self.cycle_interval = cycle_interval
        self.cycle_jitter = cycle_jitter
        self.counters = BotCounters()
        self._online = False
        self._state = None  # PopulationState, when adopted (SoA backend)
        self._index = -1
        # Gossip suppression (the "mute" node fault): the node stays
        # bound and keeps answering, but its periodic active behaviour
        # is skipped -- a leader that silently stops participating.
        self.gossip_suppressed = False
        self._cycle_timer: Optional[Timer] = None

    # -- population state -------------------------------------------------

    @property
    def online(self) -> bool:
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        self._online = value
        state = self._state
        if state is not None:
            state.online[self._index] = 1 if value else 0

    def attach_state(self, state, index: int) -> None:
        """Bind this bot to a :class:`~repro.botnets.state.PopulationState`
        slot; the state's online column mirrors this bot from then on."""
        self._state = state
        self._index = index
        state.online[index] = 1 if self._online else 0

    # -- lifecycle -------------------------------------------------------

    def start(self, first_cycle_delay: Optional[float] = None) -> None:
        """Bind the endpoint and begin the suspend/request cycle."""
        if self.online:
            return
        self.transport.bind(self.endpoint, self._on_message, routable=self.routable)
        self.online = True
        if first_cycle_delay is None:
            # Stagger initial cycles uniformly so the population does
            # not fire in lock-step.
            first_cycle_delay = self.rng.uniform(0, self.cycle_interval)
        self._cycle_timer = self.scheduler.call_every(first_cycle_delay, self._cycle)

    def stop(self) -> None:
        if not self.online:
            return
        self.online = False
        self.transport.unbind(self.endpoint)
        if self._cycle_timer is not None:
            self._cycle_timer.cancel()
            self._cycle_timer = None

    def rebind(self, new_endpoint: Endpoint) -> None:
        """Move to a new address (IP churn) without losing state."""
        if self.online:
            self.transport.rebind(self.endpoint, new_endpoint)
        self.endpoint = new_endpoint

    # -- messaging --------------------------------------------------------

    def send(self, dst: Endpoint, payload: bytes) -> bool:
        self.counters.messages_out += 1
        return self.transport.send(self.endpoint, dst, payload)

    def _on_message(self, message: Message) -> None:
        self.counters.messages_in += 1
        self.handle_message(message)

    def handle_message(self, message: Message) -> None:
        raise NotImplementedError

    # -- periodic behaviour -------------------------------------------------

    def _cycle(self) -> Optional[float]:
        """One repeating-timer occurrence; returns the next delay.

        Scheduled via :meth:`Scheduler.call_every`, so one Timer handle
        covers the bot's whole lifetime instead of a fresh closure per
        cycle.  Going offline ends the cycle by returning None.
        """
        if not self.online:
            return None
        if not self.gossip_suppressed:
            self.counters.cycles += 1
            self.run_cycle()
        jitter = self.rng.uniform(1 - self.cycle_jitter, 1 + self.cycle_jitter)
        return self.cycle_interval * jitter

    def run_cycle(self) -> None:
        raise NotImplementedError
