"""Generic P2P bot machinery shared by every emulated family.

Every P2P botnet in the paper's corpus maintains, per bot, a *peer
list* of (bot id, address) entries, refreshed through periodic peer
list exchanges, with unresponsive peers evicted.  The family-specific
subclasses (:mod:`repro.botnets.zeus`, :mod:`repro.botnets.sality`)
supply wire formats, peer-selection metrics, cycle timing, and
anti-recon behaviour on top of this base.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.net.address import subnet_key
from repro.net.transport import Endpoint, Message, Transport
from repro.sim.scheduler import Scheduler, Timer


@dataclass
class PeerEntry:
    """One peer-list entry: protocol identity plus network address."""

    bot_id: bytes
    endpoint: Endpoint
    last_seen: float = 0.0
    failures: int = 0
    goodcount: int = 0  # Sality reputation; unused by other families


class PeerList:
    """Capacity-bounded peer list with an optional per-subnet IP filter.

    ``ip_filter_prefix`` implements the deterrence measures of paper
    Table 1: 32 keeps at most one entry per IP (Sality, ZeroAccess,
    Hlux, Waledac), 20 keeps one per /20 subnet (GameOver Zeus), and
    ``None`` disables the filter (Storm).
    """

    def __init__(self, capacity: int, ip_filter_prefix: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ip_filter_prefix is not None and not 0 < ip_filter_prefix <= 32:
            raise ValueError(f"bad ip_filter_prefix: {ip_filter_prefix}")
        self.capacity = capacity
        self.ip_filter_prefix = ip_filter_prefix
        self._entries: Dict[bytes, PeerEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bot_id: bytes) -> bool:
        return bot_id in self._entries

    def __iter__(self) -> Iterator[PeerEntry]:
        return iter(list(self._entries.values()))

    def get(self, bot_id: bytes) -> Optional[PeerEntry]:
        return self._entries.get(bot_id)

    def entries(self) -> List[PeerEntry]:
        return list(self._entries.values())

    def ids(self) -> Set[bytes]:
        return set(self._entries)

    def ips(self) -> Set[int]:
        return {entry.endpoint.ip for entry in self._entries.values()}

    def _subnet_conflict(self, candidate: PeerEntry) -> Optional[PeerEntry]:
        if self.ip_filter_prefix is None:
            return None
        key = subnet_key(candidate.endpoint.ip, self.ip_filter_prefix)
        for entry in self._entries.values():
            if entry.bot_id == candidate.bot_id:
                continue
            if subnet_key(entry.endpoint.ip, self.ip_filter_prefix) == key:
                return entry
        return None

    def add(self, entry: PeerEntry) -> bool:
        """Insert or refresh ``entry``.

        Returns True if the entry is present afterwards.  Rules, in
        order: an existing entry with the same bot id is refreshed
        in-place (address updates follow IP churn); the subnet filter
        rejects a *different* bot in an occupied subnet; at capacity the
        stalest entry is evicted iff the newcomer is fresher.
        """
        existing = self._entries.get(entry.bot_id)
        if existing is not None:
            # An address update must still respect the subnet filter:
            # moving into an occupied subnet is rejected (the entry
            # stays alive at its old address).
            if existing.endpoint != entry.endpoint and self._subnet_conflict(entry) is not None:
                existing.last_seen = max(existing.last_seen, entry.last_seen)
                return True
            existing.endpoint = entry.endpoint
            existing.last_seen = max(existing.last_seen, entry.last_seen)
            return True
        if self._subnet_conflict(entry) is not None:
            return False
        if len(self._entries) >= self.capacity:
            stalest = min(self._entries.values(), key=lambda e: e.last_seen)
            if stalest.last_seen >= entry.last_seen:
                return False
            del self._entries[stalest.bot_id]
        self._entries[entry.bot_id] = entry
        return True

    def remove(self, bot_id: bytes) -> bool:
        return self._entries.pop(bot_id, None) is not None

    def touch(self, bot_id: bytes, now: float) -> None:
        """Mark a peer responsive: refresh last_seen, clear failures."""
        entry = self._entries.get(bot_id)
        if entry is not None:
            entry.last_seen = now
            entry.failures = 0

    def record_failure(self, bot_id: bytes, evict_after: int) -> bool:
        """Count an unanswered probe; evict after ``evict_after`` misses.

        Returns True if the peer was evicted.  This is the eviction
        mechanism that forces sensors to implement enough protocol to
        keep answering probes (Section 2.2).
        """
        entry = self._entries.get(bot_id)
        if entry is None:
            return False
        entry.failures += 1
        if entry.failures >= evict_after:
            del self._entries[bot_id]
            return True
        return False


@dataclass
class BotCounters:
    """Per-bot traffic counters used by tests and coverage metrics."""

    messages_in: int = 0
    messages_out: int = 0
    requests_served: int = 0
    cycles: int = 0


class BotNode:
    """Base class for protocol bots, sensors, and crawler endpoints.

    Subclasses implement :meth:`handle_message` (inbound dispatch) and
    :meth:`run_cycle` (the periodic active behaviour between suspend
    periods).  The base class owns binding, the cycle timer, and
    counters.
    """

    def __init__(
        self,
        node_id: str,
        bot_id: bytes,
        endpoint: Endpoint,
        transport: Transport,
        scheduler: Scheduler,
        rng: random.Random,
        routable: bool = True,
        cycle_interval: float = 1800.0,
        cycle_jitter: float = 0.1,
    ) -> None:
        self.node_id = node_id
        self.bot_id = bot_id
        self.endpoint = endpoint
        self.transport = transport
        self.scheduler = scheduler
        self.rng = rng
        self.routable = routable
        self.cycle_interval = cycle_interval
        self.cycle_jitter = cycle_jitter
        self.counters = BotCounters()
        self.online = False
        # Gossip suppression (the "mute" node fault): the node stays
        # bound and keeps answering, but its periodic active behaviour
        # is skipped -- a leader that silently stops participating.
        self.gossip_suppressed = False
        self._cycle_timer: Optional[Timer] = None

    # -- lifecycle -------------------------------------------------------

    def start(self, first_cycle_delay: Optional[float] = None) -> None:
        """Bind the endpoint and begin the suspend/request cycle."""
        if self.online:
            return
        self.transport.bind(self.endpoint, self._on_message, routable=self.routable)
        self.online = True
        if first_cycle_delay is None:
            # Stagger initial cycles uniformly so the population does
            # not fire in lock-step.
            first_cycle_delay = self.rng.uniform(0, self.cycle_interval)
        self._cycle_timer = self.scheduler.call_later(first_cycle_delay, self._cycle)

    def stop(self) -> None:
        if not self.online:
            return
        self.online = False
        self.transport.unbind(self.endpoint)
        if self._cycle_timer is not None:
            self._cycle_timer.cancel()
            self._cycle_timer = None

    def rebind(self, new_endpoint: Endpoint) -> None:
        """Move to a new address (IP churn) without losing state."""
        if self.online:
            self.transport.rebind(self.endpoint, new_endpoint)
        self.endpoint = new_endpoint

    # -- messaging --------------------------------------------------------

    def send(self, dst: Endpoint, payload: bytes) -> bool:
        self.counters.messages_out += 1
        return self.transport.send(self.endpoint, dst, payload)

    def _on_message(self, message: Message) -> None:
        self.counters.messages_in += 1
        self.handle_message(message)

    def handle_message(self, message: Message) -> None:
        raise NotImplementedError

    # -- periodic behaviour -------------------------------------------------

    def _cycle(self) -> None:
        if not self.online:
            return
        if not self.gossip_suppressed:
            self.counters.cycles += 1
            self.run_cycle()
        jitter = self.rng.uniform(1 - self.cycle_jitter, 1 + self.cycle_jitter)
        self._cycle_timer = self.scheduler.call_later(
            self.cycle_interval * jitter, self._cycle
        )

    def run_cycle(self) -> None:
        raise NotImplementedError
