"""Perf bench harness over the canonical workloads.

Deliberately *not* named ``test_*.py`` so the tier-1 suite never times
workloads by accident; run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -q
    PYTHONPATH=src python benchmarks/bench_perf.py            # standalone

Both paths run ``repro bench --quick`` semantics (fixed seeds, quick
simulated horizons) and, when ``benchmarks/BENCH_recon.json`` exists,
gate against it at the default threshold.  ``repro bench`` is the CLI
face of the same machinery; see :mod:`repro.bench`.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:  # allow running without PYTHONPATH=src
    sys.path.insert(0, _SRC)

from repro.bench import (  # noqa: E402
    BENCH_SCHEMA,
    DEFAULT_THRESHOLD,
    WORKLOADS,
    compare_bench,
    load_bench,
    render_bench,
    run_bench,
    run_workload,
)

BASELINE = os.path.join(_HERE, "BENCH_recon.json")


def _check_workload(name: str) -> None:
    entry = run_workload(name, quick=True)
    assert entry["events"] > 0, f"{name}: produced no trace events"
    assert entry["wall_s"] > 0, f"{name}: zero wall time"
    assert entry["events_per_s"] > 0
    assert entry["peak_rss_kb"] > 0


def test_bench_crawl() -> None:
    _check_workload("crawl")


def test_bench_detect() -> None:
    _check_workload("detect")


def test_bench_sweep() -> None:
    _check_workload("sweep")


def test_bench_against_baseline() -> None:
    """Full quick bench; gates on the checked-in baseline when present."""
    doc = run_bench(quick=True)
    assert doc["schema"] == BENCH_SCHEMA
    assert set(doc["workloads"]) == set(WORKLOADS)
    if not os.path.exists(BASELINE):
        return
    lines, regressions = compare_bench(
        doc, load_bench(BASELINE), threshold=DEFAULT_THRESHOLD
    )
    print("\n".join(lines))
    assert not regressions, f"workloads regressed past threshold: {regressions}"


def main() -> int:
    doc = run_bench(quick=True)
    print(render_bench(doc))
    if os.path.exists(BASELINE):
        lines, regressions = compare_bench(doc, load_bench(BASELINE))
        print(f"baseline compare vs {BASELINE}:")
        for line in lines:
            print(f"  {line}")
        if regressions:
            print(f"FAIL: regressions: {', '.join(regressions)}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
