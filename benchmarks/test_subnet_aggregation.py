"""Section 6.1.2: crawler detection with subnet aggregation.

An address-distributed crawler (32 sources inside one /20, each under
the per-IP threshold) runs inside the flagship capture.  The detector
is swept over aggregation prefixes /32 -> /19:

* /32 (per-IP): the distributed crawler evades;
* /24 and /20: its sources fold into one key and it is caught, with
  no organic false positives;
* /19: legitimate multi-infection neighborhoods merge and false
  positives appear (the paper saw 110).

Threshold note: subnet keys accumulate the traffic of every infection
they contain, and our sensor density is far above the live network's
(EXPERIMENTS.md), so the aggregated sweep runs at t=25% where per-IP
detection used 10%.
"""

import random

from repro.core.detection import DetectionConfig, evaluate_detection
from repro.net.address import subnet_key

PREFIXES = (32, 24, 20, 19)
THRESHOLD = 0.25


def test_subnet_aggregation_sweep(benchmark, zeus_flagship, exhibit_writer):
    dataset = zeus_flagship.dataset
    distributed = zeus_flagship.distributed_ips
    all_crawlers = zeus_flagship.all_crawler_ips

    def sweep():
        results = {}
        for prefix in PREFIXES:
            config = DetectionConfig(
                group_bits=3, threshold=THRESHOLD, aggregation_prefix=prefix
            )
            results[prefix] = evaluate_detection(
                dataset, all_crawlers, config, random.Random(1)
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def distributed_caught(prefix):
        return len(results[prefix].detected_crawlers & distributed) / len(distributed)

    def organic_fps(prefix):
        crawler_keys = {subnet_key(ip, prefix) for ip in all_crawlers}
        return {
            key
            for key in results[prefix].false_positive_keys
            if key not in crawler_keys
        }

    lines = ["Section 6.1.2: Address distribution vs subnet aggregation", ""]
    lines.append(f"{'prefix':>8}{'distributed crawler':>22}{'organic FPs':>14}")
    for prefix in PREFIXES:
        rate = distributed_caught(prefix)
        caught = "DETECTED" if rate > 0.9 else ("partial" if rate > 0 else "evaded")
        lines.append(f"{'/' + str(prefix):>8}{caught:>22}{len(organic_fps(prefix)):>14}")
    exhibit_writer("subnet_aggregation", "\n".join(lines))

    # Per-IP detection: every distributed source stays under threshold.
    assert distributed_caught(32) == 0.0
    # /24 and /20 aggregation concentrate the sources into one key.
    assert distributed_caught(24) == 1.0
    assert distributed_caught(20) == 1.0
    # /20 stays (essentially) clean; /19 merges legitimate
    # multi-infection subnets and produces false positives
    # (paper: 0 at /20, 110 at /19).
    assert len(organic_fps(20)) <= 5
    assert len(organic_fps(19)) >= len(organic_fps(20)) + 10

    # Verify the paper's stated cause: each /19 false positive really
    # folds several distinct infected source IPs together ("caused by
    # multiple infections within the same subnet").
    sources_by_key = {}
    for participant in dataset.participants:
        for _, ip in participant.requests:
            if ip in all_crawlers:
                continue
            sources_by_key.setdefault(subnet_key(ip, 19), set()).add(ip)
    multi_infection = [
        key for key in organic_fps(19) if len(sources_by_key.get(key, ())) >= 2
    ]
    assert len(multi_infection) >= 0.8 * len(organic_fps(19))
