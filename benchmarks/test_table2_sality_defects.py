"""Table 2: defects found in Sality crawlers.

Replays the 11 in-the-wild Sality crawler instances (6 sharing one
subnet, collapsed into column c1, as in the paper) against a 64-sensor
Sality capture, then recovers the defect matrix with the anomaly
analyzers.  The paper's aggregate counts must be recovered from the
wire, not read from the profiles.
"""

from repro.analysis.tables import render_table2
from repro.core.anomaly import SalityAnomalyAnalyzer
from repro.net.address import subnet_key
from repro.workloads.crawler_profiles import SALITY_CRAWLERS


def test_table2_sality_defect_matrix(benchmark, sality_measurement, exhibit_writer):
    scenario = sality_measurement.scenario

    def analyze():
        return SalityAnomalyAnalyzer().analyze(scenario.sensors)

    findings = benchmark(analyze)
    by_ip = {finding.ip: finding for finding in findings}

    # Group crawler instances into Table 2 columns by /24 (the paper
    # collapsed the 6 same-subnet instances into one column).
    columns = []
    seen_subnets = set()
    for crawler in scenario.crawlers:
        key = subnet_key(crawler.endpoint.ip, 24)
        if key in seen_subnets:
            continue
        seen_subnets.add(key)
        columns.append((crawler.profile, crawler.endpoint.ip))
    assert len(columns) == 6  # 11 instances -> 6 columns

    column_findings = []
    names = []
    for index, (profile, ip) in enumerate(columns):
        assert ip in by_ip, f"column c{index + 1} never reached the sensors"
        column_findings.append(by_ip[ip])
        names.append(f"c{index + 1}")

    text = render_table2(column_findings, names)
    exhibit_writer("table2_sality_defects", text)

    # Wire-recovered defects must match each injected profile.
    for (profile, _), finding in zip(columns, column_findings):
        for defect in ("lop_range", "port_range", "hard_hitter", "version"):
            injected = getattr(profile, defect)
            recovered = finding.has(defect)
            assert recovered == injected, (
                f"{profile.name}: {defect} injected={injected} recovered={recovered}"
            )
        # No Sality crawler shows identifier or encryption anomalies
        # (Sections 4.1.2, 4.1.3).
        assert not finding.has("random_id")
        assert not finding.has("encryption")

    # All columns are hard hitters; coverage is substantial for every
    # column, and the grouped same-subnet column (c1, per-instance
    # contact fraction 0.69) trails the full-coverage columns -- the
    # paper's 69%-vs-100% coverage row, relatively.
    assert all(f.has("hard_hitter") for f in column_findings)
    assert all(f.coverage >= 0.35 for f in column_findings)
    assert column_findings[0].coverage < min(f.coverage for f in column_findings[1:])


def test_sality_normal_bots_stay_clean(sality_measurement):
    """No legitimate bot may show crawler defects in the same capture."""
    scenario = sality_measurement.scenario
    findings = SalityAnomalyAnalyzer().analyze(scenario.sensors)
    crawler_ips = scenario.crawler_ips
    sensor_ips = {sensor.endpoint.ip for sensor in scenario.sensors}
    false_flags = [
        f for f in findings
        if f.ip not in crawler_ips and f.ip not in sensor_ips and f.defects
    ]
    # Allow nothing beyond (rare) NATed port-sharing artefacts.
    assert all(set(f.defects) <= {"port_range"} for f in false_flags), false_flags
