"""Ablations over the detection algorithm's design choices
(DESIGN.md section 5): group count, history interval, Byzantine
leader fraction, and gossip fanout.
"""

import random

import pytest

from repro.core.detection import (
    DetectionConfig,
    ParticipantReport,
    SensorLogDataset,
    evaluate_detection,
)
from repro.core.detection.coordinator import run_round
from repro.core.detection.rounds import push_gossip
from repro.core.detection.voting import LeaderBehavior
from repro.net.address import parse_ip
from repro.sim.clock import DAY, HOUR, MINUTE
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def test_ablation_group_count(benchmark, zeus_flagship, exhibit_writer):
    """More groups -> smaller groups -> coarser thresholds and noisier
    verdicts; fewer groups -> a single leader is a single point of
    subversion.  |G|=8 (the paper's choice) balances both."""
    dataset = zeus_flagship.dataset
    truth = zeus_flagship.active_fleet_ips

    def sweep():
        results = {}
        for bits in (0, 1, 2, 3, 4, 5):
            config = DetectionConfig(group_bits=bits, threshold=0.10)
            results[2 ** bits] = evaluate_detection(
                dataset, truth, config, random.Random(3), contact_ratio=4
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: group count |G| (threshold 10%, contact ratio 1/4)", ""]
    for groups, result in sorted(results.items()):
        organic = {
            key
            for key in result.false_positive_keys
            if key not in zeus_flagship.all_crawler_ips
        }
        lines.append(
            f"  |G|={groups:<3} detection={result.detection_rate * 100:5.1f}%  "
            f"organic FPs={len(organic)}"
        )
    exhibit_writer("ablation_group_count", "\n".join(lines))
    # Detection works across the whole sweep -- the group count is a
    # scalability/robustness knob, not an accuracy cliff.
    assert results[8].detection_rate >= 0.5
    assert min(r.detection_rate for r in results.values()) >= 0.3
    for result in results.values():
        organic = {
            key
            for key in result.false_positive_keys
            if key not in zeus_flagship.all_crawler_ips
        }
        assert len(organic) <= 10


def test_ablation_history_interval(benchmark, exhibit_writer):
    """Section 4.3: the request history must span multiple rounds, or
    a crawler evades by touching a disjoint 1/24 sensor slice per
    hour.  Synthesizes exactly that rotating crawler."""
    rng = random.Random(0)
    sensors = [
        ParticipantReport(
            node_id=f"s{i:03d}",
            bot_id=bytes(rng.getrandbits(8) for _ in range(20)),
            requests=(),
        )
        for i in range(96)
    ]
    crawler_ip = parse_ip("99.0.0.1")
    requests = {s.node_id: [] for s in sensors}
    # The rotating crawler: slice k of 24 during hour k.
    for hour in range(24):
        slice_sensors = sensors[hour * 4 % 96 : hour * 4 % 96 + 4]
        for sensor in slice_sensors:
            for k in range(3):
                requests[sensor.node_id].append((hour * HOUR + k * 60.0, crawler_ip))
    # Background bots.
    for index in range(150):
        ip = parse_ip("25.0.0.1") + index * 0x2000
        known = rng.sample(sensors, 2)
        t = rng.uniform(0, HOUR)
        while t < DAY:
            for sensor in known:
                requests[sensor.node_id].append((t, ip))
            t += 30 * MINUTE
    dataset = SensorLogDataset(
        participants=tuple(
            ParticipantReport(
                node_id=s.node_id, bot_id=s.bot_id, requests=tuple(sorted(requests[s.node_id]))
            )
            for s in sensors
        )
    )

    def sweep():
        results = {}
        for hours in (1, 2, 6, 12, 24):
            config = DetectionConfig(
                group_bits=3, threshold=0.15, history_interval=hours * HOUR
            )
            results[hours] = evaluate_detection(
                dataset, {crawler_ip}, config, random.Random(1), round_end=DAY
            )
        return results

    results = benchmark(sweep)
    lines = ["Ablation: history interval vs a slice-rotating crawler", ""]
    for hours, result in sorted(results.items()):
        verdict = "DETECTED" if result.detection_rate == 1.0 else "evaded"
        lines.append(f"  history={hours:>2}h: {verdict}")
    exhibit_writer("ablation_history_interval", "\n".join(lines))
    assert results[1].detection_rate == 0.0   # short history: evasion
    assert results[24].detection_rate == 1.0  # full-day history: caught


def test_ablation_byzantine_leaders(benchmark, zeus_flagship, exhibit_writer):
    """The |A| < n x m boundary measured on real traffic."""
    participants = list(zeus_flagship.dataset.participants)
    truth = zeus_flagship.active_fleet_ips
    config = DetectionConfig(group_bits=3, threshold=0.10)

    def sweep():
        outcomes = {}
        for adversaries in range(0, 7):
            behaviors = {i: LeaderBehavior.SUPPRESS for i in range(adversaries)}
            result = run_round(
                participants, config, random.Random(5), leader_behaviors=behaviors
            )
            detected = len(result.classified & truth)
            outcomes[adversaries] = detected / len(truth)
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: suppressing (Byzantine) leaders of 8", ""]
    for adversaries, rate in sorted(outcomes.items()):
        lines.append(f"  |A|={adversaries}: detection {rate * 100:5.1f}%")
    exhibit_writer("ablation_byzantine_leaders", "\n".join(lines))
    # Tolerated below the majority boundary (needs 5 of 8 votes, so up
    # to 3 suppressors); collapses at 4+.
    assert outcomes[0] == outcomes[3] == 1.0
    assert outcomes[4] == 0.0


def test_ablation_gossip_fanout(benchmark, exhibit_writer):
    """Round-announcement gossip: fanout vs coverage vs message cost."""
    scenario = build_zeus_scenario(
        zeus_config("small", master_seed=61), sensor_count=4, announce_hours=2.0
    )
    scenario.run_for(4 * HOUR)
    graph = scenario.net.connectivity_graph()
    routable = {bot.node_id for bot in scenario.net.routable_bots}
    origin = sorted(routable)[0]

    def sweep():
        stats = {}
        for fanout in (1, 2, 4, 8):
            stats[fanout] = push_gossip(
                graph, routable, origin, random.Random(9), fanout=fanout
            )
        return stats

    stats = benchmark(sweep)
    lines = ["Ablation: push-gossip fanout (routable overlay)", ""]
    for fanout, stat in sorted(stats.items()):
        lines.append(
            f"  fanout={fanout}: coverage {stat.coverage(len(routable)) * 100:5.1f}%"
            f"  messages={stat.messages_sent}  hops={stat.hops}"
        )
    exhibit_writer("ablation_gossip_fanout", "\n".join(lines))
    assert stats[4].coverage(len(routable)) >= 0.9
    assert stats[1].messages_sent < stats[8].messages_sent
