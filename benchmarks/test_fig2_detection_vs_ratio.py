"""Figure 2: % of crawlers detected in 24 hours vs. contact ratio,
for |G| = 8 groups and several per-group thresholds.

Runs the distributed detector offline over the flagship sensor logs,
simulating crawler contact-ratio limiting by excluding crawler
requests per sensor subset -- the paper's Section 6.1 methodology.

The sweep itself executes on the experiment runner
(:mod:`repro.runner`): each (threshold, ratio) cell is one sweep
point, dispatched serially here and re-dispatched across a worker
pool to assert the sharded path reproduces the serial grid exactly.

Threshold note: the paper's sensors were 0.25% of a 200k-bot
population; ours are ~30% of a 4k one, so ordinary bots touch
proportionally more sensors and the FP-free operating point shifts
from t=5% to t=10%.  The sweep includes both (EXPERIMENTS.md).
"""

import random

from repro.analysis.metrics import detection_series
from repro.core.detection import DetectionConfig
from repro.core.detection.offline import detection_grid, evaluate_detection
from repro.runner import (
    ProcessExecutor,
    SerialExecutor,
    SweepSpec,
    fig2_grid,
    fig2_series,
    make_points,
    register_point,
    render_fig2_sweep,
)

THRESHOLDS = (0.01, 0.02, 0.05, 0.10)
RATIOS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Closure state for the flagship point: the session-scoped capture is
#: built by the fixture, so the point function reads it from here
#: (workers inherit it via fork, since pools start inside ``run()``).
_FLAGSHIP = {}


@register_point("fig2-flagship-cell")
def _flagship_cell(params, seed):
    """One flagship Figure 2 cell, same calls as ``detection_grid``:
    fresh ``random.Random(detection_seed)`` per cell, shared dataset."""
    dataset = _FLAGSHIP["dataset"]
    truth = _FLAGSHIP["truth"]
    config = DetectionConfig(
        group_bits=3, threshold=params["threshold"], aggregation_prefix=32
    )
    result = evaluate_detection(
        dataset,
        truth,
        config,
        random.Random(params["detection_seed"]),
        contact_ratio=params["ratio"],
    )
    return {
        "threshold": params["threshold"],
        "ratio": params["ratio"],
        "detection_rate": result.detection_rate,
        "false_positives": result.false_positives,
        "detected": len(result.detected_crawlers),
        "truth": len(truth),
    }


def _flagship_spec():
    params_list = [
        {"threshold": threshold, "ratio": ratio, "detection_seed": 0}
        for threshold in THRESHOLDS
        for ratio in RATIOS
    ]
    return SweepSpec(
        name="fig2-flagship",
        root_seed=0,
        points=make_points(0, "fig2-flagship-cell", params_list),
        aggregator="fig2",
    )


def test_fig2_detection_vs_contact_ratio(benchmark, zeus_flagship, exhibit_writer):
    _FLAGSHIP["dataset"] = zeus_flagship.dataset
    _FLAGSHIP["truth"] = zeus_flagship.active_fleet_ips
    truth = zeus_flagship.active_fleet_ips
    assert len(truth) == 18  # the paper's active ground-truth count

    spec = _flagship_spec()
    result = benchmark.pedantic(
        lambda: SerialExecutor().run(spec), rounds=1, iterations=1
    )
    grid = fig2_grid(result)
    series = fig2_series(result)
    text = render_fig2_sweep(result)
    exhibit_writer("fig2_detection_vs_ratio", text)

    # The runner path is a pure re-plumbing of detection_grid: the
    # direct grid and the sweep records agree cell for cell.
    direct = detection_grid(
        zeus_flagship.dataset, truth, thresholds=THRESHOLDS, ratios=RATIOS, group_bits=3
    )
    assert set(grid) == set(direct)
    for key, cell in direct.items():
        assert grid[key]["detection_rate"] == cell.detection_rate, key
        assert grid[key]["false_positives"] == cell.false_positives, key
    for threshold in THRESHOLDS:
        assert series[threshold] == detection_series(direct, threshold)

    # Full-contact crawlers are always caught, at every threshold.
    for threshold in THRESHOLDS:
        assert grid[(threshold, 1)]["detection_rate"] == 1.0

    # Detection degrades monotonically (modulo grouping noise) with
    # the contact ratio, per threshold -- the Figure 2 shape.
    for threshold in THRESHOLDS:
        rates = [rate for _, rate in series[threshold]]
        assert rates[0] >= rates[-1]
        assert all(a >= b - 12.0 for a, b in zip(rates, rates[1:])), (
            threshold,
            rates,
        )

    # Lower thresholds keep detecting at ratios where higher ones go
    # blind (the paper's t=1% catches 28% even at 1/128).
    low = dict(series[THRESHOLDS[0]])
    high = dict(series[THRESHOLDS[-1]])
    assert low[64] >= high[64]
    assert low[128] > 0.0

    # At the FP-free threshold, crawlers must drop their contact ratio
    # to roughly 1/16-1/32 before detection falls under 50%.
    ideal = dict(series[0.10])
    assert ideal[1] == 100.0
    assert ideal[4] >= 50.0
    assert ideal[64] <= 50.0


def test_fig2_parallel_matches_serial(zeus_flagship):
    """The sharded (multi-worker) sweep reproduces the serial grid
    byte-for-byte: scheduling cannot leak into the exhibit."""
    _FLAGSHIP["dataset"] = zeus_flagship.dataset
    _FLAGSHIP["truth"] = zeus_flagship.active_fleet_ips

    spec = _flagship_spec()
    serial = SerialExecutor().run(spec)
    parallel = ProcessExecutor(workers=2).run(spec)
    assert serial.values() == parallel.values()
    assert render_fig2_sweep(serial) == render_fig2_sweep(parallel)
