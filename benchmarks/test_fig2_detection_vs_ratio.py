"""Figure 2: % of crawlers detected in 24 hours vs. contact ratio,
for |G| = 8 groups and several per-group thresholds.

Runs the distributed detector offline over the flagship sensor logs,
simulating crawler contact-ratio limiting by excluding crawler
requests per sensor subset -- the paper's Section 6.1 methodology.

Threshold note: the paper's sensors were 0.25% of a 200k-bot
population; ours are ~30% of a 4k one, so ordinary bots touch
proportionally more sensors and the FP-free operating point shifts
from t=5% to t=10%.  The sweep includes both (EXPERIMENTS.md).
"""

import random

from repro.analysis.metrics import detection_series
from repro.analysis.tables import render_fig2
from repro.core.detection import DetectionConfig
from repro.core.detection.offline import detection_grid

THRESHOLDS = (0.01, 0.02, 0.05, 0.10)
RATIOS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def test_fig2_detection_vs_contact_ratio(benchmark, zeus_flagship, exhibit_writer):
    dataset = zeus_flagship.dataset
    truth = zeus_flagship.active_fleet_ips
    assert len(truth) == 18  # the paper's active ground-truth count

    def sweep():
        return detection_grid(
            dataset, truth, thresholds=THRESHOLDS, ratios=RATIOS, group_bits=3
        )

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = {t: detection_series(grid, t) for t in THRESHOLDS}
    text = render_fig2(series)
    exhibit_writer("fig2_detection_vs_ratio", text)

    # Full-contact crawlers are always caught, at every threshold.
    for threshold in THRESHOLDS:
        assert grid[(threshold, 1)].detection_rate == 1.0

    # Detection degrades monotonically (modulo grouping noise) with
    # the contact ratio, per threshold -- the Figure 2 shape.
    for threshold in THRESHOLDS:
        rates = [rate for _, rate in series[threshold]]
        assert rates[0] >= rates[-1]
        assert all(a >= b - 12.0 for a, b in zip(rates, rates[1:])), (
            threshold,
            rates,
        )

    # Lower thresholds keep detecting at ratios where higher ones go
    # blind (the paper's t=1% catches 28% even at 1/128).
    low = dict(series[THRESHOLDS[0]])
    high = dict(series[THRESHOLDS[-1]])
    assert low[64] >= high[64]
    assert low[128] > 0.0

    # At the FP-free threshold, crawlers must drop their contact ratio
    # to roughly 1/16-1/32 before detection falls under 50%.
    ideal = dict(series[0.10])
    assert ideal[1] == 100.0
    assert ideal[4] >= 50.0
    assert ideal[64] <= 50.0
