"""Figure 4: bots crawled for varying request frequency -- aggressive
vs. half-suspend-cycle vs. full-suspend-cycle crawls (Zeus 30-minute,
Sality 40-minute cycles).

Scale note (EXPERIMENTS.md): at simulator scale every crawl
eventually saturates the population, which the paper's 200k/900k-bot
networks never allow.  The frequency effect therefore shows in the
*pre-saturation* window: coverage ratios are measured at the moment
the aggressive crawl has effectively finished (first reaches 90% of
its final count) -- "when the fast crawl is done, how far behind are
the polite ones?".  There the Sality collapse (paper: 7-11%) and the
much milder Zeus degradation (paper: 74%) both reproduce.
"""

import pytest

from repro.analysis.tables import render_series_figure
from repro.core.crawler import SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR, MINUTE
from repro.workloads.population import sality_config, zeus_config
from repro.workloads.scenarios import build_sality_scenario, build_zeus_scenario

ZEUS_SUSPEND = 30 * MINUTE
SALITY_SUSPEND = 40 * MINUTE
RUN_HOURS = 4


def zeus_policies():
    # Even the aggressive Zeus crawler is rate limited (~15s per
    # target) to stay under automatic blacklisting (Section 6.2.2).
    # Suspend-adherent crawlers also pick up NEW targets only on their
    # cycle schedule (initial_contact_delay), not instantly.
    return {
        "aggressive": StealthPolicy(per_target_interval=15.0, requests_per_target=96),
        "half": StealthPolicy(
            per_target_interval=ZEUS_SUSPEND / 2,
            requests_per_target=16,
            initial_contact_delay=ZEUS_SUSPEND / 2,
        ),
        "full": StealthPolicy(
            per_target_interval=ZEUS_SUSPEND,
            requests_per_target=8,
            initial_contact_delay=ZEUS_SUSPEND,
        ),
    }


def sality_policies():
    # No auto-blacklisting in Sality: aggressive crawlers burst freely.
    return {
        "aggressive": StealthPolicy(per_target_interval=6 * MINUTE, requests_per_target=240),
        "half": StealthPolicy(
            per_target_interval=SALITY_SUSPEND / 2,
            requests_per_target=72,
            initial_contact_delay=SALITY_SUSPEND / 2,
        ),
        "full": StealthPolicy(
            per_target_interval=SALITY_SUSPEND,
            requests_per_target=36,
            initial_contact_delay=SALITY_SUSPEND,
        ),
    }


@pytest.fixture(scope="module")
def zeus_frequency_crawls():
    scenario = build_zeus_scenario(
        zeus_config("medium", master_seed=31), sensor_count=8, announce_hours=2.0
    )
    net = scenario.net
    crawlers = {}
    for index, (label, policy) in enumerate(zeus_policies().items()):
        crawler = ZeusCrawler(
            name=label,
            endpoint=Endpoint(parse_ip(f"99.{index}.0.1"), 7000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=net.rngs.fork(f"zfc-{label}").stream("crawl"),
            policy=policy,
            profile=ZeusDefectProfile(name=label),
        )
        crawler.start(net.bootstrap_sample(3, seed=70 + index))
        crawlers[label] = crawler
    scenario.run_for(RUN_HOURS * HOUR)
    return scenario, crawlers


@pytest.fixture(scope="module")
def sality_frequency_crawls():
    scenario = build_sality_scenario(
        sality_config("medium", master_seed=32), sensor_count=8, announce_hours=2.0
    )
    net = scenario.net
    crawlers = {}
    for index, (label, policy) in enumerate(sality_policies().items()):
        crawler = SalityCrawler(
            name=label,
            endpoint=Endpoint(parse_ip(f"99.{index}.0.1"), 7000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=net.rngs.fork(f"sfc-{label}").stream("crawl"),
            policy=policy,
            profile=SalityDefectProfile(name=label),
        )
        crawler.start(net.bootstrap_sample(3, seed=80 + index))
        crawlers[label] = crawler
    scenario.run_for(RUN_HOURS * HOUR)
    return scenario, crawlers


def cycle_checkpoint(scenario, suspend_cycle, cycles=1.0):
    """The comparison instant: ``cycles`` suspend cycles into the
    measurement window.  By then the aggressive crawl has long
    converged while a fully adherent crawler has completed exactly
    ``cycles`` request rounds -- the paper's 24h window compressed to
    simulator scale (EXPERIMENTS.md)."""
    return scenario.measurement_start + suspend_cycle * cycles


def relative_at(crawlers, when):
    base = max(1, crawlers["aggressive"].report.ips_found_by(when))
    return {
        label: crawler.report.ips_found_by(when) / base
        for label, crawler in crawlers.items()
    }


def _render(title, scenario, crawlers, checkpoint, relative):
    until = scenario.net.scheduler.now
    series = {
        label: crawler.report.coverage_series(until=until, bucket=15 * MINUTE)
        for label, crawler in crawlers.items()
    }
    text = render_series_figure(title, series)
    offset = checkpoint - scenario.measurement_start
    text += (
        f"\n\nrelative coverage at the +{offset / MINUTE:.0f} min checkpoint "
        f"({CHECKPOINT_CYCLES:g} suspend cycles): "
        + "  ".join(f"{label}={value * 100:.0f}%" for label, value in relative.items())
    )
    return text


CHECKPOINT_CYCLES = 2.0


def test_fig4a_zeus_frequency(benchmark, zeus_frequency_crawls, exhibit_writer):
    scenario, crawlers = zeus_frequency_crawls

    def analyze():
        when = cycle_checkpoint(scenario, ZEUS_SUSPEND, CHECKPOINT_CYCLES)
        return when, relative_at(crawlers, when)

    checkpoint, relative = benchmark(analyze)
    exhibit_writer(
        "fig4a_zeus_frequency",
        _render("Figure 4a: Zeus bots crawled for varying request frequency",
                scenario, crawlers, checkpoint, relative),
    )
    # Ordering (with a small saturation-noise tolerance).
    assert relative["aggressive"] >= relative["half"] - 0.05
    assert relative["half"] >= relative["full"] - 0.05
    # Zeus degrades mildly: 10 peers per response and ~50-entry lists
    # make even a full-cycle crawl reasonably efficient (paper: 74%).
    assert relative["full"] >= 0.25


def test_fig4b_sality_frequency(benchmark, sality_frequency_crawls, exhibit_writer):
    scenario, crawlers = sality_frequency_crawls

    def analyze():
        when = cycle_checkpoint(scenario, SALITY_SUSPEND, CHECKPOINT_CYCLES)
        return when, relative_at(crawlers, when)

    checkpoint, relative = benchmark(analyze)
    exhibit_writer(
        "fig4b_sality_frequency",
        _render("Figure 4b: Sality bots crawled for varying request frequency",
                scenario, crawlers, checkpoint, relative),
    )
    assert relative["aggressive"] >= relative["half"] - 0.05
    assert relative["half"] >= relative["full"] - 0.05
    # The Sality collapse: single-entry responses starve slow crawls
    # (paper: 11% half, 7% full).
    assert relative["full"] <= 0.6


def test_fig4_sality_hit_harder_than_zeus(
    zeus_frequency_crawls, sality_frequency_crawls
):
    """The paper's cross-family contrast: frequency limiting is
    devastating for Sality (7% at full cycle), mild for Zeus (74%)."""
    zeus_scenario, zeus_crawlers = zeus_frequency_crawls
    sality_scenario, sality_crawlers = sality_frequency_crawls
    zeus_rel = relative_at(
        zeus_crawlers, cycle_checkpoint(zeus_scenario, ZEUS_SUSPEND, CHECKPOINT_CYCLES)
    )
    sality_rel = relative_at(
        sality_crawlers, cycle_checkpoint(sality_scenario, SALITY_SUSPEND, CHECKPOINT_CYCLES)
    )
    assert sality_rel["full"] < zeus_rel["full"]
