"""Section 4.2: hunting defective sensors in GameOver Zeus.

Injects the 10 in-the-wild sensor organizations (their defect profiles
transcribed from the paper) alongside clean full-protocol sensors into
one Zeus botnet, then reproduces the paper's two-step methodology:
in-degree ranking over the connectivity graph, followed by active
probing of the candidates.
"""

import pytest

from repro.botnets.zeus import protocol as zeus_protocol
from repro.core.sensor import SensorDefectProfile, ZeusSensor
from repro.core.sensorhunt import SensorProber, rank_by_in_degree
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario
from repro.workloads.sensor_profiles import ZEUS_SENSOR_PROFILES


@pytest.fixture(scope="module")
def hunt_scenario():
    scenario = build_zeus_scenario(
        zeus_config("small", master_seed=51), sensor_count=6, announce_hours=3.0
    )
    net = scenario.net
    rivals = []
    for index, profile in enumerate(ZEUS_SENSOR_PROFILES):
        rng = net.rngs.fork(f"rival-{index}").stream("sensor")
        rival = ZeusSensor(
            node_id=f"rival-{index}",
            bot_id=zeus_protocol.random_id(rng),
            endpoint=Endpoint(parse_ip(f"46.{index}.0.1"), 6000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            profile=profile,
            announce_duration=8 * HOUR,
            announce_fanout=16,
        )
        rival.seed_peers(net.bootstrap_sample(12, seed=600 + index))
        rival.start()
        rivals.append(rival)
    scenario.run_for(16 * HOUR)
    return scenario, rivals


def test_sensor_hunt(benchmark, hunt_scenario, exhibit_writer):
    scenario, rivals = hunt_scenario
    net = scenario.net

    def hunt():
        candidates = rank_by_in_degree(list(net.bots.values()), top=120)
        prober = SensorProber(
            endpoint=Endpoint(parse_ip("98.0.0.1"), 9000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=net.rngs.stream("hunt-prober"),
            current_version=net.zconfig.zeus.version,
        )
        return candidates, prober.probe(candidates)

    candidates, verdicts = benchmark.pedantic(hunt, rounds=1, iterations=1)
    rival_endpoints = {rival.endpoint for rival in rivals}
    clean_endpoints = {sensor.endpoint for sensor in scenario.sensors}

    suspects = [v for v in verdicts if v.is_sensor_suspect]
    true_hits = {v.candidate.endpoint for v in suspects} & rival_endpoints

    lines = ["Section 4.2: sensor anomalies in GameOver Zeus", ""]
    lines.append(f"high-in-degree candidates probed: {len(candidates)}")
    lines.append(f"defective sensors injected:       {len(rivals)}")
    lines.append(f"found by probing:                 {len(true_hits)}")
    lines.append("")
    for verdict in suspects:
        tag = "rival " if verdict.candidate.endpoint in rival_endpoints else "other "
        lines.append(
            f"  {tag}{verdict.candidate.endpoint} in-degree="
            f"{verdict.candidate.in_degree}: {', '.join(verdict.anomalies)}"
        )
    exhibit_writer("sensor_anomalies", "\n".join(lines))

    # Every rival sensor that ranked among the candidates is exposed by
    # its response anomalies.
    ranked_rivals = {c.endpoint for c in candidates} & rival_endpoints
    assert len(ranked_rivals) >= 6, "rivals failed to accrue in-degree"
    assert true_hits == ranked_rivals

    # The paper's caveat: high in-degree alone is not a sensor signal;
    # legitimate bots among the candidates are NOT flagged.
    bot_endpoints = {
        c.endpoint
        for c in candidates
        if c.endpoint not in rival_endpoints and c.endpoint not in clean_endpoints
    }
    flagged_bots = {v.candidate.endpoint for v in suspects} & bot_endpoints
    assert flagged_bots == set()

    # Anomaly classes match Section 4.2: all rivals lack proxy/update
    # support; most return empty peer lists.
    anomaly_union = set()
    for verdict in suspects:
        if verdict.candidate.endpoint in rival_endpoints:
            anomaly_union |= set(verdict.anomalies)
    assert {"no_proxy_reply", "no_update_reply", "empty_peer_list"} <= anomaly_union
