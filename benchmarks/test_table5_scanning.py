"""Table 5: susceptibility of P2P botnets to Internet-wide scanning,
plus a live sweep of a simulated ZeroAccess block."""

import random

import pytest

from repro.analysis.tables import render_table5
from repro.core.scanning import (
    InternetScanner,
    ProbeResponder,
    ScanUnsupportedError,
    susceptibility_report,
)
from repro.net.address import Subnet, parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.scheduler import Scheduler


def test_table5_matrix(benchmark, exhibit_writer):
    text = benchmark(render_table5)
    exhibit_writer("table5_scanning", text)
    rows = {row.family: row for row in susceptibility_report()}
    # Paper Table 5: only ZeroAccess and Kelihos are susceptible.
    assert {name for name, row in rows.items() if row.susceptible} == {
        "ZeroAccess",
        "Kelihos/Hlux",
    }
    # Zeus is the only family without a constructible probe.
    assert {name for name, row in rows.items() if not row.probe_constructible} == {"Zeus"}


def test_zeroaccess_sweep(benchmark):
    """A ZMap-style sweep finds every planted ZeroAccess responder."""

    def run():
        scheduler = Scheduler()
        transport = Transport(
            scheduler, random.Random(0), config=TransportConfig(loss_rate=0.0)
        )
        block = Subnet.parse("80.0.0.0/23")
        rng = random.Random(1)
        infected = rng.sample(list(block), 40)
        for ip in infected:
            ProbeResponder(Endpoint(ip, 16471), transport)
        scanner = InternetScanner(
            endpoint=Endpoint(parse_ip("90.0.0.1"), 40000),
            transport=transport,
            scheduler=scheduler,
            rng=random.Random(2),
            probes_per_second=100_000,
        )
        return scanner.scan("ZeroAccess", [block]), set(infected)

    result, infected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.addresses_probed == 512
    assert {e.ip for e in result.responders} == infected


def test_zeus_and_sality_rejected(benchmark):
    """Zeus (no probe) and Sality (port blowup) are unscannable."""

    def run():
        scheduler = Scheduler()
        transport = Transport(scheduler, random.Random(0))
        scanner = InternetScanner(
            Endpoint(parse_ip("90.0.0.1"), 40000), transport, scheduler, random.Random(1)
        )
        outcomes = {}
        for family in ("Zeus", "Sality", "Waledac", "Storm"):
            try:
                scanner.scan(family, [Subnet.parse("80.0.0.0/30")])
                outcomes[family] = "scanned"
            except ScanUnsupportedError as error:
                outcomes[family] = str(error)
        return outcomes

    outcomes = benchmark(run)
    assert "per-bot knowledge" in outcomes["Zeus"]
    for family in ("Sality", "Waledac", "Storm"):
        assert "candidate ports" in outcomes[family]
