"""Table 4: false positives vs. detected crawlers per threshold and
contact ratio, with the relative-coverage rows (C_Zeus / C_Sality)
supplied by the Figure 3 crawls.
"""

import random

from repro.analysis.tables import render_table4
from repro.core.detection import DetectionConfig, evaluate_detection
from repro.core.detection.offline import detection_grid
from repro.net.address import subnet_key
from repro.net.address import parse_ip

THRESHOLDS = (0.01, 0.02, 0.05, 0.10)
RATIOS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def test_table4_fp_vs_detection(benchmark, zeus_flagship, exhibit_writer):
    dataset = zeus_flagship.dataset
    truth = zeus_flagship.active_fleet_ips

    def sweep():
        return detection_grid(
            dataset, truth, thresholds=THRESHOLDS, ratios=RATIOS, group_bits=3
        )

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table4(grid)
    exhibit_writer("table4_fp_detection", text)

    # "Organic" false positives: classified keys that are not recon
    # infrastructure of any kind (the three low-coverage crawlers and
    # the distributed crawler are excluded from ground truth but are
    # still crawlers, not false positives).
    def organic_fps(threshold):
        return {
            key
            for key in grid[(threshold, 1)].false_positive_keys
            if key not in zeus_flagship.all_crawler_ips
        }

    fp_by_threshold = {t: len(organic_fps(t)) for t in THRESHOLDS}
    # FP counts fall monotonically with the threshold and reach zero
    # at the strictest setting (paper: 119 -> 13 -> 0).
    values = [fp_by_threshold[t] for t in THRESHOLDS]
    assert values == sorted(values, reverse=True)
    assert values[0] > values[-1]
    assert fp_by_threshold[0.10] == 0

    # NATed shared IPs are among the low-threshold false positives
    # ("most of which are actually sets of NATed bots sharing a
    # single IP").
    nat_space = subnet_key(parse_ip("60.0.0.1"), 8)
    low_fps = organic_fps(THRESHOLDS[0])
    assert any(subnet_key(key, 8) == nat_space for key in low_fps)

    # Detection columns: at every threshold, the full-contact column
    # dominates every limited column.
    for threshold in THRESHOLDS:
        full = grid[(threshold, 1)].detection_rate
        for ratio in RATIOS[1:]:
            assert grid[(threshold, ratio)].detection_rate <= full + 1e-9


def test_table4_detection_gradient_across_thresholds(zeus_flagship):
    """At a fixed moderate ratio, lower thresholds detect at least as
    much as higher ones (the Table 4 column ordering)."""
    dataset = zeus_flagship.dataset
    truth = zeus_flagship.active_fleet_ips
    rates = []
    for threshold in THRESHOLDS:
        result = evaluate_detection(
            dataset,
            truth,
            DetectionConfig(group_bits=3, threshold=threshold),
            random.Random(0),
            contact_ratio=16,
        )
        rates.append(result.detection_rate)
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:])), rates
