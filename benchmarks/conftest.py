"""Shared scenario fixtures for the benchmark harness.

The expensive simulations (the paper's 24-hour measurement windows)
are built once per session and shared by every exhibit that consumes
the same dataset -- mirroring the paper, which replayed one logged
traffic capture under many detector configurations precisely so that
"any detection differences were a result of the configuration
parameters rather than churn" (Section 6.1).

Every benchmark writes its rendered exhibit to
``benchmarks/output/<name>.txt``; EXPERIMENTS.md indexes those files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.botnets.zeus.network import ZeusNetworkConfig
from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.detection import SensorLogDataset
from repro.core.stealth import StealthPolicy
from repro.net.transport import Endpoint
from repro.sim.clock import DAY, HOUR, MINUTE
from repro.workloads.crawler_profiles import SALITY_CRAWLER_INSTANCES, ZEUS_CRAWLERS
from repro.workloads.population import sality_config
from repro.workloads.scenarios import (
    CRAWLER_BLOCK,
    build_sality_scenario,
    build_zeus_scenario,
    launch_sality_fleet,
    launch_zeus_fleet,
)

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def exhibit_writer():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write


# -- the flagship Zeus measurement (Tables 3/4, Figure 2, Section 6.1.2) --

FLAGSHIP_SENSORS = 512
DISTRIBUTED_SOURCES = 32


class ZeusFlagship:
    """One 24-hour Zeus measurement shared across exhibits."""

    def __init__(self) -> None:
        config = ZeusNetworkConfig(
            population=4000,
            routable_fraction=0.3,
            bootstrap_peers=15,
            master_seed=1,
            max_bots_per_gateway=3,
            # 10 infections per dense /19 (5 per /20 half): each half
            # stays under the aggregated detection threshold, the
            # merged /19 key crosses it (Section 6.1.2).
            dense_neighborhoods=10,
            bots_per_dense_neighborhood=10,
        )
        self.scenario = build_zeus_scenario(
            config, sensor_count=FLAGSHIP_SENSORS, announce_hours=3.0
        )
        launch_zeus_fleet(self.scenario, ZEUS_CRAWLERS)
        # One address-distributed crawler: 32 sources inside a single
        # /20, each staying far below the per-IP detection threshold
        # (Sections 5.3 / 6.1.2).
        base = CRAWLER_BLOCK.network + 200 * 0x1000
        self.distributed_sources = [
            Endpoint(base + offset + 1, 7000) for offset in range(DISTRIBUTED_SOURCES)
        ]
        net = self.scenario.net
        self.distributed_crawler = ZeusCrawler(
            name="distributed",
            endpoint=self.distributed_sources[0],
            transport=net.transport,
            scheduler=net.scheduler,
            rng=net.rngs.fork("crawler-distributed").stream("crawl"),
            policy=StealthPolicy(
                contact_fraction=0.9,
                per_target_interval=15.0,
                requests_per_target=1,
                source_endpoints=self.distributed_sources[1:],
            ),
            profile=ZeusDefectProfile(name="distributed"),
        )
        self.distributed_crawler.start(net.bootstrap_sample(10, seed=777))
        self.scenario.run_for(DAY)
        self.dataset = SensorLogDataset.from_zeus_sensors(
            self.scenario.sensors, since=self.scenario.measurement_start
        )
        self.fleet_ips = {
            crawler.endpoint.ip
            for crawler in self.scenario.crawlers
            if crawler.name != "distributed"
        }
        # Detection ground truth mirrors the paper: "During our test
        # period, 18 of the crawlers from Table 3 were active" -- the
        # three crawlers below 20% sensor coverage are too quiet to
        # serve as out-degree ground truth (exactly 18 remain).
        self.active_fleet_ips = {
            crawler.endpoint.ip
            for crawler in self.scenario.crawlers
            if crawler.name != "distributed" and crawler.profile.coverage >= 0.2
        }
        self.distributed_ips = {endpoint.ip for endpoint in self.distributed_sources}
        self.all_crawler_ips = self.fleet_ips | self.distributed_ips


@pytest.fixture(scope="session")
def zeus_flagship() -> ZeusFlagship:
    return ZeusFlagship()


# -- the Sality sensor measurement (Table 2) --


class SalityMeasurement:
    """The 64-sensor Sality capture with the 11 in-the-wild crawlers."""

    def __init__(self) -> None:
        self.scenario = build_sality_scenario(
            sality_config("small", master_seed=2),
            sensor_count=64,
            announce_hours=3.0,
        )
        launch_sality_fleet(self.scenario, SALITY_CRAWLER_INSTANCES)
        self.scenario.run_for(12 * HOUR)


@pytest.fixture(scope="session")
def sality_measurement() -> SalityMeasurement:
    return SalityMeasurement()
