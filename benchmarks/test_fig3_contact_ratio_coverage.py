"""Figure 3: bots crawled in 24 hours for varying contact ratio
(Zeus in (a), Sality in (b)), plus the C rows of Table 4.

All ratio-limited crawls of one family run *in parallel* against the
same simulated botnet, exactly as in the paper ("we ran all of the
crawling tests in parallel ... to ensure that performance differences
did not result from churn").
"""

import pytest

from repro.analysis.coverage import relative_coverage_series
from repro.analysis.tables import render_series_figure
from repro.core.crawler import SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import DAY, HOUR
from repro.workloads.population import sality_config, zeus_config
from repro.workloads.scenarios import build_sality_scenario, build_zeus_scenario

RATIOS = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def zeus_ratio_crawls():
    scenario = build_zeus_scenario(
        zeus_config("small", master_seed=21), sensor_count=8, announce_hours=2.0
    )
    net = scenario.net
    crawlers = {}
    for index, ratio in enumerate(RATIOS):
        crawler = ZeusCrawler(
            name=f"ratio-1/{ratio}",
            endpoint=Endpoint(parse_ip(f"99.{index}.0.1"), 7000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=net.rngs.fork(f"zcr-{ratio}").stream("crawl"),
            policy=StealthPolicy(
                contact_ratio=ratio, per_target_interval=15.0, requests_per_target=4
            ),
            profile=ZeusDefectProfile(name=f"r{ratio}"),
        )
        crawler.start(net.bootstrap_sample(10, seed=50 + index))
        crawlers[f"1/{ratio}"] = crawler
    scenario.run_for(DAY)
    return scenario, crawlers


@pytest.fixture(scope="module")
def sality_ratio_crawls():
    scenario = build_sality_scenario(
        sality_config("small", master_seed=22), sensor_count=8, announce_hours=2.0
    )
    net = scenario.net
    crawlers = {}
    for index, ratio in enumerate(RATIOS):
        crawler = SalityCrawler(
            name=f"ratio-1/{ratio}",
            endpoint=Endpoint(parse_ip(f"99.{index}.0.1"), 7000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=net.rngs.fork(f"scr-{ratio}").stream("crawl"),
            policy=StealthPolicy(
                contact_ratio=ratio, per_target_interval=60.0, requests_per_target=40
            ),
            profile=SalityDefectProfile(name=f"r{ratio}"),
        )
        crawler.start(net.bootstrap_sample(10, seed=60 + index))
        crawlers[f"1/{ratio}"] = crawler
    scenario.run_for(DAY)
    return scenario, crawlers


def _series(scenario, crawlers, bucket):
    until = scenario.net.scheduler.now
    return {
        label: crawler.report.coverage_series(until=until, bucket=bucket)
        for label, crawler in crawlers.items()
    }


def test_fig3a_zeus_contact_ratio(benchmark, zeus_ratio_crawls, exhibit_writer):
    scenario, crawlers = zeus_ratio_crawls

    def analyze():
        reports = {label: crawler.report for label, crawler in crawlers.items()}
        return relative_coverage_series(reports, baseline="1/1")

    relative = benchmark(analyze)
    text = render_series_figure(
        "Figure 3a: Zeus bots crawled in 24h for varying contact ratio",
        _series(scenario, crawlers, bucket=2 * HOUR),
    )
    text += "\n\nC_Zeus (relative coverage): " + "  ".join(
        f"{label}={value * 100:.0f}%" for label, value in relative.items()
    )
    exhibit_writer("fig3a_zeus_contact_ratio", text)

    # Coverage declines as the contact ratio drops (Table 4 C_Zeus:
    # 100, 80, 52, 42, 38, 2 -- monotone decline, steep tail).
    values = [relative[f"1/{ratio}"] for ratio in RATIOS]
    assert values[0] == 1.0
    assert all(a >= b - 0.05 for a, b in zip(values, values[1:])), values
    assert values[1] >= 0.5          # 1/2 still reasonably complete
    assert values[-1] <= values[1]   # 1/32 clearly degraded
    assert values[-1] < 0.9


def test_fig3b_sality_contact_ratio(benchmark, sality_ratio_crawls, exhibit_writer):
    scenario, crawlers = sality_ratio_crawls

    def analyze():
        reports = {label: crawler.report for label, crawler in crawlers.items()}
        return relative_coverage_series(reports, baseline="1/1")

    relative = benchmark(analyze)
    text = render_series_figure(
        "Figure 3b: Sality bots crawled in 24h for varying contact ratio",
        _series(scenario, crawlers, bucket=2 * HOUR),
    )
    text += "\n\nC_Sality (relative coverage): " + "  ".join(
        f"{label}={value * 100:.0f}%" for label, value in relative.items()
    )
    exhibit_writer("fig3b_sality_contact_ratio", text)

    values = [relative[f"1/{ratio}"] for ratio in RATIOS]
    assert values[0] == 1.0
    assert all(a >= b - 0.05 for a, b in zip(values, values[1:])), values
    assert values[-1] < values[0]


def test_fig3_curves_monotone_in_time(zeus_ratio_crawls):
    """Every coverage curve is cumulative, hence non-decreasing."""
    scenario, crawlers = zeus_ratio_crawls
    for crawler in crawlers.values():
        series = crawler.report.coverage_series(
            until=scenario.net.scheduler.now, bucket=HOUR
        )
        counts = [count for _, count in series]
        assert counts == sorted(counts)
