"""Figure 3: bots crawled in 24 hours for varying contact ratio
(Zeus in (a), Sality in (b)), plus the C rows of Table 4.

Ported onto the experiment runner (:mod:`repro.runner`): each ratio
is one sweep point running a full simulation from the sweep's shared
capture seed, so every crawl faces a *bit-identical* botnet -- the
sharded equivalent of the paper running all crawling tests "in
parallel ... to ensure that performance differences did not result
from churn", with the added isolation that crawls cannot perturb each
other through shared peer lists.  The same specs are what
``repro sweep fig3-zeus`` / ``fig3-sality`` shard across workers; the
tier-1 suite asserts the serial and pooled paths are byte-identical.
"""

import pytest

from repro.runner import (
    build_sweep,
    coverage_relative,
    coverage_series,
    render_fig3_sweep,
    run_sweep,
)

RATIOS = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def zeus_sweep_result():
    spec = build_sweep(
        "fig3-zeus",
        root_seed=21,
        scale="small",
        sensors=8,
        announce_hours=2.0,
        hours=24.0,
        ratios=RATIOS,
    )
    return run_sweep(spec, workers=1)


@pytest.fixture(scope="module")
def sality_sweep_result():
    spec = build_sweep(
        "fig3-sality",
        root_seed=22,
        scale="small",
        sensors=8,
        announce_hours=2.0,
        hours=24.0,
        ratios=RATIOS,
    )
    return run_sweep(spec, workers=1)


def test_fig3a_zeus_contact_ratio(benchmark, zeus_sweep_result, exhibit_writer):
    result = zeus_sweep_result

    relative = benchmark(lambda: coverage_relative(result))
    text = render_fig3_sweep(
        result,
        "Figure 3a: Zeus bots crawled in 24h for varying contact ratio",
        "Zeus",
    )
    exhibit_writer("fig3a_zeus_contact_ratio", text)

    # Coverage declines as the contact ratio drops (Table 4 C_Zeus:
    # 100, 80, 52, 42, 38, 2 -- monotone decline, steep tail).
    values = [relative[f"1/{ratio}"] for ratio in RATIOS]
    assert values[0] == 1.0
    assert all(a >= b - 0.05 for a, b in zip(values, values[1:])), values
    assert values[1] >= 0.5          # 1/2 still reasonably complete
    assert values[-1] <= values[1]   # 1/32 clearly degraded
    assert values[-1] <= 0.6


def test_fig3b_sality_contact_ratio(benchmark, sality_sweep_result, exhibit_writer):
    result = sality_sweep_result

    relative = benchmark(lambda: coverage_relative(result))
    text = render_fig3_sweep(
        result,
        "Figure 3b: Sality bots crawled in 24h for varying contact ratio",
        "Sality",
    )
    exhibit_writer("fig3b_sality_contact_ratio", text)

    # Sality's pull-based exchange degrades more gently than Zeus
    # (Table 4 C_Sality: 100, 92, 80, 71, 54, 41).
    values = [relative[f"1/{ratio}"] for ratio in RATIOS]
    assert values[0] == 1.0
    assert all(a >= b - 0.05 for a, b in zip(values, values[1:])), values
    assert values[1] >= 0.7
    assert values[-1] <= 0.7


def test_fig3_curves_monotone_in_time(zeus_sweep_result):
    """Every coverage curve is cumulative, hence non-decreasing."""
    for label, series in coverage_series(zeus_sweep_result).items():
        counts = [count for _, count in series]
        assert counts == sorted(counts), label
