"""Table 6: tradeoffs of P2P botnet reconnaissance methods, with the
qualitative matrix backed by one measured head-to-head: a crawler, a
passive sensor fleet, and an augmented sensor fleet against the same
Zeus botnet."""

import random

import pytest

from repro.analysis.tables import render_table6
from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


@pytest.fixture(scope="module")
def head_to_head():
    scenario = build_zeus_scenario(
        zeus_config("small", master_seed=41),
        sensor_count=24,
        announce_hours=3.0,
        active_peer_list_requests=True,
    )
    net = scenario.net
    crawler = ZeusCrawler(
        name="crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(1),
        policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
        profile=ZeusDefectProfile(name="clean"),
    )
    crawler.start(net.bootstrap_sample(8, seed=5))
    scenario.run_for(18 * HOUR)
    return scenario, crawler


def test_table6_tradeoffs(benchmark, head_to_head, exhibit_writer):
    scenario, crawler = head_to_head
    net = scenario.net
    natted_ips = {bot.endpoint.ip for bot in net.non_routable_bots}
    routable_ips = {bot.endpoint.ip for bot in net.routable_bots}

    def measure():
        crawler_verified = {
            crawler.report.bot_endpoints[b].ip for b in crawler.report.verified_bots
        }
        sensor_nat = set()
        sensor_edges = set()
        for sensor in scenario.sensors:
            sensor_nat |= sensor.observed_ips() & natted_ips
            sensor_edges |= sensor.observed_edges
        return {
            "crawler_routable": len(crawler_verified & routable_ips),
            "crawler_nat": len(crawler_verified & natted_ips),
            "crawler_edges": len(crawler.report.edges),
            "sensor_nat": len(sensor_nat),
            "sensor_edges": len(sensor_edges),
        }

    measured = benchmark(measure)
    text = render_table6(
        measured={
            "Crawling": {
                "Measured routable": str(measured["crawler_routable"]),
                "Measured NATed": str(measured["crawler_nat"]),
                "Measured edges": str(measured["crawler_edges"]),
            },
            "Sensor injection": {
                "Measured NATed": str(measured["sensor_nat"]),
                "Measured edges (augmented)": str(measured["sensor_edges"]),
            },
        }
    )
    exhibit_writer("table6_tradeoffs", text)

    # Crawlers verify routable bots and collect edges, but never verify
    # a single NATed bot (Fig. 1 / Table 6).
    assert measured["crawler_routable"] >= 0.7 * len(routable_ips)
    assert measured["crawler_nat"] == 0
    assert measured["crawler_edges"] > 0
    # Sensors hear from NATed bots -- the 60-87% the crawler cannot
    # reach -- and augmented sensors collect edges too.
    assert measured["sensor_nat"] > 0
    assert measured["sensor_edges"] > 0
