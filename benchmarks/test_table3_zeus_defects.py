"""Table 3: defects found in GameOver Zeus crawlers.

Replays the 21 in-the-wild Zeus crawler profiles against the flagship
512-sensor capture and recovers the full defect matrix from the wire.
"""

from repro.analysis.tables import render_table3
from repro.core.anomaly import ZeusAnomalyAnalyzer, ZeusThresholds
from repro.workloads.crawler_profiles import ZEUS_CRAWLERS


def test_table3_zeus_defect_matrix(benchmark, zeus_flagship, exhibit_writer):
    scenario = zeus_flagship.scenario
    # The paper studies crawlers covering >= 1% of the sensors "with
    # the addition of one open-source Zeus crawler" below that bar --
    # the analyzer floor is relaxed so that c21 (2% nominal coverage)
    # is included the same way.
    thresholds = ZeusThresholds(min_messages=10, min_coverage=0.004)

    def analyze():
        return ZeusAnomalyAnalyzer(thresholds).analyze(scenario.sensors)

    findings = benchmark(analyze)
    by_ip = {finding.ip: finding for finding in findings}

    fleet = [c for c in scenario.crawlers if c.name != "distributed"]
    assert len(fleet) == 21
    # The weakest crawlers (the paper's 1-2%-coverage tail, which it
    # observed over three weeks of passive logging) may not surface in
    # a single 24-hour capture; tolerate their absence but nothing
    # else's.
    found = []
    column_findings = []
    names = []
    for index, crawler in enumerate(fleet):
        finding = by_ip.get(crawler.endpoint.ip)
        if finding is None:
            assert crawler.profile.coverage <= 0.05, (
                f"{crawler.name} (coverage {crawler.profile.coverage}) "
                "missing from findings"
            )
            continue
        found.append(crawler)
        column_findings.append(finding)
        names.append(f"c{index + 1}")
    assert len(found) >= 20

    text = render_table3(column_findings, names)
    exhibit_writer("table3_zeus_defects", text)

    # Wire-recovered defect flags must match the injected profiles for
    # the unambiguous defect classes.
    exact_rows = (
        "rnd_range", "ttl_range", "lop_range", "session_range",
        "random_source", "source_entropy", "abnormal_lookup",
        "protocol_logic", "encryption", "hard_hitter",
    )
    mismatches = []
    for crawler, finding in zip(found, column_findings):
        for defect in exact_rows:
            injected = getattr(crawler.profile, defect)
            if finding.has(defect) != injected:
                mismatches.append((crawler.name, defect, injected))
    assert not mismatches, mismatches

    # Aggregate counts recovered from traffic must equal the injected
    # aggregates over the observed columns.  (The injected fleet-wide
    # aggregates themselves are locked to the Section 4.1 prose counts
    # -- 14/10/10/11/3/5/7/17/9 -- by tests/workloads/test_profiles.py.)
    counts = {}
    for finding in column_findings:
        for defect in finding.defects:
            counts[defect] = counts.get(defect, 0) + 1
    expected = {}
    for crawler in found:
        for defect in crawler.profile.defect_names():
            expected[defect] = expected.get(defect, 0) + 1
    for row in exact_rows:
        assert counts.get(row, 0) == expected.get(row, 0), row

    # Coverage row: the fleet reproduces the published spread (the
    # measured value is contact fraction x sensor-discovery rate, so
    # slightly below each profile's nominal coverage).
    coverages = [finding.coverage for finding in column_findings]
    assert max(coverages) >= 0.8
    assert sum(1 for c in coverages if c >= 0.15) >= 16


def test_zeus_sensor_fleet_saw_background_population(zeus_flagship):
    """Sanity: the capture contains organic bot traffic, not only
    crawlers -- otherwise FP analysis would be vacuous."""
    dataset = zeus_flagship.dataset
    non_crawler_ips = dataset.ips_seen() - zeus_flagship.fleet_ips - zeus_flagship.distributed_ips
    assert len(non_crawler_ips) > 500
