"""Table 1: anti-recon measures observed in P2P botnets.

Regenerates the qualitative matrix from the family registry, and
exercises the three *active* attack classes in micro-simulations so
the table is backed by working code, not hand-typed strings.
"""

import random

from repro.analysis.tables import render_table1
from repro.botnets.antirecon import (
    AutoBlacklister,
    DisinformationPolicy,
    RetaliationTracker,
)
from repro.botnets.families import FAMILIES, FAMILY_ORDER, Blacklisting
from repro.net.address import parse_ip
from repro.net.transport import Endpoint


def test_table1_matrix(benchmark, exhibit_writer):
    text = benchmark(render_table1)
    exhibit_writer("table1_antirecon", text)
    # Shape checks against the paper's Table 1.
    assert "Zeus" in text and "Goodcount" in text
    for family in FAMILY_ORDER:
        assert family in text
    assert FAMILIES["Zeus"].blacklisting == Blacklisting.AUTO_AND_STATIC
    assert FAMILIES["Storm"].ip_filter.value == "-"


def test_auto_blacklisting_attack(benchmark):
    """Zeus's frequency-based blacklisting: hard hitters blocked,
    NATed aggregates spared (Section 3.2)."""

    def run():
        abl = AutoBlacklister(window=60.0, max_requests=6)
        crawler_ip = parse_ip("99.0.0.1")
        nat_ip = parse_ip("60.0.0.1")
        for i in range(100):
            abl.record(crawler_ip, i * 1.0)  # hard hitter
        for cycle in range(48):
            for bot in range(4):  # 4 NATed bots, polite cycles
                abl.record(nat_ip, cycle * 1800.0 + bot * 3.0)
        return abl

    abl = benchmark(run)
    assert abl.is_blocked(parse_ip("99.0.0.1"))
    assert not abl.is_blocked(parse_ip("60.0.0.1"))


def test_disinformation_attack(benchmark):
    """Peer-list pollution with junk addresses (Section 3.3)."""
    entries = [
        (bytes([i]) * 20, Endpoint(parse_ip("25.0.0.1") + i, 2000)) for i in range(10)
    ]

    def run():
        policy = DisinformationPolicy(random.Random(0), junk_ratio=0.3)
        return [policy.pollute(list(entries)) for _ in range(100)]

    batches = benchmark(run)
    junk_space = DisinformationPolicy(random.Random(0)).junk_space
    polluted = sum(
        1 for batch in batches for _, endpoint in batch if endpoint.ip in junk_space
    )
    assert polluted >= 100  # ~3 forged per batch


def test_retaliation_attack(benchmark):
    """DDoS retaliation windows against identified recon hosts
    (Section 3.4)."""

    def run():
        tracker = RetaliationTracker(attack_duration=3600.0)
        for index in range(50):
            tracker.launch(time=index * 100.0, target_ip=parse_ip("99.0.0.1") + index)
        return tracker

    tracker = benchmark(run)
    assert len(tracker.targets()) == 50
    assert tracker.under_attack(parse_ip("99.0.0.1"), now=1800.0)
