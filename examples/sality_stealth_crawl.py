#!/usr/bin/env python3
"""Stealthy-crawling tradeoffs on Sality (paper Sections 5 and 6).

Runs three crawls of the same simulated Sality botnet in parallel --
aggressive, half-suspend-cycle, and full-suspend-cycle -- plus a
contact-ratio-limited crawl, and prints the coverage each achieves
over time (the Figure 3b / 4b story: Sality's single-entry peer
responses make frequency limiting devastating).

Run:  python examples/sality_stealth_crawl.py
"""

from repro.analysis.coverage import relative_coverage
from repro.analysis.tables import render_series_figure
from repro.core.crawler import SalityCrawler
from repro.core.defects import SalityDefectProfile
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR, MINUTE
from repro.workloads.population import sality_config
from repro.workloads.scenarios import build_sality_scenario

SUSPEND = 40 * MINUTE
# Simulator scale note: any crawl eventually exhausts a few-hundred-bot
# population (the live Sality network's 900k bots never saturate), so
# the frequency effect is measured at the moment the aggressive crawl
# completes -- "when the fast crawl is done, how far behind are the
# polite ones?" (see EXPERIMENTS.md).
CRAWL_HOURS = 4

POLICIES = {
    "aggressive": StealthPolicy(per_target_interval=6 * MINUTE, requests_per_target=40),
    "half cycle": StealthPolicy(per_target_interval=SUSPEND / 2, requests_per_target=12),
    "full cycle": StealthPolicy(per_target_interval=SUSPEND, requests_per_target=6),
    "ratio 1/4": StealthPolicy(
        per_target_interval=6 * MINUTE, requests_per_target=40, contact_ratio=4
    ),
}


def main() -> None:
    print("=== building a simulated Sality v3 botnet ===")
    scenario = build_sality_scenario(
        sality_config("small", master_seed=3), sensor_count=8, announce_hours=2.0
    )
    net = scenario.net
    print(f"population: {len(net.bots)} bots ({len(net.routable_bots)} routable)")
    print(f"peer lists hold up to {net.sconfig.sality.peer_list_capacity} entries; "
          "each exchange returns ONE entry")

    crawlers = {}
    for index, (label, policy) in enumerate(POLICIES.items()):
        crawler = SalityCrawler(
            name=label,
            endpoint=Endpoint(parse_ip(f"99.{index}.0.1"), 7000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=net.rngs.fork(f"crawler-{label}").stream("crawl"),
            policy=policy,
            profile=SalityDefectProfile(name=label),
        )
        crawler.start(net.bootstrap_sample(5, seed=40 + index))
        crawlers[label] = crawler

    print(f"\nrunning all {len(crawlers)} crawls in parallel for "
          f"{CRAWL_HOURS} simulated hours ...")
    scenario.run_for(CRAWL_HOURS * HOUR)

    until = net.scheduler.now
    series = {
        label: crawler.report.coverage_series(until=until, bucket=30 * MINUTE)
        for label, crawler in crawlers.items()
    }
    print()
    print(render_series_figure("Bots found over time (cf. paper Fig. 3b/4b)", series))

    # Checkpoint: the moment the aggressive crawl is essentially done.
    aggressive = crawlers["aggressive"].report
    checkpoint = scenario.measurement_start
    while (
        checkpoint < until
        and aggressive.ips_found_by(checkpoint) < 0.9 * aggressive.distinct_ips
    ):
        checkpoint += 60.0
    base = max(1, aggressive.ips_found_by(checkpoint))
    offset_min = (checkpoint - scenario.measurement_start) / 60.0
    print(f"\ncoverage relative to the aggressive crawl at +{offset_min:.0f} min:")
    for label, crawler in crawlers.items():
        rel = crawler.report.ips_found_by(checkpoint) / base
        print(f"  {label:<11} {rel * 100:5.1f}%   "
              f"({crawler.report.requests_sent} requests total)")
    print("\nThe paper measured 11% (half cycle) and 7% (full cycle) for "
          "Sality --\nfrequency limiting collapses coverage because every "
          "response carries one peer.")


if __name__ == "__main__":
    main()
