#!/usr/bin/env python3
"""Internet-wide scanning as a recon alternative (paper Section 7).

Prints the per-family susceptibility matrix (Table 5), then actually
runs a ZMap-style sweep of a simulated address block: it finds the
ZeroAccess population on its fixed port, refuses to scan GameOver Zeus
(no universal probe exists under destination-keyed encryption), and
shows the probe-count blowup that makes wide port ranges impractical.

Run:  python examples/internet_scan.py
"""

import random

from repro.analysis.tables import render_table5
from repro.core.scanning import (
    InternetScanner,
    ProbeResponder,
    ScanUnsupportedError,
)
from repro.net.address import Subnet, parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.scheduler import Scheduler


def main() -> None:
    print(render_table5())

    print("\n=== live sweep: ZeroAccess on its fixed port ===")
    scheduler = Scheduler()
    transport = Transport(
        scheduler, random.Random(0), config=TransportConfig(loss_rate=0.0)
    )
    block = Subnet.parse("80.0.0.0/24")
    rng = random.Random(1)
    infected = rng.sample(list(block), 30)
    for ip in infected:
        ProbeResponder(Endpoint(ip, 16471), transport)
    scanner = InternetScanner(
        endpoint=Endpoint(parse_ip("90.0.0.1"), 40000),
        transport=transport,
        scheduler=scheduler,
        rng=random.Random(2),
        probes_per_second=50_000,
    )
    result = scanner.scan("ZeroAccess", [block])
    print(f"addresses probed: {result.addresses_probed}")
    print(f"probes sent:      {result.probes_sent} (one port per host)")
    print(f"infected hosts:   {result.hosts_found} / {len(infected)} planted")

    print("\n=== GameOver Zeus: scanning is impossible ===")
    try:
        scanner.scan("Zeus", [block])
    except ScanUnsupportedError as error:
        print(f"refused: {error}")

    print("\n=== Sality: the port-range blowup ===")
    try:
        scanner.scan("Sality", [block])
    except ScanUnsupportedError as error:
        print(f"refused: {error}")
    forced = InternetScanner(
        endpoint=Endpoint(parse_ip("90.0.0.2"), 40000),
        transport=transport,
        scheduler=scheduler,
        rng=random.Random(3),
        probes_per_second=10_000_000,
    )
    tiny = Subnet.parse("80.0.1.0/30")
    result = forced.scan("Sality", [tiny], allow_wide_port_ranges=True)
    print(f"forcing it anyway on just {tiny.size} hosts costs "
          f"{result.probes_sent:,} probes -- {result.probes_sent // tiny.size:,} "
          "ports per host")
    print("\nScanning suits fixed-port families only, finds no NATed bots "
          "and no edges,\nand should at most bootstrap a crawl (Section 8.4).")


if __name__ == "__main__":
    main()
