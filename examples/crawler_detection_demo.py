#!/usr/bin/env python3
"""The distributed crawler-detection algorithm, step by step
(paper Section 4.3), including Byzantine leaders.

Walks one detection round over a simulated Zeus botnet: signed round
announcement, push-gossip propagation over the routable overlay,
identifier-bit group partitioning, hard-hitter aggregation, leader
voting -- then repeats the vote with adversarial leaders injected by
the "analysts" to show the |A| < n x m tolerance boundary.

Run:  python examples/crawler_detection_demo.py
"""

import random

from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.detection import DetectionConfig, SensorLogDataset
from repro.core.detection.coordinator import ParticipantReport, run_round
from repro.core.detection.rounds import AnnouncementSigner, RoundAnnouncement, push_gossip
from repro.core.detection.voting import LeaderBehavior
from repro.core.stealth import StealthPolicy
from repro.net.address import format_ip, parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def main() -> None:
    print("=== distributed crawler detection (Section 4.3) ===")
    scenario = build_zeus_scenario(
        zeus_config("small", master_seed=11), sensor_count=64, announce_hours=2.0
    )
    net = scenario.net
    crawler = ZeusCrawler(
        name="target-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(1),
        policy=StealthPolicy(per_target_interval=15.0, requests_per_target=3),
        profile=ZeusDefectProfile(name="clean"),  # syntactically perfect!
    )
    crawler.start(net.bootstrap_sample(8, seed=3))
    scenario.run_for(8 * HOUR)
    print(f"crawler ran 8 sim-hours: {crawler.report.requests_sent} requests, "
          f"{crawler.report.distinct_ips} IPs mapped, zero protocol defects")

    print("\n--- step 1: signed round announcement via push gossip ---")
    signer = AnnouncementSigner(b"botmaster-command-key")
    announcement = signer.sign(
        RoundAnnouncement(
            round_id=1,
            issued_at=net.scheduler.now,
            bit_positions=(3, 48, 91),
            leaders=(),
        )
    )
    assert signer.verify(announcement, now=net.scheduler.now)
    graph = net.connectivity_graph()
    routable = {bot.node_id for bot in net.routable_bots}
    origin = next(iter(routable))
    stats = push_gossip(graph, routable, origin, random.Random(5), fanout=4)
    print(f"gossip reached {len(stats.reached)}/{len(routable)} routable bots "
          f"in {stats.hops} hops ({stats.messages_sent} messages)")

    print("\n--- step 2: groups, aggregation, honest vote ---")
    dataset = SensorLogDataset.from_zeus_sensors(
        scenario.sensors, since=scenario.measurement_start
    )
    participants = list(dataset.participants)
    config = DetectionConfig(group_bits=3, threshold=0.10)
    result = run_round(participants, config, random.Random(7))
    print(f"groups formed: {len(result.verdicts)} "
          f"(sizes {sorted(result.group_sizes().values())})")
    print(f"bit positions sampled: {result.bit_positions}")
    for index, verdict in sorted(result.verdicts.items()):
        flagged = ", ".join(format_ip(ip) for ip in sorted(verdict.suspicious)) or "-"
        print(f"  group {index}: {verdict.group_size} members, "
              f"needs {verdict.threshold_count} reporters, flagged: {flagged}")
    print(f"majority-vote classification: "
          f"{[format_ip(ip) for ip in sorted(result.classified)] or 'nothing'}")
    assert crawler.endpoint.ip in result.classified

    print("\n--- step 3: the analysts strike back (Byzantine leaders) ---")
    print("suppression attack (adversarial leaders whitelist the crawler):")
    for adversaries in (2, 3, 4, 5):
        behaviors = {index: LeaderBehavior.SUPPRESS for index in range(adversaries)}
        byz = run_round(
            participants, config, random.Random(7), leader_behaviors=behaviors
        )
        caught = crawler.endpoint.ip in byz.classified
        print(f"  {adversaries}/8 suppressing leaders: crawler "
              f"{'still detected' if caught else 'WHITEWASHED'}")
    innocent = parse_ip("25.99.0.1")
    print("framing attack (adversarial leaders blacklist an innocent IP):")
    for adversaries in (2, 4, 5):
        behaviors = {index: LeaderBehavior.FRAME for index in range(adversaries)}
        byz = run_round(
            participants,
            config,
            random.Random(7),
            leader_behaviors=behaviors,
            framed_keys=[innocent],
        )
        framed = innocent in byz.classified
        print(f"  {adversaries}/8 framing leaders: innocent "
              f"{'FRAMED' if framed else 'safe'}")
    print("\nA majority vote over 8 leaders needs 5 votes: up to 3 "
          "suppressors or 4 framers\nare tolerated -- the |A| < n x m "
          "reliability bound of Section 4.3.")


if __name__ == "__main__":
    main()
