#!/usr/bin/env python3
"""Quickstart: crawl a simulated GameOver Zeus botnet and detect the
crawler from sensor logs.

Builds a small Zeus network, injects a handful of full-protocol
sensors, runs one (deliberately sloppy) crawler for a few simulated
hours, then shows both sides of the paper:

* the recon side -- what the crawler mapped;
* the botmaster side -- the anomalies the crawler leaked and the
  coverage-based detection verdict.

Run:  python examples/quickstart.py
"""

import random

from repro.core.anomaly import ZeusAnomalyAnalyzer
from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.detection import DetectionConfig, SensorLogDataset, evaluate_detection
from repro.core.stealth import StealthPolicy
from repro.net.address import format_ip, parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def main() -> None:
    print("=== building a simulated GameOver Zeus botnet ===")
    scenario = build_zeus_scenario(
        zeus_config("tiny", master_seed=7), sensor_count=16, announce_hours=2.0
    )
    net = scenario.net
    print(f"population: {len(net.bots)} bots "
          f"({len(net.routable_bots)} routable, {len(net.non_routable_bots)} NATed)")
    print(f"sensors injected: {len(scenario.sensors)} (announced for 2 sim-hours)")

    print("\n=== launching a crawler (hard hitter, fixed padding) ===")
    crawler = ZeusCrawler(
        name="demo-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(1),
        policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
        profile=ZeusDefectProfile(name="demo", lop_range=True, hard_hitter=True,
                                  protocol_logic=True),
    )
    crawler.start(net.bootstrap_sample(5, seed=1))
    scenario.run_for(6 * HOUR)

    report = crawler.report
    routable_ips = {bot.endpoint.ip for bot in net.routable_bots}
    print(f"requests sent:        {report.requests_sent}")
    print(f"distinct IPs found:   {report.distinct_ips}")
    print(f"routable bots found:  {len(set(report.first_seen_ip) & routable_ips)}"
          f" / {len(routable_ips)}")
    print(f"verified (responding) bots: {len(report.verified_bots)}")
    print(f"edges collected:      {len(report.edges)}")
    natted_found = len(
        {bot.endpoint.ip for bot in net.non_routable_bots} & set(report.first_seen_ip)
    )
    print(f"NATed bots *contacted*: 0 by construction (learned {natted_found} addresses "
          "it cannot verify)")

    print("\n=== the botmaster's view: sensor-log anomaly analysis ===")
    findings = ZeusAnomalyAnalyzer().analyze(scenario.sensors)
    for finding in findings:
        if finding.defects:
            print(f"source {format_ip(finding.ip)}: coverage "
                  f"{finding.coverage * 100:.0f}% of sensors, defects: "
                  f"{', '.join(finding.defects)}")

    print("\n=== coverage-based (syntax-agnostic) crawler detection ===")
    dataset = SensorLogDataset.from_zeus_sensors(
        scenario.sensors, since=scenario.measurement_start
    )
    result = evaluate_detection(
        dataset,
        crawler_ips={crawler.endpoint.ip},
        # Toy scale: 16 sensors in 4 groups of 4; t=30% means a source
        # must hit 2 of the 4 sensors in most groups -- only the
        # crawler does.  (Paper scale uses |G|=8 and t=1..5%.)
        config=DetectionConfig(group_bits=2, threshold=0.30),
        rng=random.Random(2),
    )
    verdict = "DETECTED" if result.detection_rate == 1.0 else "evaded"
    print(f"crawler {crawler.endpoint}: {verdict} "
          f"(false positives: {result.false_positives})")


if __name__ == "__main__":
    main()
