#!/usr/bin/env python3
"""Pre-takedown reconnaissance of GameOver Zeus: crawler vs sensors
(paper Sections 2, 4.2, 8.2 / Table 6).

A sinkholing operation needs two things: the node population
(including the 60-87% NATed majority) and the connectivity edges that
decide which peer-list entries to poison.  This example runs the full
recon toolbox against one simulated Zeus botnet:

* a protocol-adherent crawler  -- finds routable bots + edges;
* passive sensors              -- find NATed bots, no edges;
* PLR-augmented sensors        -- NATed bots *and* edges;

then hunts the in-the-wild defective sensors of Section 4.2 by
in-degree ranking + active probing.

Run:  python examples/zeus_takedown_recon.py
"""

import random

from repro.analysis.tables import render_table6
from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.sensorhunt import SensorProber, rank_by_in_degree
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario
from repro.workloads.sensor_profiles import ZEUS_SENSOR_PROFILES


def main() -> None:
    print("=== GameOver Zeus pre-takedown recon ===")
    # Half the sensor fleet passive, half augmented with active
    # peer-list requests; plus the 10 defective in-the-wild sensor
    # organizations of Section 4.2 to hunt later.
    scenario = build_zeus_scenario(
        zeus_config("tiny", master_seed=5),
        sensor_count=12,
        announce_hours=2.0,
        active_peer_list_requests=True,
    )
    net = scenario.net
    natted_ips = {bot.endpoint.ip for bot in net.non_routable_bots}
    routable_ips = {bot.endpoint.ip for bot in net.routable_bots}
    print(f"population: {len(net.bots)} bots, {len(natted_ips)} NATed "
          f"({len(natted_ips) / len(net.bots) * 100:.0f}%)")

    crawler = ZeusCrawler(
        name="takedown-crawler",
        endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(1),
        policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
        profile=ZeusDefectProfile(name="clean"),
    )
    crawler.start(net.bootstrap_sample(5, seed=2))
    scenario.run_for(10 * HOUR)

    print("\n--- crawler results ---")
    report = crawler.report
    print(f"routable bots verified: "
          f"{len({report.bot_endpoints[b].ip for b in report.verified_bots} & routable_ips)}"
          f" / {len(routable_ips)}")
    print(f"NATed bots verified:    0 (cannot be contacted; "
          f"{len(set(report.first_seen_ip) & natted_ips)} unverifiable addresses seen)")
    print(f"edges collected:        {len(report.edges)}")

    print("\n--- sensor results (augmented with active PLRs) ---")
    sensor_seen_nat = set()
    sensor_edges = set()
    for sensor in scenario.sensors:
        sensor_seen_nat |= sensor.observed_ips() & natted_ips
        sensor_edges |= sensor.observed_edges
    print(f"NATed bots heard from:  {len(sensor_seen_nat)} / {len(natted_ips)}")
    print(f"edges collected:        {len(sensor_edges)}")
    print("(passive sensors would report 0 edges; augmentation adds the "
          "crawling component)")

    print("\n--- hunting rival sensors (Section 4.2) ---")
    # Inject the 10 defective in-the-wild sensor organizations.
    from repro.botnets.zeus import protocol as zeus_protocol
    from repro.core.sensor import ZeusSensor

    rivals = []
    for index, profile in enumerate(ZEUS_SENSOR_PROFILES):
        rng = net.rngs.fork(f"rival-{index}").stream("sensor")
        rival = ZeusSensor(
            node_id=f"rival-{index}",
            bot_id=zeus_protocol.random_id(rng),
            endpoint=Endpoint(parse_ip(f"46.{index}.0.1"), 6000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            profile=profile,
            announce_duration=3 * HOUR,
        )
        rival.seed_peers(net.bootstrap_sample(8, seed=300 + index))
        rival.start()
        rivals.append(rival)
    scenario.run_for(8 * HOUR)

    candidates = rank_by_in_degree(list(net.bots.values()), top=30)
    prober = SensorProber(
        endpoint=Endpoint(parse_ip("98.0.0.1"), 9000),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(9),
        current_version=net.zconfig.zeus.version,
    )
    verdicts = prober.probe(candidates)
    rival_endpoints = {rival.endpoint for rival in rivals}
    found = [v for v in verdicts if v.is_sensor_suspect]
    true_hits = [v for v in found if v.candidate.endpoint in rival_endpoints]
    print(f"high-in-degree candidates probed: {len(candidates)}")
    print(f"sensor suspects flagged:          {len(found)} "
          f"({len(true_hits)} are the injected rival sensors)")
    for verdict in true_hits[:4]:
        print(f"  {verdict.candidate.endpoint}: {', '.join(verdict.anomalies)}")

    print()
    print(
        render_table6(
            measured={
                "Crawling": {
                    "Measured edges": str(len(report.edges)),
                    "Measured NATed": "0 verified",
                },
                "Sensor injection": {
                    "Measured edges": str(len(sensor_edges)),
                    "Measured NATed": f"{len(sensor_seen_nat)} heard",
                },
            }
        )
    )


if __name__ == "__main__":
    main()
