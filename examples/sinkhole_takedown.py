#!/usr/bin/env python3
"""End-to-end takedown: recon, then sinkholing (the paper's motivating
use case).

"Attacks against botnets like these are fundamentally based on
knowledge about the composition of the botnet" (Section 1).  This
example makes that dependency measurable: it runs a sinkholing
campaign against a simulated GameOver Zeus botnet twice — once fed a
proper recon product (a crawl of the population), once fed only the
bootstrap peer list — and compares capture.  It also shows the /20
peer-list filter acting as takedown resistance.

Run:  python examples/sinkhole_takedown.py
"""

import random

from repro.core.crawler import ZeusCrawler
from repro.core.defects import ZeusDefectProfile
from repro.core.sinkhole import SinkholeCampaign, spread_endpoints
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR, MINUTE
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario


def run_campaign(seed, targets_from_recon, per_slash20=True):
    scenario = build_zeus_scenario(
        zeus_config("tiny", master_seed=seed), sensor_count=4, announce_hours=1.0
    )
    net = scenario.net

    if targets_from_recon:
        crawler = ZeusCrawler(
            name="recon",
            endpoint=Endpoint(parse_ip("99.0.0.1"), 7000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=random.Random(1),
            policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4),
            profile=ZeusDefectProfile(name="recon"),
        )
        crawler.start(net.bootstrap_sample(5, seed=1))
        scenario.run_for(4 * HOUR)
        crawler.stop()
        targets = [
            (bot_id, crawler.report.bot_endpoints[bot_id])
            for bot_id in crawler.report.verified_bots
        ]
        label = f"recon-driven ({len(targets)} verified targets)"
    else:
        scenario.run_for(4 * HOUR)
        targets = net.bootstrap_sample(5, seed=1)
        label = f"blind ({len(targets)} bootstrap targets only)"

    campaign = SinkholeCampaign(
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(9),
        sinkhole_endpoints=spread_endpoints(
            parse_ip("44.0.0.1"), 8, per_slash20=per_slash20
        ),
        poison_interval=10 * MINUTE,
    )
    campaign.start(targets)
    scenario.run_for(8 * HOUR)
    snapshot = campaign.capture_snapshot(net.routable_bots)
    return label, snapshot


def main() -> None:
    print("=== sinkholing GameOver Zeus: recon quality decides reach ===\n")
    for targets_from_recon in (True, False):
        label, snap = run_campaign(90, targets_from_recon)
        print(f"{label}:")
        print(f"  bots holding a sinkhole entry: {snap.bots_with_sinkhole}"
              f"/{snap.total_bots} ({snap.reach * 100:.0f}%)")
        print(f"  mean sinkhole share of peer lists: "
              f"{snap.mean_sinkhole_share * 100:.1f}%\n")

    print("=== the /20 peer-list filter as takedown resistance ===\n")
    for per_slash20, note in ((True, "8 sinkholes in 8 distinct /20s"),
                              (False, "8 sinkholes packed into one /20")):
        label, snap = run_campaign(91, True, per_slash20=per_slash20)
        print(f"{note}:")
        print(f"  mean sinkhole share of peer lists: "
              f"{snap.mean_sinkhole_share * 100:.1f}%\n")
    print("Zeus admits one peer-list entry per /20, so a single-subnet\n"
          "campaign occupies at most 1 of ~50 slots per bot -- takedown\n"
          "infrastructure needs subnet diversity, exactly like stealthy\n"
          "distributed crawlers (Section 5.3).")


if __name__ == "__main__":
    main()
