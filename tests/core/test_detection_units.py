"""Unit tests for the distributed-detection building blocks."""

import random

import pytest

from repro.botnets.graph import ConnectivityGraph
from repro.core.detection.aggregation import (
    MemberReport,
    aggregate_group,
    required_reporters,
)
from repro.core.detection.groups import (
    TreeOverlay,
    assign_groups,
    build_tree,
    elect_leaders,
    group_of,
    sample_bit_positions,
)
from repro.core.detection.rounds import (
    AnnouncementSigner,
    RoundAnnouncement,
    push_gossip,
)
from repro.core.detection.voting import (
    LeaderBehavior,
    LeaderVote,
    majority_count,
    reliability_bound,
    retrieve_from_leaders,
    tally_votes,
)
from repro.core.detection.coordinator import ParticipantReport
from repro.net.address import parse_ip


class TestAnnouncements:
    def make(self, signer):
        ann = RoundAnnouncement(
            round_id=7, issued_at=100.0, bit_positions=(1, 5, 9), leaders=("a", "b")
        )
        return signer.sign(ann)

    def test_sign_verify_roundtrip(self):
        signer = AnnouncementSigner(b"botmaster-key")
        signed = self.make(signer)
        assert signer.verify(signed, now=200.0)

    def test_forged_signature_rejected(self):
        signer = AnnouncementSigner(b"botmaster-key")
        attacker = AnnouncementSigner(b"analyst-key")
        forged = self.make(attacker)
        assert not signer.verify(forged, now=200.0)

    def test_tampered_payload_rejected(self):
        signer = AnnouncementSigner(b"botmaster-key")
        signed = self.make(signer)
        tampered = RoundAnnouncement(
            round_id=signed.round_id,
            issued_at=signed.issued_at,
            bit_positions=(0, 1, 2),  # changed
            leaders=signed.leaders,
            signature=signed.signature,
        )
        assert not signer.verify(tampered, now=200.0)

    def test_replay_rejected(self):
        """Timestamping prevents replaying old announcements."""
        signer = AnnouncementSigner(b"botmaster-key")
        signed = self.make(signer)
        assert not signer.verify(signed, now=100.0 + 7200.0, max_age=3600.0)

    def test_future_dated_rejected(self):
        signer = AnnouncementSigner(b"botmaster-key")
        signed = self.make(signer)
        assert not signer.verify(signed, now=50.0)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            AnnouncementSigner(b"")


class TestGossip:
    def dense_graph(self, n=50, out_degree=6, seed=0):
        rng = random.Random(seed)
        graph = ConnectivityGraph()
        nodes = [f"bot-{i}" for i in range(n)]
        for node in nodes:
            for target in rng.sample([m for m in nodes if m != node], out_degree):
                graph.add_edge(node, target)
        return graph, set(nodes)

    def test_gossip_reaches_most_routable_bots(self):
        graph, routable = self.dense_graph()
        stats = push_gossip(graph, routable, "bot-0", random.Random(1), fanout=4)
        assert stats.coverage(len(routable)) > 0.9
        assert stats.messages_sent > 0
        assert stats.hops >= 2

    def test_gossip_excludes_non_routable(self):
        graph, routable = self.dense_graph()
        natted = {"bot-1", "bot-2", "bot-3"}
        stats = push_gossip(graph, routable - natted, "bot-0", random.Random(1))
        assert not (stats.reached & natted)

    def test_origin_must_be_routable(self):
        graph, routable = self.dense_graph()
        with pytest.raises(ValueError):
            push_gossip(graph, routable - {"bot-0"}, "bot-0", random.Random(1))


class TestGroups:
    def test_bit_positions_sorted_unique(self):
        positions = sample_bit_positions(5, random.Random(0))
        assert list(positions) == sorted(set(positions))
        assert len(positions) == 5

    def test_bit_positions_validation(self):
        with pytest.raises(ValueError):
            sample_bit_positions(-1, random.Random(0))
        with pytest.raises(ValueError):
            sample_bit_positions(200, random.Random(0), id_bits=160)

    def test_group_of_uses_named_bits(self):
        # id = 0b1010... ; positions 0 and 1 -> group 0b10 = 2
        bot_id = bytes([0b10100000]) + bytes(19)
        assert group_of(bot_id, (0, 1)) == 0b10
        assert group_of(bot_id, (1, 2)) == 0b01

    def test_group_of_zero_bits_single_group(self):
        assert group_of(b"\xff" * 20, ()) == 0

    def test_group_of_out_of_range_position(self):
        with pytest.raises(ValueError):
            group_of(b"\x00" * 4, (40,))

    def test_assignment_partitions_uniformly(self):
        rng = random.Random(3)
        members = [
            ParticipantReport(node_id=f"n{i}", bot_id=bytes(rng.getrandbits(8) for _ in range(20)), requests=())
            for i in range(800)
        ]
        positions = sample_bit_positions(3, rng)
        groups = assign_groups(members, positions)
        assert len(groups) == 8
        assert sum(len(g) for g in groups.values()) == 800
        sizes = [len(g) for g in groups.values()]
        assert min(sizes) > 50  # roughly uniform

    def test_leader_election_picks_members(self):
        rng = random.Random(3)
        members = [
            ParticipantReport(node_id=f"n{i}", bot_id=bytes([i]) + bytes(19), requests=())
            for i in range(16)
        ]
        groups = assign_groups(members, (0, 1))
        leaders = elect_leaders(groups, rng)
        for index, leader in leaders.items():
            assert leader in {m.node_id for m in groups[index]}

    def test_tree_overlay_bounded_fanout(self):
        members = [f"n{i}" for i in range(50)]
        tree = build_tree(members, leader="n0", fanout=4)
        assert tree.size == 50
        for node in members:
            assert len(tree.children_of(node)) <= 4
        assert tree.depth() >= 2

    def test_tree_leader_must_be_member(self):
        with pytest.raises(ValueError):
            build_tree(["a", "b"], leader="z")

    def test_tree_single_member(self):
        tree = build_tree(["solo"], leader="solo")
        assert tree.size == 1
        assert tree.depth() == 0


IP_A = parse_ip("99.0.0.1")
IP_B = parse_ip("25.0.0.7")


class TestAggregation:
    def reports(self, crawler_fraction=1.0, count=20):
        """Members all see bot IP_B rarely; a fraction saw IP_A."""
        out = []
        for i in range(count):
            requests = [(10.0, IP_B)] if i == 0 else []
            if i < crawler_fraction * count:
                requests.append((20.0, IP_A))
            out.append(MemberReport(node_id=f"m{i}", requests=tuple(requests)))
        return out

    def test_threshold_counts(self):
        assert required_reporters(64, 0.01) == 1
        assert required_reporters(64, 0.02) == 2
        assert required_reporters(64, 0.05) == 4
        assert required_reporters(64, 0.10) == 7
        assert required_reporters(0, 0.05) == 1

    def test_wide_coverage_flagged(self):
        # 20 members at t=10% -> 2 reporters required; the lone IP_B
        # reporter stays clean, the 20-reporter IP_A is flagged.
        verdict = aggregate_group(0, self.reports(), threshold=0.10, since=0.0, until=100.0)
        assert IP_A in verdict.suspicious
        assert IP_B not in verdict.suspicious

    def test_narrow_coverage_not_flagged(self):
        verdict = aggregate_group(
            0, self.reports(crawler_fraction=0.1), threshold=0.25, since=0.0, until=100.0
        )
        assert IP_A not in verdict.suspicious

    def test_history_window_respected(self):
        verdict = aggregate_group(0, self.reports(), threshold=0.05, since=30.0, until=100.0)
        assert verdict.suspicious == set()

    def test_subnet_aggregation_merges_sources(self):
        """Two /24-distributed crawler addresses fold into one /20 key."""
        a1, a2 = parse_ip("99.0.1.1"), parse_ip("99.0.2.1")  # same /20
        reports = [
            MemberReport(node_id=f"m{i}", requests=((5.0, a1 if i % 2 else a2),))
            for i in range(20)
        ]
        per_ip = aggregate_group(0, reports, threshold=0.9, since=0.0, until=10.0, prefix=32)
        assert per_ip.suspicious == set()  # each address under threshold
        per_20 = aggregate_group(0, reports, threshold=0.9, since=0.0, until=10.0, prefix=20)
        assert len(per_20.suspicious) == 1  # folded key crosses it

    def test_duplicate_requests_counted_once_per_member(self):
        reports = [
            MemberReport(node_id="m0", requests=tuple((float(t), IP_A) for t in range(50)))
        ] + [MemberReport(node_id=f"m{i}", requests=()) for i in range(1, 20)]
        verdict = aggregate_group(0, reports, threshold=0.10, since=0.0, until=100.0)
        assert verdict.reporter_counts[IP_A] == 1
        assert IP_A not in verdict.suspicious

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_group(0, [], threshold=0.0, since=0.0, until=1.0)
        with pytest.raises(ValueError):
            aggregate_group(0, [], threshold=0.05, since=0.0, until=1.0, prefix=4)


class TestVoting:
    def verdicts(self, flag_in_groups, total_groups=8):
        from repro.core.detection.aggregation import GroupVerdict

        out = []
        for index in range(total_groups):
            verdict = GroupVerdict(group_index=index, group_size=10)
            if index in flag_in_groups:
                verdict.suspicious = {IP_A}
            out.append(verdict)
        return out

    def test_majority_classifies(self):
        votes = [LeaderVote.from_verdict(v) for v in self.verdicts({0, 1, 2, 3, 4})]
        assert tally_votes(votes) == {IP_A}

    def test_minority_does_not_classify(self):
        votes = [LeaderVote.from_verdict(v) for v in self.verdicts({0, 1, 2})]
        assert tally_votes(votes) == set()

    def test_exact_half_is_not_majority(self):
        votes = [LeaderVote.from_verdict(v) for v in self.verdicts({0, 1, 2, 3})]
        assert tally_votes(votes) == set()

    def test_majority_count(self):
        assert majority_count(8, 0.5) == 5
        assert majority_count(7, 0.5) == 4

    def test_suppressing_leaders_tolerated_below_majority(self):
        verdicts = self.verdicts({0, 1, 2, 3, 4, 5, 6, 7})
        votes = [
            LeaderVote.from_verdict(
                v, behavior=LeaderBehavior.SUPPRESS if v.group_index < 3 else LeaderBehavior.HONEST
            )
            for v in verdicts
        ]
        assert tally_votes(votes) == {IP_A}

    def test_framing_leaders_tolerated_below_majority(self):
        verdicts = self.verdicts(set())
        votes = [
            LeaderVote.from_verdict(
                v,
                behavior=LeaderBehavior.FRAME if v.group_index < 3 else LeaderBehavior.HONEST,
                framed_keys=[IP_B],
            )
            for v in verdicts
        ]
        assert IP_B not in tally_votes(votes)

    def test_framing_majority_wins(self):
        """If adversaries do hold a majority, the algorithm fails --
        exactly the |A| < n*m boundary."""
        verdicts = self.verdicts(set())
        votes = [
            LeaderVote.from_verdict(
                v,
                behavior=LeaderBehavior.FRAME if v.group_index < 5 else LeaderBehavior.HONEST,
                framed_keys=[IP_B],
            )
            for v in verdicts
        ]
        assert IP_B in tally_votes(votes)

    def test_retrieval_majority_filter(self):
        honest = [{IP_A} for _ in range(6)]
        faulty = [{IP_B} for _ in range(2)]
        result = retrieve_from_leaders(honest + faulty, sample_size=8, rng=random.Random(0))
        assert result == {IP_A}

    def test_retrieval_empty_leaders(self):
        assert retrieve_from_leaders([], sample_size=3, rng=random.Random(0)) == set()

    def test_reliability_bound(self):
        assert reliability_bound(adversarial=2, sample_size=8, majority_fraction=0.5)
        assert not reliability_bound(adversarial=4, sample_size=8, majority_fraction=0.5)

    def test_tally_validation(self):
        with pytest.raises(ValueError):
            tally_votes([LeaderVote(group_index=0, keys=frozenset())], majority_fraction=1.5)
        with pytest.raises(ValueError):
            retrieve_from_leaders([{IP_A}], sample_size=0, rng=random.Random(0))
