"""Unit tests for the individual anomaly rules."""

import random

import pytest

from repro.core.anomaly.encryption import EncryptionRule
from repro.core.anomaly.entropy import (
    is_low_entropy,
    pooled_entropy,
    printable_ratio,
    shannon_entropy,
)
from repro.core.anomaly.frequency import HardHitterRule
from repro.core.anomaly.logic import LookupKeyRule, MessageMixRule, VersionRule
from repro.core.anomaly.range_rules import (
    DispersionRule,
    RangeRule,
    expected_uniform_distinct,
)
from repro.sim.clock import MINUTE

RNG = random.Random(0)


def random_bytes(n):
    return bytes(RNG.getrandbits(8) for _ in range(n))


class TestEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant_is_zero(self):
        assert shannon_entropy(b"\x00" * 100) == 0.0

    def test_uniform_two_symbols_is_one_bit(self):
        assert shannon_entropy(b"\x00\x01" * 50) == pytest.approx(1.0)

    def test_random_data_high(self):
        assert shannon_entropy(random_bytes(4096)) > 7.5

    def test_printable_ratio(self):
        assert printable_ratio(b"HELLO") == 1.0
        assert printable_ratio(b"\x00\x01") == 0.0
        assert printable_ratio(b"") == 0.0

    def test_pooled_entropy_concatenates(self):
        assert pooled_entropy([b"\x00" * 20, b"\x00" * 20]) == 0.0

    def test_low_entropy_ascii_ids(self):
        ids = [b"ACME-MALWARE-LAB-07".ljust(20, b"\x00") for _ in range(3)]
        assert is_low_entropy(ids, min_bytes=20)

    def test_random_hashes_not_low_entropy(self):
        ids = [random_bytes(20) for _ in range(10)]
        assert not is_low_entropy(ids, min_bytes=20)

    def test_insufficient_data_not_judged(self):
        assert not is_low_entropy([b"\x00" * 10], min_bytes=40)

    def test_zeroed_padding_flagged(self):
        assert is_low_entropy([b"\x00" * 30, b"\x00" * 30], min_bytes=40)


class TestRangeRules:
    def test_constrained_detected(self):
        rule = RangeRule(min_samples=10, max_distinct=2)
        assert rule.is_constrained([7] * 50)
        assert rule.is_constrained([7, 8] * 25)

    def test_randomized_not_constrained(self):
        rule = RangeRule(min_samples=10, max_distinct=2)
        values = [RNG.randrange(256) for _ in range(50)]
        assert not rule.is_constrained(values)

    def test_sparse_traffic_not_judged(self):
        rule = RangeRule(min_samples=10, max_distinct=2)
        assert not rule.is_constrained([7] * 9)

    def test_dispersion_detected(self):
        rule = DispersionRule(min_samples=10, max_normal_distinct=8)
        assert rule.is_dispersed(list(range(20)))

    def test_stable_id_not_dispersed(self):
        rule = DispersionRule(min_samples=10, max_normal_distinct=8)
        assert not rule.is_dispersed([1] * 50)

    def test_nat_sized_variation_tolerated(self):
        """A handful of IDs per IP is normal (NATed bots share IPs)."""
        rule = DispersionRule(min_samples=10, max_normal_distinct=8)
        assert not rule.is_dispersed([1, 2, 3, 4] * 10)

    def test_expected_uniform_distinct(self):
        assert expected_uniform_distinct(0, 256) == 0.0
        assert expected_uniform_distinct(1, 256) == pytest.approx(1.0)
        # 50 draws from 256 values: ~45 distinct expected.
        assert 40 < expected_uniform_distinct(50, 256) < 50


class TestEncryptionRule:
    def test_interspersed_garbage_flagged(self):
        rule = EncryptionRule(min_invalid=2, min_valid=1)
        assert rule.is_anomalous(valid_count=10, invalid_count=3)

    def test_pure_noise_not_flagged(self):
        rule = EncryptionRule()
        assert not rule.is_anomalous(valid_count=0, invalid_count=50)

    def test_clean_source_not_flagged(self):
        rule = EncryptionRule()
        assert not rule.is_anomalous(valid_count=50, invalid_count=0)


class TestMessageMixRule:
    def test_bare_plr_stream_flagged(self):
        rule = MessageMixRule(min_samples=10, max_plr_fraction=0.9)
        assert rule.is_anomalous(plr_count=50, total_count=50)

    def test_normal_mix_not_flagged(self):
        rule = MessageMixRule(min_samples=10, max_plr_fraction=0.9)
        assert not rule.is_anomalous(plr_count=10, total_count=30)

    def test_sparse_not_judged(self):
        rule = MessageMixRule(min_samples=10)
        assert not rule.is_anomalous(plr_count=5, total_count=5)


class TestLookupKeyRule:
    def test_randomized_lookups_flagged(self):
        rule = LookupKeyRule(min_samples=5)
        receiver = b"\x01" * 20
        keys = [random_bytes(20) for _ in range(10)]
        assert rule.is_anomalous(keys, receiver)

    def test_correct_lookups_clean(self):
        rule = LookupKeyRule(min_samples=5)
        receiver = b"\x01" * 20
        assert not rule.is_anomalous([receiver] * 10, receiver)

    def test_empty_keys_ignored(self):
        rule = LookupKeyRule(min_samples=5)
        assert not rule.is_anomalous([b""] * 10, b"\x01" * 20)


class TestVersionRule:
    def test_stale_minor_flagged(self):
        rule = VersionRule(min_samples=5)
        assert rule.is_anomalous([4] * 10, current_minor=9)

    def test_current_minor_clean(self):
        rule = VersionRule(min_samples=5)
        assert not rule.is_anomalous([9] * 10, current_minor=9)


class TestHardHitterRule:
    def test_burst_flagged(self):
        rule = HardHitterRule(suspend_cycle=30 * MINUTE, burst_size=3)
        assert rule.is_hard_hitter([0.0, 10.0, 20.0])

    def test_suspend_adherent_clean(self):
        rule = HardHitterRule(suspend_cycle=30 * MINUTE, burst_size=3)
        times = [i * 30 * MINUTE for i in range(48)]
        assert not rule.is_hard_hitter(times)

    def test_half_cycle_clean_for_burst_window(self):
        """Half-suspend crawlers evade *frequency* detection (they
        are caught by out-degree instead)."""
        rule = HardHitterRule(suspend_cycle=30 * MINUTE, burst_size=3)
        times = [i * 15 * MINUTE for i in range(48)]
        assert not rule.is_hard_hitter(times)

    def test_burst_inside_long_history_found(self):
        rule = HardHitterRule(suspend_cycle=30 * MINUTE, burst_size=3)
        times = [0.0, 30 * MINUTE, 60 * MINUTE, 61 * MINUTE, 61.5 * MINUTE, 62 * MINUTE]
        assert rule.is_hard_hitter(times)

    def test_too_few_requests_clean(self):
        rule = HardHitterRule(suspend_cycle=30 * MINUTE, burst_size=3)
        assert not rule.is_hard_hitter([0.0, 1.0])

    def test_unsorted_input_ok(self):
        rule = HardHitterRule(suspend_cycle=30 * MINUTE, burst_size=3)
        assert rule.is_hard_hitter([20.0, 0.0, 10.0])

    def test_median_gap(self):
        rule = HardHitterRule(suspend_cycle=30 * MINUTE)
        assert rule.median_gap([0.0, 10.0, 20.0]) == 10.0
        assert rule.median_gap([5.0]) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            HardHitterRule(suspend_cycle=0)
        with pytest.raises(ValueError):
            HardHitterRule(suspend_cycle=10.0, burst_size=1)


class TestRangeRuleGarbageRobustness:
    def test_few_garbage_samples_do_not_launder_constant_field(self):
        """Wrongly-keyed (invalid-encryption) messages occasionally
        decode to random field values; a few such outliers must not
        hide a constant field (the Table 3 c8 regression)."""
        rule = RangeRule(min_samples=10, max_distinct=2)
        values = [0x00] * 500 + [RNG.randrange(256) for _ in range(6)]
        assert rule.is_constrained(values)

    def test_substantial_noise_defeats_dominance(self):
        rule = RangeRule(min_samples=10, max_distinct=2)
        values = [0x00] * 50 + [RNG.randrange(256) for _ in range(50)]
        assert not rule.is_constrained(values)
