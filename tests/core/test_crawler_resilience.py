"""Resilience tests: pending-request expiry and retry under loss.

The original crawlers leaked one ``_pending`` entry per lost reply
(satellite fix of the robustness PR); these tests pin the bounded
behaviour and the opt-in retry machinery on top of it.
"""

import random

import pytest

from repro.botnets.zeus import protocol as zeus_protocol
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.core.crawler import SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.sensor import ZeusSensor
from repro.core.stealth import StealthPolicy
from repro.faults.retry import CHAOS_RETRY, NO_RETRY, RetryPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.clock import HOUR
from repro.sim.scheduler import Scheduler


def dead_world(seed=0):
    """A transport with nothing bound: every request vanishes."""
    sched = Scheduler()
    transport = Transport(
        sched, random.Random(seed),
        config=TransportConfig(latency_min=0.01, latency_max=0.05, loss_rate=0.0),
    )
    return sched, transport


def ghost_targets(count):
    rng = random.Random(99)
    return [
        (zeus_protocol.random_id(rng), Endpoint(parse_ip(f"25.0.0.{i + 1}"), 1000))
        for i in range(count)
    ]


def make_crawler(sched, transport, retry, policy=None):
    return ZeusCrawler(
        name="resilience",
        endpoint=Endpoint(parse_ip("40.0.0.1"), 7777),
        transport=transport,
        scheduler=sched,
        rng=random.Random(1),
        policy=policy or StealthPolicy(per_target_interval=5.0, requests_per_target=2),
        profile=ZeusDefectProfile(name="test"),
        retry=retry,
    )


def lossy_zeus_net(seed=3, loss=0.5):
    net = ZeusNetwork(
        ZeusNetworkConfig(
            population=80,
            routable_fraction=0.5,
            bootstrap_peers=10,
            master_seed=seed,
            transport=TransportConfig(loss_rate=loss),
        )
    )
    net.build()
    net.start_all()
    net.run_for(HOUR)
    return net


class TestPendingExpiry:
    def test_lost_replies_do_not_leak_pending_entries(self):
        """The leak fix: unanswered requests expire, _pending drains."""
        sched, transport = dead_world()
        crawler = make_crawler(sched, transport, retry=NO_RETRY)
        crawler.start(ghost_targets(8))
        sched.run_until(HOUR)
        assert crawler.pending_requests == 0
        assert crawler.report.requests_expired > 0
        assert crawler.report.retries_sent == 0  # NO_RETRY never re-issues
        assert crawler.report.targets_given_up == 8

    def test_sality_pending_also_bounded(self):
        sched, transport = dead_world()
        crawler = SalityCrawler(
            name="resilience",
            endpoint=Endpoint(parse_ip("40.0.0.1"), 7777),
            transport=transport,
            scheduler=sched,
            rng=random.Random(1),
            policy=StealthPolicy(per_target_interval=5.0, requests_per_target=3),
            profile=SalityDefectProfile(name="test"),
            retry=NO_RETRY,
        )
        targets = [
            (i.to_bytes(4, "big"), Endpoint(parse_ip(f"25.0.1.{i + 1}"), 1000))
            for i in range(6)
        ]
        crawler.start(targets)
        sched.run_until(HOUR)
        assert crawler.pending_requests == 0
        assert crawler.report.requests_expired > 0

    def test_expiry_survives_stop_start_of_sweep(self):
        sched, transport = dead_world()
        crawler = make_crawler(sched, transport, retry=NO_RETRY)
        crawler.start(ghost_targets(3))
        sched.run_until(30.0)
        crawler.stop()
        pending_at_stop = crawler.pending_requests
        sched.run_until(HOUR)
        # Stopped crawler sweeps no more, but state stayed bounded.
        assert crawler.pending_requests == pending_at_stop


class TestRetry:
    def test_retries_reissue_with_backoff_then_give_up(self):
        sched, transport = dead_world()
        policy = RetryPolicy(
            timeout=30.0, max_retries=2, backoff_base=10.0,
            backoff_multiplier=2.0, jitter=0.0,
        )
        crawler = make_crawler(sched, transport, retry=policy)
        crawler.start(ghost_targets(4))
        sched.run_until(HOUR)
        # Every target got exactly max_retries re-issues, then was
        # abandoned; nothing lingers in _pending.
        assert crawler.report.retries_sent == 4 * 2
        assert crawler.report.targets_given_up == 4
        assert crawler.pending_requests == 0

    def test_retry_budget_caps_total_reissues(self):
        sched, transport = dead_world()
        policy = RetryPolicy(
            timeout=30.0, max_retries=5, backoff_base=10.0, jitter=0.0,
            retry_budget=3,
        )
        crawler = make_crawler(sched, transport, retry=policy)
        crawler.start(ghost_targets(10))
        sched.run_until(2 * HOUR)
        assert crawler.report.retries_sent <= 3
        assert crawler.report.targets_given_up == 10
        assert crawler.pending_requests == 0

    def test_retry_recovers_coverage_under_heavy_loss(self):
        """Under 50% loss, a retrying crawler verifies more bots than
        the fire-and-forget baseline on the identical world."""
        policy = StealthPolicy(per_target_interval=15.0, requests_per_target=1)

        net_plain = lossy_zeus_net()
        plain = ZeusCrawler(
            name="plain", endpoint=Endpoint(parse_ip("40.0.0.1"), 7777),
            transport=net_plain.transport, scheduler=net_plain.scheduler,
            rng=net_plain.rngs.stream("crawler"), policy=policy,
            profile=ZeusDefectProfile(name="test"), retry=NO_RETRY,
        )
        plain.start(net_plain.bootstrap_sample(5, seed=1))
        net_plain.run_for(3 * HOUR)

        net_retry = lossy_zeus_net()
        retrying = ZeusCrawler(
            name="retry", endpoint=Endpoint(parse_ip("40.0.0.1"), 7777),
            transport=net_retry.transport, scheduler=net_retry.scheduler,
            rng=net_retry.rngs.stream("crawler"), policy=policy,
            profile=ZeusDefectProfile(name="test"), retry=CHAOS_RETRY,
        )
        retrying.start(net_retry.bootstrap_sample(5, seed=1))
        net_retry.run_for(3 * HOUR)

        assert retrying.report.retries_sent > 0
        assert len(retrying.report.verified_bots) > len(plain.report.verified_bots)
        assert retrying.pending_requests <= len(retrying.report.first_seen_bot)

    def test_response_cancels_retry(self):
        """A target that answers is never retried or given up on."""
        net = lossy_zeus_net(loss=0.0)
        crawler = ZeusCrawler(
            name="clean", endpoint=Endpoint(parse_ip("40.0.0.1"), 7777),
            transport=net.transport, scheduler=net.scheduler,
            rng=net.rngs.stream("crawler"),
            policy=StealthPolicy(per_target_interval=15.0, requests_per_target=2),
            profile=ZeusDefectProfile(name="test"), retry=CHAOS_RETRY,
        )
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(3 * HOUR)
        assert len(crawler.report.verified_bots) > 0
        # NATed bots legitimately never answer and are given up on;
        # a target that responded must never be retried or abandoned.
        responded = [t for t in crawler._targets.values() if t.responded]
        assert responded
        assert all(not t.gave_up for t in responded)
        natted_ids = {bot.bot_id for bot in net.non_routable_bots}
        given_up = {t.bot_id for t in crawler._targets.values() if t.gave_up}
        assert given_up <= natted_ids


class TestSensorProbeRetry:
    def test_active_probe_retries_under_loss(self):
        net = lossy_zeus_net(loss=0.6)
        rng = net.rngs.fork("sensor-x").stream("sensor")
        sensor = ZeusSensor(
            node_id="sensor-x",
            bot_id=zeus_protocol.random_id(rng),
            endpoint=Endpoint(parse_ip("45.0.0.1"), 6000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            announce_duration=4 * HOUR,
            active_peer_list_requests=True,
            retry=RetryPolicy(timeout=60.0, max_retries=2, backoff_base=15.0, jitter=0.0),
        )
        sensor.seed_peers(net.bootstrap_sample(8, seed=77))
        sensor.start()
        net.run_for(4 * HOUR)
        assert sensor.probes_expired > 0
        assert sensor.probe_retries > 0
        # Attempts per probed source stay within the policy.
        assert all(n <= 2 for n in sensor._probe_attempts.values())

    def test_no_retry_sensor_unchanged(self):
        net = lossy_zeus_net(loss=0.6)
        rng = net.rngs.fork("sensor-y").stream("sensor")
        sensor = ZeusSensor(
            node_id="sensor-y",
            bot_id=zeus_protocol.random_id(rng),
            endpoint=Endpoint(parse_ip("45.0.16.1"), 6000),
            transport=net.transport,
            scheduler=net.scheduler,
            rng=rng,
            announce_duration=2 * HOUR,
            active_peer_list_requests=True,
        )
        sensor.seed_peers(net.bootstrap_sample(8, seed=77))
        sensor.start()
        net.run_for(2 * HOUR)
        assert sensor.probe_retries == 0
        assert sensor.probes_expired == 0
