"""Integration tests: crawlers against small simulated botnets."""

import pytest

from repro.botnets.sality.network import SalityNetwork, SalityNetworkConfig
from repro.botnets.zeus.network import ZeusNetwork, ZeusNetworkConfig
from repro.core.crawler import CrawlReport, SalityCrawler, ZeusCrawler
from repro.core.defects import SalityDefectProfile, ZeusDefectProfile
from repro.core.stealth import StealthPolicy
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR


def zeus_net(population=80, seed=3):
    net = ZeusNetwork(
        ZeusNetworkConfig(
            population=population, routable_fraction=0.5, bootstrap_peers=10, master_seed=seed
        )
    )
    net.build()
    net.start_all()
    net.run_for(HOUR)  # settle
    return net


def sality_net(population=80, seed=3):
    net = SalityNetwork(
        SalityNetworkConfig(
            population=population, routable_fraction=0.5, bootstrap_peers=10, master_seed=seed
        )
    )
    net.build()
    net.start_all()
    net.run_for(2 * HOUR)  # settle: goodcounts must accrue
    return net


def make_zeus_crawler(net, policy=None, profile=ZeusDefectProfile(name="test"), port=7777):
    return ZeusCrawler(
        name="crawler",
        endpoint=Endpoint(parse_ip("40.0.0.1"), port),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=net.rngs.stream("crawler"),
        policy=policy,
        profile=profile,
    )


def make_sality_crawler(net, policy=None, profile=SalityDefectProfile(name="test")):
    return SalityCrawler(
        name="crawler",
        endpoint=Endpoint(parse_ip("40.0.0.1"), 7777),
        transport=net.transport,
        scheduler=net.scheduler,
        rng=net.rngs.stream("crawler"),
        policy=policy,
        profile=profile,
    )


class TestZeusCrawl:
    def test_full_crawl_finds_most_routable_bots(self):
        net = zeus_net()
        crawler = make_zeus_crawler(
            net, policy=StealthPolicy(per_target_interval=15.0, requests_per_target=4)
        )
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(4 * HOUR)
        routable_ips = {bot.endpoint.ip for bot in net.routable_bots}
        found = set(crawler.report.first_seen_ip) & routable_ips
        assert len(found) >= 0.8 * len(routable_ips)
        assert crawler.report.responses_received > 0

    def test_crawl_verifies_responding_bots(self):
        net = zeus_net()
        crawler = make_zeus_crawler(net)
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(2 * HOUR)
        assert len(crawler.report.verified_bots) > 0
        routable_ids = {bot.bot_id for bot in net.routable_bots}
        assert crawler.report.verified_bots <= routable_ids

    def test_crawler_cannot_reach_natted_bots(self):
        """Crawlers cannot contact non-routable bots (Section 2.1)."""
        net = zeus_net()
        crawler = make_zeus_crawler(net)
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(4 * HOUR)
        natted_ids = {bot.bot_id for bot in net.non_routable_bots}
        assert not (crawler.report.verified_bots & natted_ids)

    def test_crawl_collects_edges(self):
        net = zeus_net()
        crawler = make_zeus_crawler(net)
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(2 * HOUR)
        assert len(crawler.report.edges) > 0
        for src, dst in crawler.report.edges:
            assert src != dst or True  # edges are (via, learned) pairs

    def test_contact_ratio_reduces_contacts_and_coverage(self):
        net_full = zeus_net(seed=4)
        full = make_zeus_crawler(net_full)
        full.start(net_full.bootstrap_sample(5, seed=1))
        net_full.run_for(4 * HOUR)

        net_limited = zeus_net(seed=4)
        limited = make_zeus_crawler(net_limited, policy=StealthPolicy(contact_ratio=8))
        limited.start(net_limited.bootstrap_sample(5, seed=1))
        net_limited.run_for(4 * HOUR)

        assert limited.report.targets_contacted < full.report.targets_contacted
        assert limited.report.targets_excluded > 0
        assert limited.report.distinct_ips <= full.report.distinct_ips

    def test_stop_halts_requests(self):
        net = zeus_net()
        crawler = make_zeus_crawler(net)
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(0.5 * HOUR)
        crawler.stop()
        sent = crawler.report.requests_sent
        net.run_for(2 * HOUR)
        assert crawler.report.requests_sent == sent

    def test_start_twice_rejected(self):
        net = zeus_net()
        crawler = make_zeus_crawler(net)
        crawler.start([])
        with pytest.raises(RuntimeError):
            crawler.start([])

    def test_distributed_sources_used(self):
        net = zeus_net()
        sources = [Endpoint(parse_ip(f"41.{i}.0.1"), 7000) for i in range(4)]
        crawler = make_zeus_crawler(net, policy=StealthPolicy(source_endpoints=sources))
        seen_sources = set()
        net.transport.add_tap(
            lambda m, ok: seen_sources.add(m.src) if m.src in set(sources) else None
        )
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(HOUR)
        assert len(seen_sources) == 4

    def test_coverage_series_monotonic(self):
        net = zeus_net()
        crawler = make_zeus_crawler(net)
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(3 * HOUR)
        series = crawler.report.coverage_series(until=net.scheduler.now, bucket=HOUR / 2)
        counts = [count for _, count in series]
        assert counts == sorted(counts)
        assert counts[-1] == crawler.report.distinct_ips


class TestSalityCrawl:
    def test_crawl_discovers_bots(self):
        net = sality_net()
        crawler = make_sality_crawler(
            net,
            policy=StealthPolicy(per_target_interval=5.0, requests_per_target=40),
        )
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(4 * HOUR)
        routable_ips = {bot.endpoint.ip for bot in net.routable_bots}
        found = set(crawler.report.first_seen_ip) & routable_ips
        assert len(found) >= 0.5 * len(routable_ips)

    def test_single_entry_responses_throttle_discovery(self):
        """With few requests per target, Sality coverage collapses --
        the Figure 4b effect."""
        net_fast = sality_net(seed=5)
        fast = make_sality_crawler(
            net_fast, policy=StealthPolicy(per_target_interval=5.0, requests_per_target=40)
        )
        fast.start(net_fast.bootstrap_sample(5, seed=1))
        net_fast.run_for(4 * HOUR)

        net_slow = sality_net(seed=5)
        slow = make_sality_crawler(
            net_slow, policy=StealthPolicy(per_target_interval=2400.0, requests_per_target=40)
        )
        slow.start(net_slow.bootstrap_sample(5, seed=1))
        net_slow.run_for(4 * HOUR)

        assert slow.report.distinct_ips < fast.report.distinct_ips

    def test_fixed_port_defect_visible_on_wire(self):
        net = sality_net()
        crawler = make_sality_crawler(
            net, profile=SalityDefectProfile(name="fixed", port_range=True)
        )
        ports = set()
        crawler_ip = crawler.endpoint.ip
        net.transport.add_tap(
            lambda m, ok: ports.add(m.src.port) if m.src.ip == crawler_ip else None
        )
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(HOUR)
        assert ports == {crawler.endpoint.port}

    def test_clean_crawler_randomizes_ports(self):
        net = sality_net()
        crawler = make_sality_crawler(net)
        ports = set()
        crawler_ip = crawler.endpoint.ip
        net.transport.add_tap(
            lambda m, ok: ports.add(m.src.port) if m.src.ip == crawler_ip else None
        )
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(HOUR)
        assert len(ports) > 3

    def test_stop_releases_ephemerals(self):
        net = sality_net()
        crawler = make_sality_crawler(net)
        crawler.start(net.bootstrap_sample(5, seed=1))
        net.run_for(0.2 * HOUR)
        crawler.stop()
        assert not crawler._ephemerals


class TestCrawlReport:
    def test_note_discovery_first_wins(self):
        report = CrawlReport()
        endpoint = Endpoint(parse_ip("25.0.0.1"), 1000)
        assert report.note_discovery(1.0, b"A", endpoint)
        assert not report.note_discovery(2.0, b"A", endpoint)
        assert report.first_seen_bot[b"A"] == 1.0
        assert report.first_seen_ip[endpoint.ip] == 1.0

    def test_ips_found_by(self):
        report = CrawlReport()
        report.note_discovery(1.0, b"A", Endpoint(parse_ip("25.0.0.1"), 1000))
        report.note_discovery(5.0, b"B", Endpoint(parse_ip("25.0.0.2"), 1000))
        assert report.ips_found_by(0.5) == 0
        assert report.ips_found_by(1.0) == 1
        assert report.ips_found_by(10.0) == 2

    def test_coverage_series_validation(self):
        with pytest.raises(ValueError):
            CrawlReport().coverage_series(until=10.0, bucket=0)
