"""Unit tests for stealth policies."""

import pytest

from repro.core.stealth import (
    StealthPolicy,
    aggressive_policy,
    contact_hash,
    suspend_cycle_policy,
)
from repro.net.address import parse_ip
from repro.net.transport import Endpoint

SOURCES = [Endpoint(parse_ip(f"30.{i}.0.1"), 5000) for i in range(4)]


class TestContactHash:
    def test_stable(self):
        assert contact_hash(b"abc") == contact_hash(b"abc")

    def test_distinct_inputs_differ(self):
        assert contact_hash(b"abc") != contact_hash(b"abd")


class TestContactRatio:
    def test_ratio_one_contacts_everyone(self):
        policy = StealthPolicy(contact_ratio=1)
        assert all(policy.should_contact(bytes([i]) * 20) for i in range(50))

    def test_ratio_filters_deterministic_subset(self):
        policy = StealthPolicy(contact_ratio=4)
        ids = [i.to_bytes(20, "big") for i in range(4000)]
        selected = [bot_id for bot_id in ids if policy.should_contact(bot_id)]
        # Deterministic...
        assert selected == [bot_id for bot_id in ids if policy.should_contact(bot_id)]
        # ... and close to 1/4 of the population.
        assert 800 <= len(selected) <= 1200

    def test_higher_ratio_selects_subset_sizes(self):
        ids = [i.to_bytes(20, "big") for i in range(8000)]
        sizes = {}
        for ratio in (2, 8, 32):
            policy = StealthPolicy(contact_ratio=ratio)
            sizes[ratio] = sum(policy.should_contact(i) for i in ids)
        assert sizes[2] > sizes[8] > sizes[32] > 0


class TestSources:
    def test_no_sources_returns_none(self):
        assert StealthPolicy().source_for(0, 0.0) is None

    def test_round_robin(self):
        policy = StealthPolicy(source_endpoints=SOURCES)
        picks = [policy.source_for(i, 0.0) for i in range(8)]
        assert picks == SOURCES + SOURCES

    def test_rotation_by_time(self):
        policy = StealthPolicy(source_endpoints=SOURCES, rotation_interval=100.0)
        assert policy.source_for(0, 0.0) == SOURCES[0]
        assert policy.source_for(99, 99.0) == SOURCES[0]
        assert policy.source_for(1, 150.0) == SOURCES[1]
        assert policy.source_for(1, 450.0) == SOURCES[0]  # wraps


class TestValidationAndFactories:
    def test_validation(self):
        with pytest.raises(ValueError):
            StealthPolicy(contact_ratio=0)
        with pytest.raises(ValueError):
            StealthPolicy(per_target_interval=-1)
        with pytest.raises(ValueError):
            StealthPolicy(requests_per_target=0)
        with pytest.raises(ValueError):
            StealthPolicy(rotation_interval=0)

    def test_aggressive_policy_blacklist_aware(self):
        policy = aggressive_policy()
        assert policy.per_target_interval >= 10.0

    def test_suspend_cycle_policy(self):
        full = suspend_cycle_policy(1800.0, fraction=1.0)
        half = suspend_cycle_policy(1800.0, fraction=0.5)
        assert full.per_target_interval == 1800.0
        assert half.per_target_interval == 900.0
        with pytest.raises(ValueError):
            suspend_cycle_policy(1800.0, fraction=0.0)
