"""Quorum-aware degradation of the distributed detector.

When group leaders crash mid-round their aggregations are lost; the
round must fall back to the surviving-leader majority, annotate its
result with a confidence, and flag non-quorate rounds -- instead of
hanging or silently pretending full health.
"""

import random

import pytest

from repro.core.detection import (
    DetectionConfig,
    ParticipantReport,
    evaluate_detection,
    run_round,
)
from repro.core.detection.coordinator import run_periodic_rounds
from repro.core.detection.offline import SensorLogDataset
from repro.net.address import parse_ip


def build_participants(sensor_count=64, crawler_ip=None, seed=0):
    """Sensors that all saw one crawler (plus scattered polite bots)."""
    rng = random.Random(seed)
    crawler_ip = crawler_ip if crawler_ip is not None else parse_ip("99.0.0.1")
    participants = []
    for i in range(sensor_count):
        requests = [(10.0 + i, crawler_ip)]
        polite = parse_ip("25.0.0.0") + rng.randrange(1, 2 ** 20)
        requests.append((20.0 + i, polite))
        participants.append(
            ParticipantReport(
                node_id=f"sensor-{i:03d}",
                bot_id=bytes(rng.getrandbits(8) for _ in range(20)),
                requests=tuple(requests),
            )
        )
    return participants, crawler_ip


class TestFailedGroups:
    def test_healthy_round_has_full_confidence(self):
        participants, crawler_ip = build_participants()
        result = run_round(participants, DetectionConfig(), random.Random(0))
        assert result.confidence == 1.0
        assert result.quorum_met
        assert result.failed_groups == ()
        assert crawler_ip in result.classified

    def test_minority_of_crashed_leaders_degrades_but_detects(self):
        participants, crawler_ip = build_participants()
        config = DetectionConfig()  # 8 groups
        healthy = run_round(participants, config, random.Random(0))
        degraded = run_round(
            participants, config, random.Random(0), failed_groups=(0, 3)
        )
        # The crawler hit every sensor: surviving leaders still carry a
        # majority, so the verdict stands at reduced confidence.
        assert crawler_ip in degraded.classified
        assert degraded.confidence < healthy.confidence
        assert degraded.confidence == pytest.approx(6 / 8)
        assert degraded.quorum_met
        assert set(degraded.failed_groups) == {0, 3}
        assert 0 not in degraded.verdicts and 3 not in degraded.verdicts

    def test_quorum_lost_when_most_leaders_crash(self):
        participants, crawler_ip = build_participants()
        config = DetectionConfig(min_quorum_fraction=0.5)
        result = run_round(
            participants, config, random.Random(0),
            failed_groups=tuple(range(5)),
        )
        assert not result.quorum_met
        assert result.confidence == pytest.approx(3 / 8)
        # The surviving minority still tallies its majority: degraded,
        # not dead.
        assert crawler_ip in result.classified

    def test_all_leaders_crashed_yields_empty_confident_nothing(self):
        participants, _ = build_participants()
        config = DetectionConfig(group_bits=1)
        result = run_round(
            participants, config, random.Random(0), failed_groups=(0, 1)
        )
        assert result.confidence == 0.0
        assert not result.quorum_met
        assert result.classified == set()

    def test_failed_group_indices_outside_population_ignored(self):
        participants, crawler_ip = build_participants()
        result = run_round(
            participants, DetectionConfig(), random.Random(0),
            failed_groups=(100,),
        )
        assert result.confidence == 1.0
        assert crawler_ip in result.classified


class TestEvaluationPassthrough:
    def test_evaluate_detection_carries_confidence(self):
        participants, crawler_ip = build_participants()
        dataset = SensorLogDataset(participants=tuple(participants))
        result = evaluate_detection(
            dataset,
            crawler_ips={crawler_ip},
            config=DetectionConfig(),
            rng=random.Random(0),
            failed_groups=(0, 1),
        )
        assert result.confidence == pytest.approx(6 / 8)
        assert result.quorum_met
        assert result.detection_rate == 1.0


class TestPeriodicCrashRounds:
    def test_zero_crash_rate_draws_nothing(self):
        """leader_crash_rate=0 must leave the RNG stream untouched so
        healthy replays stay byte-identical."""
        participants, _ = build_participants()
        config = DetectionConfig()
        a = run_periodic_rounds(
            participants, config, random.Random(5), start=0.0, end=4 * 3600.0
        )
        b = run_periodic_rounds(
            participants, config, random.Random(5), start=0.0, end=4 * 3600.0,
            leader_crash_rate=0.0,
        )
        assert [r.classified for r in a] == [r.classified for r in b]
        assert [r.bit_positions for r in a] == [r.bit_positions for r in b]

    def test_crash_rate_produces_degraded_rounds(self):
        participants, crawler_ip = build_participants()
        config = DetectionConfig()
        rounds = run_periodic_rounds(
            participants, config, random.Random(5), start=0.0, end=12 * 3600.0,
            leader_crash_rate=0.4,
        )
        assert any(r.failed_groups for r in rounds)
        assert any(r.confidence < 1.0 for r in rounds)
        # Union-of-rounds detection survives the crashes.
        assert any(crawler_ip in r.classified for r in rounds)

    def test_crash_rate_validation(self):
        participants, _ = build_participants(sensor_count=4)
        with pytest.raises(ValueError):
            run_periodic_rounds(
                participants, DetectionConfig(), random.Random(0),
                start=0.0, end=3600.0, leader_crash_rate=1.0,
            )

    def test_min_quorum_validation(self):
        with pytest.raises(ValueError):
            DetectionConfig(min_quorum_fraction=0.0)
        with pytest.raises(ValueError):
            DetectionConfig(min_quorum_fraction=1.5)
