"""Byzantine edge cases for leader voting (Section 4.3).

Covers the corners the paper's reliability argument turns on: exact
tie votes, unanimously malicious leader sets (suppression and
framing), and degenerate single-leader groups.
"""

import random

import pytest

from repro.core.detection.aggregation import GroupVerdict
from repro.core.detection.voting import (
    LeaderBehavior,
    LeaderVote,
    majority_count,
    reliability_bound,
    retrieve_from_leaders,
    tally_votes,
)


def _verdict(suspicious, group_index=0):
    return GroupVerdict(
        group_index=group_index, group_size=8, suspicious=set(suspicious)
    )


def _votes(*key_sets):
    return [
        LeaderVote(group_index=i, keys=frozenset(keys))
        for i, keys in enumerate(key_sets)
    ]


class TestMajorityCount:
    def test_strict_majority_even_total(self):
        # 4 leaders at m=0.5: exactly half (2) is NOT a majority.
        assert majority_count(4, 0.5) == 3

    def test_strict_majority_odd_total(self):
        assert majority_count(5, 0.5) == 3

    def test_single_voter(self):
        assert majority_count(1, 0.5) == 1

    def test_supermajority_fraction(self):
        assert majority_count(10, 0.66) == 7


class TestTieVotes:
    def test_even_split_is_not_a_majority(self):
        # 2 of 4 leaders flag key 7: a tie, so key 7 must NOT be
        # classified (majority is strictly more than half).
        votes = _votes({7}, {7}, set(), set())
        assert tally_votes(votes) == set()

    def test_one_over_the_tie_classifies(self):
        votes = _votes({7}, {7}, {7}, set())
        assert tally_votes(votes) == {7}

    def test_tie_with_disjoint_framings(self):
        # Two adversaries frame different victims; neither reaches a
        # majority of the 4-leader vote.
        votes = _votes({1}, {2}, {9}, {9})
        assert tally_votes(votes) == set()


class TestAllLeadersMalicious:
    def test_unanimous_suppression_reports_nothing(self):
        verdicts = [_verdict({5, 6}, i) for i in range(5)]
        votes = [
            LeaderVote.from_verdict(v, behavior=LeaderBehavior.SUPPRESS)
            for v in verdicts
        ]
        assert all(vote.keys == frozenset() for vote in votes)
        assert tally_votes(votes) == set()

    def test_unanimous_framing_classifies_victims(self):
        # When every leader is adversarial the majority defence is
        # void by construction: framed innocents are classified.
        verdicts = [_verdict({5}, i) for i in range(3)]
        votes = [
            LeaderVote.from_verdict(
                v, behavior=LeaderBehavior.FRAME, framed_keys=(42,)
            )
            for v in verdicts
        ]
        assert tally_votes(votes) == {5, 42}

    def test_reliability_bound_flags_overrun(self):
        # |A| < n*m is the paper's condition; an all-malicious sample
        # violates it, a minority satisfies it.
        assert not reliability_bound(adversarial=3, sample_size=3)
        assert not reliability_bound(adversarial=2, sample_size=3)
        assert reliability_bound(adversarial=1, sample_size=3)

    def test_retrieval_from_unanimous_framers(self):
        lists = [{42} for _ in range(4)]
        got = retrieve_from_leaders(lists, sample_size=3, rng=random.Random(0))
        assert got == {42}

    def test_minority_framers_filtered_on_retrieval(self):
        # 1 adversarial list in a sample of 3: the framed key cannot
        # reach the majority of 2.
        lists = [{1, 2}, {1, 2}, {1, 2, 99}]
        got = retrieve_from_leaders(lists, sample_size=3, rng=random.Random(0))
        assert got == {1, 2}


class TestSingleLeaderGroups:
    def test_single_honest_leader_classifies_alone(self):
        votes = [LeaderVote.from_verdict(_verdict({3, 4}))]
        assert tally_votes(votes) == {3, 4}

    def test_single_framing_leader_is_unchecked(self):
        vote = LeaderVote.from_verdict(
            _verdict({3}), behavior=LeaderBehavior.FRAME, framed_keys=(8,)
        )
        assert tally_votes([vote]) == {3, 8}

    def test_retrieval_sample_of_one(self):
        got = retrieve_from_leaders([{9}], sample_size=1, rng=random.Random(1))
        assert got == {9}

    def test_sample_larger_than_leader_set_is_clamped(self):
        lists = [{4}, {4}]
        got = retrieve_from_leaders(lists, sample_size=10, rng=random.Random(2))
        assert got == {4}


class TestValidation:
    def test_no_votes_tallies_empty(self):
        assert tally_votes([]) == set()

    def test_majority_fraction_bounds(self):
        votes = _votes({1})
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                tally_votes(votes, majority_fraction=bad)

    def test_retrieval_sample_size_validated(self):
        with pytest.raises(ValueError):
            retrieve_from_leaders([{1}], sample_size=0, rng=random.Random(0))

    def test_retrieval_no_leaders(self):
        assert (
            retrieve_from_leaders([], sample_size=3, rng=random.Random(0)) == set()
        )
