"""Tests for Internet-wide scanning (Section 7, Table 5)."""

import random

import pytest

from repro.core.scanning import (
    PROBE_MAGIC,
    InternetScanner,
    ProbeResponder,
    ScanUnsupportedError,
    susceptibility_report,
)
from repro.net.address import Subnet, parse_ip
from repro.net.transport import Endpoint, Transport, TransportConfig
from repro.sim.scheduler import Scheduler


def make_world():
    sched = Scheduler()
    transport = Transport(sched, random.Random(0), config=TransportConfig(loss_rate=0.0))
    return sched, transport


class TestSusceptibilityReport:
    def test_matches_table5(self):
        rows = {row.family: row for row in susceptibility_report()}
        assert not rows["Zeus"].susceptible
        assert not rows["Zeus"].probe_constructible
        assert not rows["Sality"].susceptible
        assert rows["ZeroAccess"].susceptible
        assert rows["Kelihos/Hlux"].susceptible
        assert not rows["Waledac"].susceptible
        assert not rows["Storm"].susceptible

    def test_all_families_covered(self):
        assert len(susceptibility_report()) == 6


class TestScanner:
    def test_scan_finds_zeroaccess_responders(self):
        sched, transport = make_world()
        block = Subnet.parse("80.0.0.0/28")
        # Infect 5 of the 16 addresses (fixed ZeroAccess port 16471).
        responders = [
            ProbeResponder(Endpoint(block.network + i, 16471), transport) for i in range(5)
        ]
        scanner = InternetScanner(
            endpoint=Endpoint(parse_ip("90.0.0.1"), 40000),
            transport=transport,
            scheduler=sched,
            rng=random.Random(1),
            probes_per_second=10000,
        )
        result = scanner.scan("ZeroAccess", [block])
        assert result.addresses_probed == 16
        assert result.probes_sent == 16
        assert result.hosts_found == 5
        assert all(r.probes_answered == 1 for r in responders)

    def test_zeus_scan_rejected_no_probe(self):
        sched, transport = make_world()
        scanner = InternetScanner(
            Endpoint(parse_ip("90.0.0.1"), 40000), transport, sched, random.Random(1)
        )
        with pytest.raises(ScanUnsupportedError, match="per-bot knowledge"):
            scanner.scan("Zeus", [Subnet.parse("80.0.0.0/30")])

    def test_sality_scan_rejected_port_range(self):
        sched, transport = make_world()
        scanner = InternetScanner(
            Endpoint(parse_ip("90.0.0.1"), 40000), transport, sched, random.Random(1)
        )
        with pytest.raises(ScanUnsupportedError, match="candidate ports"):
            scanner.scan("Sality", [Subnet.parse("80.0.0.0/30")])

    def test_wide_port_range_opt_in_probes_all_ports(self):
        """Forcing a wide-range scan shows the probe-count blowup that
        makes it impractical (Section 7)."""
        sched, transport = make_world()
        scanner = InternetScanner(
            Endpoint(parse_ip("90.0.0.1"), 40000),
            transport,
            sched,
            random.Random(1),
            probes_per_second=10_000_000,
        )
        result = scanner.scan(
            "Waledac", [Subnet.parse("80.0.0.0/31")], allow_wide_port_ranges=True
        )
        ports = 65535 - 1024 + 1
        assert result.probes_sent == 2 * ports

    def test_kelihos_scan_single_port(self):
        sched, transport = make_world()
        block = Subnet.parse("80.0.0.0/29")
        ProbeResponder(Endpoint(block.network + 2, 80), transport)
        scanner = InternetScanner(
            Endpoint(parse_ip("90.0.0.1"), 40000), transport, sched, random.Random(1)
        )
        result = scanner.scan("Kelihos/Hlux", [block])
        assert result.hosts_found == 1

    def test_uninfected_hosts_silent(self):
        sched, transport = make_world()
        # A host listening on the right port but NOT infected: binds a
        # different service that ignores the probe.
        bystander = Endpoint(parse_ip("80.0.0.1"), 16471)
        transport.bind(bystander, lambda m: None)
        scanner = InternetScanner(
            Endpoint(parse_ip("90.0.0.1"), 40000), transport, sched, random.Random(1)
        )
        result = scanner.scan("ZeroAccess", [Subnet.parse("80.0.0.0/30")])
        assert result.hosts_found == 0

    def test_scanner_validation(self):
        sched, transport = make_world()
        with pytest.raises(ValueError):
            InternetScanner(
                Endpoint(parse_ip("90.0.0.1"), 40000),
                transport,
                sched,
                random.Random(1),
                probes_per_second=0,
            )
