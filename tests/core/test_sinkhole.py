"""Tests for the sinkholing campaign (the takedown recon serves)."""

import random

import pytest

from repro.core.sinkhole import SinkholeCampaign, spread_endpoints
from repro.net.address import parse_ip, subnet_key
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR, MINUTE
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario

SINKHOLE_BASE = parse_ip("44.0.0.1")


def make_campaign(scenario, count=8, per_slash20=True, interval=10 * MINUTE):
    net = scenario.net
    return SinkholeCampaign(
        transport=net.transport,
        scheduler=net.scheduler,
        rng=random.Random(99),
        sinkhole_endpoints=spread_endpoints(SINKHOLE_BASE, count, per_slash20=per_slash20),
        poison_interval=interval,
    )


def full_target_list(net):
    return [(bot.bot_id, bot.endpoint) for bot in net.routable_bots]


class TestSpreadEndpoints:
    def test_diverse_endpoints_one_per_slash20(self):
        endpoints = spread_endpoints(SINKHOLE_BASE, 8, per_slash20=True)
        keys = {subnet_key(e.ip, 20) for e in endpoints}
        assert len(keys) == 8

    def test_packed_endpoints_share_slash20(self):
        endpoints = spread_endpoints(SINKHOLE_BASE, 8, per_slash20=False)
        keys = {subnet_key(e.ip, 20) for e in endpoints}
        assert len(keys) == 1


class TestCampaign:
    def test_poisoning_spreads_into_peer_lists(self):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=81), sensor_count=2, announce_hours=1.0
        )
        campaign = make_campaign(scenario)
        before = campaign.capture_snapshot(scenario.net.routable_bots)
        assert before.reach == 0.0
        campaign.start(full_target_list(scenario.net))
        scenario.run_for(6 * HOUR)
        after = campaign.capture_snapshot(scenario.net.routable_bots)
        assert after.reach > 0.5
        assert after.mean_sinkhole_share > 0.0
        assert campaign.pushes_sent > 0

    def test_sinkholes_answer_with_poison_only(self):
        """Bots that ask a sinkhole for peers receive only sinkholes."""
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=82), sensor_count=2, announce_hours=1.0
        )
        campaign = make_campaign(scenario)
        campaign.start(full_target_list(scenario.net))
        scenario.run_for(8 * HOUR)
        assert sum(node.poison_responses for node in campaign.nodes) > 0
        # Any sinkhole-sourced entry a bot holds must BE a sinkhole.
        sinkhole_ids = campaign.sinkhole_ids
        for bot in scenario.net.routable_bots:
            learned_from_poison = [
                entry for entry in bot.peer_list if entry.bot_id in sinkhole_ids
            ]
            for entry in learned_from_poison:
                assert entry.bot_id in sinkhole_ids

    def test_slash20_filter_caps_single_subnet_campaigns(self):
        """The Zeus /20 peer-list filter is takedown resistance: a
        campaign whose sinkholes share one /20 occupies at most one
        slot per bot, so its peer-list share is capped far below a
        subnet-diverse campaign's."""
        scenario_a = build_zeus_scenario(
            zeus_config("tiny", master_seed=83), sensor_count=2, announce_hours=1.0
        )
        diverse = make_campaign(scenario_a, count=8, per_slash20=True)
        diverse.start(full_target_list(scenario_a.net))
        scenario_a.run_for(8 * HOUR)
        share_diverse = diverse.capture_snapshot(scenario_a.net.routable_bots).mean_sinkhole_share

        scenario_b = build_zeus_scenario(
            zeus_config("tiny", master_seed=83), sensor_count=2, announce_hours=1.0
        )
        packed = make_campaign(scenario_b, count=8, per_slash20=False)
        packed.start(full_target_list(scenario_b.net))
        scenario_b.run_for(8 * HOUR)
        share_packed = packed.capture_snapshot(scenario_b.net.routable_bots).mean_sinkhole_share

        assert share_diverse > 2 * share_packed
        # Packed: never more than one sinkhole entry per bot.
        sinkhole_ids = packed.sinkhole_ids
        for bot in scenario_b.net.routable_bots:
            poisoned = sum(1 for e in bot.peer_list if e.bot_id in sinkhole_ids)
            assert poisoned <= 1

    def test_partial_recon_caps_reach(self):
        """Takedown reach is bounded by recon completeness: poisoning
        only a 25% target list reaches far fewer bots directly."""
        scenario_a = build_zeus_scenario(
            zeus_config("tiny", master_seed=84), sensor_count=2, announce_hours=1.0
        )
        full = make_campaign(scenario_a)
        full.start(full_target_list(scenario_a.net))
        scenario_a.run_for(4 * HOUR)
        reach_full = full.capture_snapshot(scenario_a.net.routable_bots).reach

        scenario_b = build_zeus_scenario(
            zeus_config("tiny", master_seed=84), sensor_count=2, announce_hours=1.0
        )
        partial_targets = full_target_list(scenario_b.net)
        partial = make_campaign(scenario_b)
        partial.start(partial_targets[: len(partial_targets) // 4])
        scenario_b.run_for(4 * HOUR)
        reach_partial = partial.capture_snapshot(scenario_b.net.routable_bots).reach

        assert reach_full > reach_partial

    def test_lifecycle_guards(self):
        scenario = build_zeus_scenario(
            zeus_config("tiny", master_seed=85), sensor_count=2, announce_hours=1.0
        )
        campaign = make_campaign(scenario)
        campaign.start(full_target_list(scenario.net))
        with pytest.raises(RuntimeError):
            campaign.start([])
        campaign.stop()
        with pytest.raises(ValueError):
            SinkholeCampaign(
                transport=scenario.net.transport,
                scheduler=scenario.net.scheduler,
                rng=random.Random(0),
                sinkhole_endpoints=[],
            )
