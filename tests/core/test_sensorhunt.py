"""Tests for in-degree ranking + active sensor probing (Section 4.2)."""

import pytest

from repro.core.sensor import SensorDefectProfile
from repro.core.sensorhunt import Candidate, SensorProber, rank_by_in_degree
from repro.net.address import parse_ip
from repro.net.transport import Endpoint
from repro.sim.clock import HOUR
from repro.workloads.population import zeus_config
from repro.workloads.scenarios import build_zeus_scenario
from repro.workloads.sensor_profiles import ZEUS_SENSOR_PROFILES


@pytest.fixture(scope="module")
def scenario():
    scenario = build_zeus_scenario(
        zeus_config("tiny", master_seed=8),
        sensor_count=10,
        sensor_profiles=ZEUS_SENSOR_PROFILES,
        announce_hours=3.0,
    )
    scenario.run_for(9 * HOUR)
    return scenario


class TestRanking:
    def test_sensors_rank_high_in_degree(self, scenario):
        candidates = rank_by_in_degree(list(scenario.net.bots.values()), top=15)
        sensor_endpoints = {sensor.endpoint for sensor in scenario.sensors}
        hits = [c for c in candidates if c.endpoint in sensor_endpoints]
        assert len(hits) >= 5, "announced sensors should rank among top in-degrees"

    def test_legitimate_bots_also_rank_high(self, scenario):
        """High in-degree alone is NOT a sensor signal (Section 4.2):
        well-reachable legitimate bots rank high too."""
        candidates = rank_by_in_degree(list(scenario.net.bots.values()), top=30)
        sensor_endpoints = {sensor.endpoint for sensor in scenario.sensors}
        legit = [c for c in candidates if c.endpoint not in sensor_endpoints]
        assert legit, "expected legitimate high-in-degree bots among candidates"

    def test_ranking_ordered(self, scenario):
        candidates = rank_by_in_degree(list(scenario.net.bots.values()), top=10)
        degrees = [c.in_degree for c in candidates]
        assert degrees == sorted(degrees, reverse=True)


class TestProbing:
    def probe(self, scenario, candidates):
        prober = SensorProber(
            endpoint=Endpoint(parse_ip("98.0.0.1"), 9000),
            transport=scenario.net.transport,
            scheduler=scenario.net.scheduler,
            rng=scenario.net.rngs.stream("prober"),
            current_version=scenario.net.zconfig.zeus.version,
        )
        return prober.probe(candidates)

    def test_defective_sensors_flagged(self, scenario):
        sensor_candidates = [
            Candidate(bot_id=s.bot_id, endpoint=s.endpoint, in_degree=50)
            for s in scenario.sensors
        ]
        verdicts = self.probe(scenario, sensor_candidates)
        suspects = [v for v in verdicts if v.is_sensor_suspect]
        # Every in-the-wild sensor profile has probe-visible anomalies.
        assert len(suspects) == len(scenario.sensors)
        anomalies = set().union(*(set(v.anomalies) for v in suspects))
        assert "no_proxy_reply" in anomalies
        assert "no_update_reply" in anomalies
        assert "empty_peer_list" in anomalies or "duplicate_peers" in anomalies

    def test_legitimate_bot_not_flagged(self, scenario):
        bot = scenario.net.routable_bots[0]
        candidates = [Candidate(bot_id=bot.bot_id, endpoint=bot.endpoint, in_degree=40)]
        verdicts = self.probe(scenario, candidates)
        assert verdicts[0].responded
        assert not verdicts[0].is_sensor_suspect

    def test_dead_candidate_not_flagged(self, scenario):
        ghost = Candidate(
            bot_id=b"\x99" * 20, endpoint=Endpoint(parse_ip("97.0.0.1"), 1234), in_degree=60
        )
        verdicts = self.probe(scenario, [ghost])
        assert not verdicts[0].responded
        assert not verdicts[0].is_sensor_suspect
