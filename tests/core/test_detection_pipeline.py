"""End-to-end detection-pipeline tests on synthetic sensor logs.

Builds a synthetic fleet of "sensors" with request logs shaped like
the paper's dataset: polite bot traffic touching 1-3 sensors per
source, NATed aliases sharing one IP across several bots, and crawlers
covering large sensor fractions.  Then checks the qualitative results
of Figure 2 / Table 4: thresholds trade detection against false
positives, low contact ratios evade, subnet aggregation catches
distributed crawlers until legitimate multi-infection subnets merge.

Scale note: these tests run 128 sensors in 8 groups (16 per group),
so the threshold granularity is 1/16 = 6.25%; the paper's 1%/2%/5%
operating points map to the 64-member groups used by the benchmark
harness.  Thresholds here are chosen for the 16-member geometry.
"""

import random

import pytest

from repro.core.detection import (
    DetectionConfig,
    ParticipantReport,
    SensorLogDataset,
    evaluate_detection,
    run_round,
    simulate_contact_ratio,
)
from repro.core.detection.coordinator import run_periodic_rounds
from repro.core.detection.offline import detection_grid
from repro.net.address import parse_ip, subnet_key
from repro.sim.clock import DAY, HOUR, MINUTE

# One source per /19 so subnet aggregation cannot fold unrelated bots.
SOURCE_SPACING = 0x2000


def build_dataset(
    sensor_count=128,
    bot_count=200,
    nat_ips=10,
    bots_per_nat=4,
    crawler_specs=(),
    seed=0,
    extra_sources=(),
):
    """Synthesize sensor PLR logs.

    ``crawler_specs``: (ip, coverage_fraction, requests_per_sensor).
    ``extra_sources``: (ip, sensors_touched) polite sources appended
    verbatim (used by the subnet-clustering tests).
    """
    rng = random.Random(seed)
    sensors = [
        ParticipantReport(
            node_id=f"sensor-{i:03d}",
            bot_id=bytes(rng.getrandbits(8) for _ in range(20)),
            requests=(),
        )
        for i in range(sensor_count)
    ]
    requests = {sensor.node_id: [] for sensor in sensors}

    def bot_traffic(ip, start, touched=None):
        known = touched if touched is not None else rng.sample(sensors, rng.randint(1, 3))
        time = start
        while time < DAY:
            for sensor in known:
                requests[sensor.node_id].append((time, ip))
            time += 30 * MINUTE * rng.uniform(0.9, 1.1)

    base_ip = parse_ip("25.0.0.1")
    for index in range(bot_count):
        bot_traffic(base_ip + index * SOURCE_SPACING, rng.uniform(0, HOUR))
    nat_base = parse_ip("60.0.0.1")
    for nat_index in range(nat_ips):
        for _ in range(bots_per_nat):
            bot_traffic(nat_base + nat_index * SOURCE_SPACING, rng.uniform(0, HOUR))
    for ip, count in extra_sources:
        bot_traffic(ip, rng.uniform(0, HOUR), touched=rng.sample(sensors, count))
    for ip, coverage, per_sensor in crawler_specs:
        covered = rng.sample(sensors, int(coverage * sensor_count))
        time = rng.uniform(0, 10 * MINUTE)
        for sensor in covered:
            for k in range(per_sensor):
                requests[sensor.node_id].append((time + k * 15.0, ip))
            time += 5.0
    participants = tuple(
        ParticipantReport(
            node_id=sensor.node_id,
            bot_id=sensor.bot_id,
            requests=tuple(sorted(requests[sensor.node_id])),
        )
        for sensor in sensors
    )
    return SensorLogDataset(participants=participants)


CRAWLERS = {
    parse_ip("99.0.0.1"): 0.95,
    parse_ip("99.16.0.1"): 0.80,
    parse_ip("99.32.0.1"): 0.55,
}

# 16-member groups: r = ceil(t * 16) reporters needed per group.
T_LOW = 0.02    # r=1: flags anything seen once per group
T_IDEAL = 0.15  # r=3: crawlers only
T_HIGH = 0.30   # r=5: starts missing ratio-limited crawlers


def standard_dataset(seed=0):
    return build_dataset(
        crawler_specs=[(ip, cov, 3) for ip, cov in CRAWLERS.items()], seed=seed
    )


class TestRunRound:
    def test_high_coverage_crawlers_classified(self):
        dataset = standard_dataset()
        config = DetectionConfig(group_bits=3, threshold=T_IDEAL)
        result = run_round(list(dataset.participants), config, random.Random(1))
        for ip in CRAWLERS:
            assert ip in result.classified, f"crawler {ip} missed"

    def test_normal_bots_not_classified_at_ideal_threshold(self):
        dataset = standard_dataset()
        config = DetectionConfig(group_bits=3, threshold=T_IDEAL)
        result = run_round(list(dataset.participants), config, random.Random(1))
        assert result.classified <= set(CRAWLERS)

    def test_low_threshold_produces_nat_false_positives(self):
        """t=1%-style operation flags NATed shared IPs (Table 4)."""
        dataset = standard_dataset()
        config = DetectionConfig(group_bits=3, threshold=T_LOW)
        result = run_round(list(dataset.participants), config, random.Random(1))
        false = result.classified - set(CRAWLERS)
        nat_space = subnet_key(parse_ip("60.0.0.1"), 8)
        assert any(subnet_key(ip, 8) == nat_space for ip in false)

    def test_groups_and_leaders_formed(self):
        dataset = standard_dataset()
        config = DetectionConfig(group_bits=3, threshold=T_IDEAL)
        result = run_round(list(dataset.participants), config, random.Random(1))
        assert len(result.verdicts) == 8
        assert sum(result.group_sizes().values()) == dataset.sensor_count
        assert set(result.leaders) <= set(result.verdicts)

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            run_round([], DetectionConfig(), random.Random(0))

    def test_periodic_rounds_cover_window(self):
        dataset = standard_dataset()
        config = DetectionConfig(group_bits=3, threshold=T_IDEAL, history_interval=DAY)
        results = run_periodic_rounds(
            list(dataset.participants), config, random.Random(1), start=0.0, end=6 * HOUR
        )
        assert len(results) == 6
        union = set().union(*(r.classified for r in results))
        assert set(CRAWLERS) <= union


class TestContactRatioSimulation:
    def test_ratio_one_is_identity(self):
        dataset = standard_dataset()
        assert simulate_contact_ratio(dataset, set(CRAWLERS), 1) is dataset

    def test_ratio_removes_only_crawler_requests(self):
        dataset = standard_dataset()
        limited = simulate_contact_ratio(dataset, set(CRAWLERS), 8)
        assert limited.request_count() < dataset.request_count()
        removed_ips = dataset.ips_seen() - limited.ips_seen()
        assert removed_ips <= set(CRAWLERS)
        # non-crawler traffic byte-identical
        for before, after in zip(dataset.participants, limited.participants):
            bot_before = [r for r in before.requests if r[1] not in CRAWLERS]
            bot_after = [r for r in after.requests if r[1] not in CRAWLERS]
            assert bot_before == bot_after

    def test_ratio_is_deterministic(self):
        dataset = standard_dataset()
        a = simulate_contact_ratio(dataset, set(CRAWLERS), 8)
        b = simulate_contact_ratio(dataset, set(CRAWLERS), 8)
        assert a == b

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            simulate_contact_ratio(standard_dataset(), set(), 0)


class TestEvaluation:
    def test_full_contact_full_detection(self):
        dataset = standard_dataset()
        result = evaluate_detection(
            dataset,
            set(CRAWLERS),
            DetectionConfig(group_bits=3, threshold=T_IDEAL),
            random.Random(1),
        )
        assert result.detection_rate == 1.0
        assert result.false_positives == 0

    def test_detection_degrades_with_contact_ratio(self):
        """The Figure 2 shape: detection falls as ratio rises."""
        dataset = standard_dataset()
        rates = {}
        for ratio in (1, 4, 16, 64):
            result = evaluate_detection(
                dataset,
                set(CRAWLERS),
                DetectionConfig(group_bits=3, threshold=0.05),
                random.Random(1),
                contact_ratio=ratio,
            )
            rates[ratio] = result.detection_rate
        assert rates[1] >= rates[4] >= rates[16] >= rates[64]
        assert rates[64] < rates[1]

    def test_lower_threshold_higher_detection_more_fps(self):
        """The Table 4 tradeoff."""
        dataset = standard_dataset()
        grid = detection_grid(
            dataset, set(CRAWLERS), thresholds=[T_LOW, T_IDEAL, T_HIGH], ratios=[8]
        )
        low, mid, high = grid[(T_LOW, 8)], grid[(T_IDEAL, 8)], grid[(T_HIGH, 8)]
        assert low.detection_rate >= mid.detection_rate >= high.detection_rate
        assert low.false_positives >= mid.false_positives

    def test_subnet_aggregation_catches_distributed_crawler(self):
        """A /20-distributed crawler evades per-IP detection but is
        caught by /20 aggregation (Section 6.1.2)."""
        # 16 addresses inside one /20, each covering a 1/16 sensor slice.
        base = parse_ip("99.0.0.0")
        addresses = [base + i * 256 + 1 for i in range(16)]
        specs = [(addr, 0.06, 3) for addr in addresses]
        dataset = build_dataset(crawler_specs=specs, seed=3)
        per_ip = evaluate_detection(
            dataset,
            set(addresses),
            DetectionConfig(group_bits=3, threshold=T_IDEAL, aggregation_prefix=32),
            random.Random(1),
        )
        assert per_ip.detection_rate < 0.5  # mostly evades per-IP
        per_20 = evaluate_detection(
            dataset,
            set(addresses),
            DetectionConfig(group_bits=3, threshold=T_IDEAL, aggregation_prefix=20),
            random.Random(1),
        )
        assert per_20.detection_rate == 1.0

    def test_slash19_aggregation_false_positives(self):
        """Below /20, legitimate multi-infection subnets merge and the
        detector reports false positives (Section 6.1.2): two /20s,
        each individually under threshold, cross it when folded into
        one /19 key."""
        cluster = subnet_key(parse_ip("26.1.0.1"), 19)
        half = 0x1000  # one /20
        extra = []
        for index in range(12):  # 12 infections in the low /20
            extra.append((cluster + index * 64 + 1, 2))
        for index in range(12):  # 12 infections in the high /20
            extra.append((cluster + half + index * 64 + 1, 2))
        dataset = build_dataset(seed=11, extra_sources=extra)
        per_20 = evaluate_detection(
            dataset, set(), DetectionConfig(threshold=T_IDEAL, aggregation_prefix=20), random.Random(1)
        )
        per_19 = evaluate_detection(
            dataset, set(), DetectionConfig(threshold=T_IDEAL, aggregation_prefix=19), random.Random(1)
        )
        assert cluster in per_19.false_positive_keys
        assert per_19.false_positives > per_20.false_positives


class TestDatasetHelpers:
    def test_counts(self):
        dataset = standard_dataset()
        assert dataset.sensor_count == 128
        assert dataset.request_count() > 0
        assert parse_ip("99.0.0.1") in dataset.ips_seen()
